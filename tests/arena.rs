//! Scratch-arena acceptance tests: predictor fidelity (the admission
//! replay IS the executor's allocation schedule, so a fresh device's
//! tracker peak equals the predicted peak bit-exactly), the O(1)
//! alloc/free span invariant per fused plan, byte-identical outputs
//! across chunk strategies and fault injection, and the Strict-policy
//! typed overflow path.

use kw_core::{
    admit, compile, execute_chunked, execute_compiled, execute_plan, execute_resilient,
    ArenaPolicy, ChunkStrategy, ExecMode, QueryPlan, RetryPolicy, WeaverConfig,
};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig, SpanKind};
use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{gen, ops, CmpOp, Predicate, Relation, Schema, Value};
use kw_tpch::Pattern;
use proptest::prelude::*;

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

fn span_counts(spans: &[kw_gpu_sim::Span]) -> (usize, usize) {
    let allocs = spans.iter().filter(|s| s.kind == SpanKind::Alloc).count();
    let frees = spans.iter().filter(|s| s.kind == SpanKind::Free).count();
    (allocs, frees)
}

fn grouped_aggregate_workload(n: usize, seed: u64) -> (QueryPlan, Relation) {
    let input = gen::micro_input(n, seed);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[t],
        )
        .unwrap();
    let a = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggFn::Sum(1), AggFn::Count],
            },
            &[s],
        )
        .unwrap();
    plan.mark_output(a);
    (plan, input)
}

/// Satellite: the measured `MemoryTracker::peak()` on a fresh device equals
/// the `AdmissionReport`'s predicted peak bit-exactly — patterns (a)–(d),
/// fused and unfused, resident and staged. The reservation is the
/// prediction; no per-run drift, no slack, no spills.
#[test]
fn predicted_peak_is_measured_peak_on_micro_patterns() {
    for pattern in [Pattern::A, Pattern::B, Pattern::C, Pattern::D] {
        let w = pattern.build(4_000, 7);
        let bindings = w.bindings();
        for fusion in [true, false] {
            for mode in [ExecMode::Resident, ExecMode::Staged] {
                let config = WeaverConfig {
                    fusion,
                    mode,
                    ..WeaverConfig::default()
                };
                let compiled = compile(&w.plan, &config).unwrap();
                let admission = admit(&w.plan, &compiled, &bindings, u64::MAX).unwrap();
                let predicted = match mode {
                    ExecMode::Resident => admission.resident_peak,
                    ExecMode::Staged => admission.staged_peak,
                };

                let mut dev = device();
                let report =
                    execute_compiled(&w.plan, &compiled, &bindings, &mut dev, &config).unwrap();
                let ctx = format!("{} fusion={fusion} mode={mode:?}", pattern.label());
                assert_eq!(
                    dev.metrics().counter("kw_arena_spills_total"),
                    0,
                    "{ctx}: prediction must cover the whole run"
                );
                assert_eq!(
                    dev.memory().peak(),
                    predicted,
                    "{ctx}: measured != predicted"
                );
                let arena = report.arena.expect("direct runs carry arena stats");
                assert_eq!(arena.reservation, predicted, "{ctx}");
                assert!(arena.high_water <= arena.reservation, "{ctx}");
                assert_eq!(dev.memory().in_use(), 0, "{ctx}: leak");
            }
        }
    }
}

/// The same fidelity invariant on a grouped aggregate (select → group-by
/// SUM/COUNT), fused and unfused.
#[test]
fn predicted_peak_is_measured_peak_on_grouped_aggregate() {
    let (plan, input) = grouped_aggregate_workload(12_000, 8);
    for fusion in [true, false] {
        for mode in [ExecMode::Resident, ExecMode::Staged] {
            let config = WeaverConfig {
                fusion,
                mode,
                ..WeaverConfig::default()
            };
            let compiled = compile(&plan, &config).unwrap();
            let admission = admit(&plan, &compiled, &[("t", &input)], u64::MAX).unwrap();
            let predicted = match mode {
                ExecMode::Resident => admission.resident_peak,
                ExecMode::Staged => admission.staged_peak,
            };
            let mut dev = device();
            execute_compiled(&plan, &compiled, &[("t", &input)], &mut dev, &config).unwrap();
            assert_eq!(
                dev.memory().peak(),
                predicted,
                "fusion={fusion} mode={mode:?}"
            );
            assert_eq!(dev.metrics().counter("kw_arena_spills_total"), 0);
        }
    }
}

/// Tentpole regression gate: a fused plan's trace carries exactly one Alloc
/// and one Free span — the arena reservation and its return — regardless of
/// plan depth. Per-buffer churn is sub-allocation, invisible to the trace.
#[test]
fn alloc_free_spans_are_o1_across_plan_depths() {
    for depth in [1usize, 2, 4, 6] {
        let input = gen::micro_input(10_000, depth as u64);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let mut cur = t;
        for d in 0..depth {
            cur = plan
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(d % 3, CmpOp::Lt, Value::U32(u32::MAX - d as u32)),
                    },
                    &[cur],
                )
                .unwrap();
        }
        plan.mark_output(cur);
        for fusion in [true, false] {
            let config = WeaverConfig {
                fusion,
                ..WeaverConfig::default()
            };
            let mut dev = device();
            let report = execute_plan(&plan, &[("t", &input)], &mut dev, &config).unwrap();
            assert_eq!(
                span_counts(&report.spans),
                (1, 1),
                "depth={depth} fusion={fusion}: spans must not scale with steps"
            );
            // Fusion may collapse the chain to one step, but every run
            // still needs input + scratch + result — all arena-served.
            let arena = report.arena.unwrap();
            assert!(
                arena.sub_allocs >= 3,
                "per-step buffers go through the arena"
            );
            if !fusion {
                assert!(
                    arena.sub_allocs as usize >= depth,
                    "unfused: one scratch+result per step"
                );
            }
        }
    }
}

/// The same gate for out-of-core runs: one arena serves every chunk (reset
/// between iterations), so the parent device's trace gains NO alloc/free
/// spans no matter the chunk count, and the arena reports one reset per
/// executed chunk.
#[test]
fn chunked_runs_share_one_arena_across_chunks() {
    let input = gen::micro_input(40_000, 31);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[t],
        )
        .unwrap();
    plan.mark_output(s);

    for chunks in [2usize, 4, 8] {
        let mut dev = device();
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();
        assert_eq!(report.chunks, chunks);
        assert_eq!(
            span_counts(dev.spans()),
            (0, 0),
            "chunks={chunks}: scratch allocation must not reach the parent trace"
        );
        let arena = report.arena.expect("executed chunks imply an arena");
        assert_eq!(
            arena.resets as usize, chunks,
            "one reset per chunk iteration"
        );
        assert!(arena.high_water <= arena.reservation);
        // Satellite: the fork's footprint reaches the parent gauges. What
        // the fork really allocated is the arena reservation (an upper
        // envelope of the per-chunk sub-allocation peak).
        assert_eq!(dev.memory().peak(), arena.reservation);
        assert!(dev.memory().peak() >= report.peak_device_bytes);
        assert!(report.peak_device_bytes > 0);
    }
}

/// Byte-identity across every chunk strategy: row-slice, hash-partition and
/// partial-aggregate runs produce exactly the resident executor's answer.
#[test]
fn chunk_strategies_are_byte_identical_to_resident() {
    // Row slice.
    let input = gen::micro_input(24_000, 41);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(2, CmpOp::Lt, Value::U32(u32::MAX / 3)),
            },
            &[t],
        )
        .unwrap();
    plan.mark_output(s);
    let mut d1 = device();
    let resident =
        execute_plan(&plan, &[("t", &input)], &mut d1, &WeaverConfig::default()).unwrap();
    let mut d2 = device();
    let chunked = execute_chunked(
        &plan,
        &[("t", &input)],
        &mut d2,
        &WeaverConfig::default(),
        6,
    )
    .unwrap();
    assert_eq!(chunked.strategy, ChunkStrategy::RowSlice);
    assert_eq!(chunked.outputs, resident.outputs);

    // Hash partition (join).
    let (a, b) = gen::join_inputs(6_000, 2, 0.5, 42);
    let mut jp = QueryPlan::new();
    let na = jp.add_input("a", a.schema().clone());
    let nb = jp.add_input("b", b.schema().clone());
    let j = jp.add_op(RaOp::Join { key_len: 1 }, &[na, nb]).unwrap();
    jp.mark_output(j);
    let mut d3 = device();
    let resident = execute_plan(
        &jp,
        &[("a", &a), ("b", &b)],
        &mut d3,
        &WeaverConfig::default(),
    )
    .unwrap();
    let mut d4 = device();
    let chunked = execute_chunked(
        &jp,
        &[("a", &a), ("b", &b)],
        &mut d4,
        &WeaverConfig::default(),
        4,
    )
    .unwrap();
    assert_eq!(chunked.strategy, ChunkStrategy::HashPartition);
    assert_eq!(chunked.outputs, resident.outputs);

    // Partial aggregate.
    let (ap, input2) = grouped_aggregate_workload(18_000, 43);
    let mut d5 = device();
    let resident = execute_plan(&ap, &[("t", &input2)], &mut d5, &WeaverConfig::default()).unwrap();
    let mut d6 = device();
    let chunked =
        execute_chunked(&ap, &[("t", &input2)], &mut d6, &WeaverConfig::default(), 5).unwrap();
    assert_eq!(chunked.strategy, ChunkStrategy::PartialAggregate);
    assert_eq!(chunked.outputs, resident.outputs);
}

/// Fault injection does not bend results: a resilient run under transient
/// faults returns the clean run's bytes, and the span invariant holds for
/// the winning attempt's trace.
#[test]
fn faulted_runs_stay_byte_identical() {
    let w = Pattern::B.build(6_000, 51);
    let bindings = w.bindings();
    let mut clean_dev = device();
    let clean = execute_resilient(
        &w.plan,
        &bindings,
        &mut clean_dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .unwrap();

    for seed in [1u64, 2, 3] {
        let mut dev = device();
        dev.inject_faults(FaultConfig {
            seed,
            transfer_rate: 0.05,
            launch_rate: 0.05,
            ..FaultConfig::default()
        });
        let report = execute_resilient(
            &w.plan,
            &bindings,
            &mut dev,
            &WeaverConfig::default(),
            &RetryPolicy {
                max_retries: 64,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        assert_eq!(report.outputs, clean.outputs, "seed={seed}");
        assert_eq!(dev.memory().in_use(), 0, "seed={seed}: leak after faults");
    }
}

/// Strict policy: a duplicate-key join whose true output exceeds the
/// admission estimate dies with the *typed* overflow — a capacity error the
/// resilient ladder understands — instead of a silent mid-plan OOM. The
/// default Spill policy completes the same query with the mispredictions
/// counted.
#[test]
fn strict_overflow_is_typed_and_spill_completes() {
    let schema = Schema::uniform_u32(2);
    let build = |n: usize, salt: u64| {
        let mut words = Vec::with_capacity(n * 2);
        for i in 0..n {
            words.push(7u64);
            words.push((i as u64).wrapping_mul(salt) % 499);
        }
        Relation::from_words(schema.clone(), words).unwrap()
    };
    let (l, r) = (build(800, 13), build(500, 31));
    let mut plan = QueryPlan::new();
    let x = plan.add_input("x", l.schema().clone());
    let y = plan.add_input("y", r.schema().clone());
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
    plan.mark_output(j);
    let bindings: &[(&str, &Relation)] = &[("x", &l), ("y", &r)];

    let strict = WeaverConfig {
        arena: ArenaPolicy::Strict,
        ..WeaverConfig::default()
    };
    let mut dev = device();
    let err = execute_plan(&plan, bindings, &mut dev, &strict).unwrap_err();
    assert!(err.is_capacity(), "typed, ladder-visible: {err}");
    assert!(err.to_string().contains("arena overflow"), "{err}");
    assert_eq!(dev.memory().in_use(), 0, "strict failure must not leak");

    let mut dev2 = device();
    let report = execute_plan(&plan, bindings, &mut dev2, &WeaverConfig::default()).unwrap();
    assert_eq!(report.outputs[&j], ops::join(&l, &r, 1).unwrap());
    assert!(dev2.metrics().counter("kw_arena_spills_total") > 0);
    assert!(report.peak_device_bytes > report.arena.unwrap().reservation);
    assert_eq!(dev2.memory().in_use(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: chunked execution is byte-identical to resident execution
    /// for any elementwise plan, input size and chunk count, and the
    /// parent trace never gains alloc/free spans.
    #[test]
    fn prop_chunked_byte_identity(
        n in 256usize..8_192,
        seed in 0u64..1_000,
        chunks in 1usize..10,
        fusion in any::<bool>(),
    ) {
        let input = gen::micro_input(n, seed);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        let p = plan
            .add_op(
                RaOp::Project { attrs: vec![0, 2], key_arity: 1 },
                &[s],
            )
            .unwrap();
        plan.mark_output(p);
        let config = WeaverConfig { fusion, ..WeaverConfig::default() };

        let mut d1 = device();
        let resident = execute_plan(&plan, &[("t", &input)], &mut d1, &config).unwrap();
        let mut d2 = device();
        let chunked = execute_chunked(&plan, &[("t", &input)], &mut d2, &config, chunks).unwrap();

        prop_assert_eq!(&chunked.outputs, &resident.outputs);
        prop_assert_eq!(span_counts(&resident.spans), (1, 1));
        prop_assert_eq!(span_counts(d2.spans()), (0, 0));
        prop_assert_eq!(d2.memory().in_use(), 0);
    }

    /// Property: predictor fidelity holds for arbitrary select/project
    /// pipelines in both modes — the fresh-device tracker peak IS the
    /// admission prediction.
    #[test]
    fn prop_predicted_peak_is_exact(
        n in 256usize..4_096,
        seed in 0u64..1_000,
        depth in 1usize..5,
        staged in any::<bool>(),
    ) {
        let input = gen::micro_input(n, seed);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let mut cur = t;
        for d in 0..depth {
            cur = plan
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(d % 3, CmpOp::Lt, Value::U32(u32::MAX / 2 + d as u32)),
                    },
                    &[cur],
                )
                .unwrap();
        }
        plan.mark_output(cur);
        let mode = if staged { ExecMode::Staged } else { ExecMode::Resident };
        let config = WeaverConfig { mode, ..WeaverConfig::default() };
        let compiled = compile(&plan, &config).unwrap();
        let admission = admit(&plan, &compiled, &[("t", &input)], u64::MAX).unwrap();
        let predicted = match mode {
            ExecMode::Resident => admission.resident_peak,
            ExecMode::Staged => admission.staged_peak,
        };
        let mut dev = device();
        execute_compiled(&plan, &compiled, &[("t", &input)], &mut dev, &config).unwrap();
        prop_assert_eq!(dev.memory().peak(), predicted);
        prop_assert_eq!(dev.metrics().counter("kw_arena_spills_total"), 0);
    }
}
