//! Robustness fuzzing of the bench-harness JSON reader: [`parse_json`]
//! must be total — arbitrary input, mutated valid exports, and
//! adversarially deep documents all yield `Ok` or a typed [`JsonError`],
//! never a panic or stack overflow.

use proptest::prelude::*;

use kw_gpu_sim::{parse_json, JsonValue, MetricsRegistry, MAX_JSON_DEPTH};

/// A representative hand-rolled export, like the ones `paper_tables`
/// writes: nested objects, arrays of rows, strings, floats, nulls.
fn sample_export() -> String {
    let mut m = MetricsRegistry::default();
    m.inc("kw_service_arrivals_total", 96);
    m.set_gauge("kw_plan_cache_entries", 3.0);
    m.observe("kw_service_total_latency_cycles", 1200);
    format!(
        "{{\"meta\": {{\"device\": \"fermi_c2050\", \"seed\": 43089}}, \
          \"rows\": [{{\"offered_qps\": 250.0, \"p99_seconds\": 0.0125, \"slo_met\": true}}, \
                     {{\"offered_qps\": 500.0, \"p99_seconds\": null, \"slo_met\": false}}], \
          \"metrics\": {}}}",
        m.to_json()
    )
}

#[test]
fn sample_export_parses() {
    let doc = parse_json(&sample_export()).unwrap();
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get("offered_qps").unwrap().as_f64(), Some(250.0));
    assert_eq!(rows[1].get("p99_seconds"), Some(&JsonValue::Null));
}

#[test]
fn bracket_bombs_error_without_overflow() {
    for pat in ["[", "{\"k\":", "[{\"k\":["] {
        let bomb = pat.repeat(50_000);
        let err = parse_json(&bomb).unwrap_err();
        assert!(err.offset <= bomb.len(), "offset in range for {pat:?}");
    }
    // A document right at the depth limit still parses.
    let deep = format!(
        "{}0{}",
        "[".repeat(MAX_JSON_DEPTH - 1),
        "]".repeat(MAX_JSON_DEPTH - 1)
    );
    assert!(parse_json(&deep).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn parser_is_total_on_arbitrary_text(src in "[ -~\n\t]{0,300}") {
        match parse_json(&src) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.offset <= src.len());
                let _ = e.to_string();
            }
        }
    }

    /// Soup built from JSON's own token alphabet (reaches deeper parser
    /// states than raw text) never panics.
    #[test]
    fn parser_is_total_on_json_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(",".to_string()),
                Just(":".to_string()),
                Just("\"k\"".to_string()),
                Just("\"".to_string()),
                Just("\\u12".to_string()),
                Just("null".to_string()),
                Just("true".to_string()),
                Just("-1.5e3".to_string()),
                Just("0".to_string()),
            ],
            0..40,
        )
    ) {
        let src = parts.join("");
        let _ = parse_json(&src);
    }

    /// Mutating one byte of a valid export never panics: the document
    /// either still parses or reports a typed offset-carrying error.
    #[test]
    fn mutated_exports_never_panic(idx in 0usize..4096, replacement in "[ -~]{1,1}") {
        let base = sample_export();
        let mut bytes = base.into_bytes();
        let pos = idx % bytes.len();
        bytes[pos] = replacement.as_bytes()[0];
        let src = String::from_utf8(bytes).unwrap();
        match parse_json(&src) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.offset <= src.len(), "offset out of range: {e}"),
        }
    }

    /// Valid exports with multi-byte UTF-8 strings round-trip; truncating
    /// them anywhere (on a char boundary) stays total.
    #[test]
    fn unicode_truncations_stay_total(cut in 0usize..200) {
        let src = "{\"name\": \"héllo — ∑ ✓ жизнь\", \"v\": [1, 2, 3]}";
        let prefix: String = src.chars().take(cut).collect();
        let _ = parse_json(&prefix);
    }
}
