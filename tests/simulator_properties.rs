//! Property-based tests of the GPU simulator substrate and the relational
//! data model: occupancy monotonicity, cost-model linearity, memory-tracker
//! conservation, and the algebraic laws of the CPU reference operators.

use proptest::prelude::*;

use kw_gpu_sim::{
    kernel_cost, occupancy, DeviceConfig, Engine, KernelQuantities, KernelResources, LaunchDims,
    MemoryTracker, StreamModel,
};
use kw_relational::{gen, ops, CmpOp, Predicate, Relation, Schema, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Occupancy never increases when a kernel demands more registers or
    /// more shared memory.
    #[test]
    fn occupancy_is_monotone(
        threads in 32u32..1024,
        regs in 1u32..63,
        shared in 0u32..48 * 1024,
        dr in 0u32..8,
        ds in 0u32..4096,
    ) {
        let cfg = DeviceConfig::fermi_c2050();
        let base = occupancy(&cfg, threads, regs, shared);
        let more_regs = occupancy(&cfg, threads, regs + dr, shared);
        let more_shared = occupancy(&cfg, threads, regs, shared + ds);
        prop_assert!(more_regs.occupancy <= base.occupancy + 1e-12);
        prop_assert!(more_shared.occupancy <= base.occupancy + 1e-12);
    }

    /// Kernel cost grows monotonically in every work quantity.
    #[test]
    fn kernel_cost_is_monotone(
        bytes in 0u64..1 << 28,
        extra in 0u64..1 << 24,
        alu in 0u64..1 << 24,
    ) {
        let cfg = DeviceConfig::fermi_c2050();
        let dims = LaunchDims::new(1024, 256);
        let res = KernelResources { registers_per_thread: 20, shared_per_cta: 2048 };
        let q1 = KernelQuantities { global_bytes_read: bytes, alu_ops: alu, ..Default::default() };
        let q2 = KernelQuantities {
            global_bytes_read: bytes + extra, alu_ops: alu, ..Default::default()
        };
        let c1 = kernel_cost(&cfg, dims, res, &q1).unwrap();
        let c2 = kernel_cost(&cfg, dims, res, &q2).unwrap();
        prop_assert!(c2.total_cycles() >= c1.total_cycles());
    }

    /// The memory tracker conserves bytes: after freeing everything,
    /// in-use returns to zero and peak ≥ any single allocation.
    #[test]
    fn memory_tracker_conserves(allocs in proptest::collection::vec(1u64..1 << 16, 1..32)) {
        let total: u64 = allocs.iter().sum();
        let mut m = MemoryTracker::new(total);
        let ids: Vec<_> = allocs
            .iter()
            .map(|&b| m.alloc(b, "x").expect("fits"))
            .collect();
        prop_assert_eq!(m.in_use(), total);
        prop_assert_eq!(m.peak(), total);
        for id in ids {
            m.free(id).expect("live");
        }
        prop_assert_eq!(m.in_use(), 0);
        prop_assert_eq!(m.peak(), total);
        prop_assert_eq!(m.total_allocated(), total);
    }

    /// SELECT distributes over predicate conjunction:
    /// σ_{p∧q}(R) = σ_q(σ_p(R)).
    #[test]
    fn select_conjunction_law(n in 0usize..400, seed in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        let r = gen::micro_input(n, seed);
        let p = Predicate::cmp(1, CmpOp::Lt, Value::U32(a));
        let q = Predicate::cmp(2, CmpOp::Ge, Value::U32(b));
        let both = ops::select(&r, &p.clone().and(q.clone())).unwrap();
        let seq = ops::select(&ops::select(&r, &p).unwrap(), &q).unwrap();
        prop_assert_eq!(both, seq);
    }

    /// Set-operation laws on keyed relations: A∩A = unique-by-key(A),
    /// A∖A = ∅, A∪∅ = A.
    #[test]
    fn set_operation_laws(n in 0usize..300, seed in any::<u64>()) {
        let a = gen::random_relation(
            &Schema::uniform_u32(2), n, 64, &mut gen::rng(seed),
        );
        let empty = Relation::empty(a.schema().clone());
        prop_assert!(ops::difference(&a, &a).unwrap().is_empty());
        // One tuple per distinct key (UNION/INTERSECT are keyed set ops).
        let distinct_keys = {
            let mut keys: Vec<u64> = a.iter().map(|t| t[0]).collect();
            keys.dedup();
            keys.len()
        };
        let union = ops::union(&a, &empty).unwrap();
        prop_assert_eq!(union.len(), distinct_keys);
        let inter = ops::intersect(&a, &a).unwrap();
        prop_assert_eq!(inter, union);
    }

    /// JOIN cardinality equals the sum over shared keys of the product of
    /// per-side multiplicities.
    #[test]
    fn join_cardinality(n in 0usize..200, m in 0usize..200, seed in any::<u64>()) {
        let a = gen::random_relation(&Schema::uniform_u32(2), n, 32, &mut gen::rng(seed));
        let b = gen::random_relation(&Schema::uniform_u32(2), m, 32, &mut gen::rng(seed ^ 1));
        let j = ops::join(&a, &b, 1).unwrap();
        let mut expected = 0usize;
        for k in 0..32u64 {
            let ca = a.iter().filter(|t| t[0] == k).count();
            let cb = b.iter().filter(|t| t[0] == k).count();
            expected += ca * cb;
        }
        prop_assert_eq!(j.len(), expected);
    }

    /// sort_on is idempotent and preserves the multiset of tuples.
    #[test]
    fn sort_on_permutes(n in 0usize..300, seed in any::<u64>(), attr in 0usize..4) {
        let r = gen::micro_input(n, seed);
        let s = ops::sort_on(&r, &[attr]).unwrap();
        prop_assert_eq!(s.len(), r.len());
        prop_assert!(s.is_sorted());
        let again = ops::sort_on(&s, &[0]).unwrap();
        prop_assert_eq!(again.words(), s.words());
    }

    /// Relations round-trip through rows.
    #[test]
    fn relation_row_roundtrip(n in 0usize..100, seed in any::<u64>()) {
        let r = gen::micro_input(n, seed);
        let rows = r.to_rows();
        let r2 = Relation::from_rows(r.schema().clone(), &rows).unwrap();
        prop_assert_eq!(r, r2);
    }

    /// On a pure three-stage pipeline (upload → compute → download per
    /// chunk, one stream per chunk, one compute engine) the stream/event
    /// scheduler's makespan equals the closed-form recurrence the chunked
    /// executor used to report. Durations are small integers, so the
    /// f64 oracle arithmetic is exact and the comparison needs no epsilon.
    #[test]
    fn stream_makespan_matches_pipeline_oracle(
        durations in proptest::collection::vec((1u64..1_000, 1u64..1_000, 1u64..1_000), 1..24),
    ) {
        let mut model = StreamModel::new(1);
        for &(h2d, gpu, d2h) in &durations {
            let s = model.create_stream();
            model.schedule(s, Engine::CopyH2D, "h2d", h2d, 0).unwrap();
            model.schedule(s, model.compute_engine(s), "gpu", gpu, 0).unwrap();
            model.schedule(s, Engine::CopyD2H, "d2h", d2h, 0).unwrap();
        }
        let oracle: Vec<(f64, f64, f64)> = durations
            .iter()
            .map(|&(h, g, d)| (h as f64, g as f64, d as f64))
            .collect();
        prop_assert_eq!(
            model.makespan() as f64,
            kw_core::pipeline_makespan(&oracle),
            "stream schedule must reproduce the three-stage recurrence"
        );
    }

    /// The stream scheduler's makespan is bounded on both sides: it never
    /// exceeds the fully serialized sum of all scheduled work, and it never
    /// beats the busiest single engine (engines process one op at a time).
    #[test]
    fn stream_makespan_is_bounded(
        compute_engines in 1u32..4,
        ops in proptest::collection::vec((0u8..5, 1u64..10_000), 1..48),
    ) {
        let mut model = StreamModel::new(compute_engines);
        let streams: Vec<_> = (0..4).map(|_| model.create_stream()).collect();
        for &(pick, duration) in &ops {
            let s = streams[(pick as usize) % streams.len()];
            let engine = match pick {
                0 => Engine::CopyH2D,
                1 => Engine::CopyD2H,
                _ => model.compute_engine(s),
            };
            model.schedule(s, engine, "op", duration, 0).unwrap();
        }
        let serialized: u64 = ops.iter().map(|&(_, d)| d).sum();
        let busiest = model.engine_busy().values().copied().max().unwrap_or(0);
        prop_assert!(model.makespan() <= serialized);
        prop_assert!(model.makespan() >= busiest);
    }
}
