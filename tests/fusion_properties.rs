//! Property-based tests of the fusion compiler: for randomly generated
//! plans and data, fusion never changes results, never exceeds its resource
//! budget, and never loses to the baseline on data movement.

use proptest::prelude::*;

use kw_core::{compile, execute_plan, QueryPlan, ResourceBudget, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_kernel_ir::{estimate_resources, infer_schemas, OptLevel};
use kw_primitives::RaOp;
use kw_relational::{CmpOp, Expr, Predicate, Relation, Schema, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// A random unary operator compatible with 4-attribute u32 schemas.
fn arb_unary_op() -> impl Strategy<Value = RaOp> {
    prop_oneof![
        // SELECT with a random threshold on a random attribute.
        (
            0usize..4,
            any::<u32>(),
            prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Ge), Just(CmpOp::Ne)]
        )
            .prop_map(|(attr, v, op)| RaOp::Select {
                pred: Predicate::cmp(attr, op, Value::U32(v)),
            }),
        // Key-preserving PROJECT back to 4 attributes (keeps schemas closed
        // under composition so chains of any shape type-check).
        proptest::sample::subsequence(vec![1usize, 2, 3], 3).prop_map(|mut rest| {
            let mut attrs = vec![0usize];
            attrs.append(&mut rest);
            while attrs.len() < 4 {
                attrs.push(attrs.len() % 3 + 1);
            }
            RaOp::Project {
                attrs,
                key_arity: 1,
            }
        }),
        // Arithmetic MAP preserving arity.
        (1u32..1000).prop_map(|c| RaOp::Map {
            exprs: vec![
                Expr::attr(0),
                Expr::attr(1).add(Expr::lit(c)),
                Expr::attr(2).mul(Expr::lit(2u32)),
                Expr::attr(3),
            ],
            key_arity: 1,
        }),
    ]
}

/// A random relation of 4-attribute u32 tuples.
fn arb_relation(max_n: usize) -> impl Strategy<Value = Relation> {
    (0..max_n, any::<u64>()).prop_map(|(n, seed)| {
        kw_relational::gen::random_relation(
            &Schema::uniform_u32(4),
            n,
            1 << 12,
            &mut kw_relational::gen::rng(seed),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused and unfused execution agree on random unary chains.
    #[test]
    fn random_unary_chains_fuse_correctly(
        input in arb_relation(600),
        ops in proptest::collection::vec(arb_unary_op(), 1..6),
    ) {
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let mut prev = t;
        for op in &ops {
            prev = plan.add_op(op.clone(), &[prev]).expect("chain type-checks");
        }
        plan.mark_output(prev);

        let mut d1 = device();
        let fused = execute_plan(&plan, &[("t", &input)], &mut d1, &WeaverConfig::default())
            .expect("fused");
        let mut d2 = device();
        let base = execute_plan(
            &plan, &[("t", &input)], &mut d2, &WeaverConfig::default().baseline(),
        ).expect("baseline");

        prop_assert_eq!(&fused.outputs, &base.outputs);
        // Fusion never moves more global bytes than the baseline.
        prop_assert!(
            fused.stats.global_bytes() <= base.stats.global_bytes(),
            "fused {} > base {}", fused.stats.global_bytes(), base.stats.global_bytes()
        );
    }

    /// Random two-table plans with a join: fused == unfused == same outputs
    /// in both exec modes.
    #[test]
    fn random_join_plans_fuse_correctly(
        n in 1usize..500,
        seed in any::<u64>(),
        pre_ops in proptest::collection::vec(arb_unary_op(), 0..3),
    ) {
        let (a, b) = kw_relational::gen::join_inputs(n, 4, 0.5, seed);
        let mut plan = QueryPlan::new();
        let na = plan.add_input("a", a.schema().clone());
        let nb = plan.add_input("b", b.schema().clone());
        let mut left = na;
        for op in &pre_ops {
            left = plan.add_op(op.clone(), &[left]).expect("pre-op");
        }
        let j = plan.add_op(RaOp::Join { key_len: 1 }, &[left, nb]).expect("join");
        plan.mark_output(j);

        let mut d1 = device();
        let fused = execute_plan(&plan, &[("a", &a), ("b", &b)], &mut d1, &WeaverConfig::default())
            .expect("fused");
        let mut d2 = device();
        let base = execute_plan(
            &plan, &[("a", &a), ("b", &b)], &mut d2, &WeaverConfig::default().baseline(),
        ).expect("baseline");
        prop_assert_eq!(&fused.outputs, &base.outputs);
    }

    /// Every fused kernel the compiler emits respects the resource budget
    /// it was selected under.
    #[test]
    fn fusion_sets_respect_budget(
        seed in any::<u64>(),
        regs in 24u32..63,
        shared_kib in 2u32..48,
    ) {
        let w = kw_tpch::Pattern::C.build(512, seed);
        let budget = ResourceBudget {
            max_registers_per_thread: regs,
            max_shared_per_cta: shared_kib * 1024,
        };
        let config = WeaverConfig { budget, ..WeaverConfig::default() };
        let compiled = compile(&w.plan, &config).expect("compile");
        for step in compiled.steps.iter().filter(|s| s.fused) {
            let inferred = infer_schemas(&step.op).expect("infer");
            let res = estimate_resources(&step.op, &inferred, OptLevel::O3).expect("resources");
            prop_assert!(budget.admits(res), "{}: {res:?} vs {budget:?}", step.op.label);
        }
    }

    /// Optimization level never changes results on random chains.
    #[test]
    fn opt_level_preserves_results(
        input in arb_relation(400),
        ops in proptest::collection::vec(arb_unary_op(), 1..5),
    ) {
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let mut prev = t;
        for op in &ops {
            prev = plan.add_op(op.clone(), &[prev]).expect("chain");
        }
        plan.mark_output(prev);

        let mut d0 = device();
        let o0 = execute_plan(&plan, &[("t", &input)], &mut d0, &WeaverConfig {
            opt: OptLevel::O0, ..WeaverConfig::default()
        }).expect("O0");
        let mut d3 = device();
        let o3 = execute_plan(&plan, &[("t", &input)], &mut d3, &WeaverConfig::default())
            .expect("O3");
        prop_assert_eq!(&o0.outputs, &o3.outputs);
        // O0 never beats O3 on GPU cycles.
        prop_assert!(o0.stats.gpu_cycles >= o3.stats.gpu_cycles);
    }
}
