//! Integration coverage for the Section 2.3 / Section 6 extensions:
//! rescheduling, chunked double buffering, DOT export, and alternative
//! device targets — all through the public API only.

use kw_core::{
    compile, execute_chunked, execute_plan, is_elementwise, plan_to_dot, reschedule, QueryPlan,
    WeaverConfig,
};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Schema, Value};

fn sel(attr: usize) -> RaOp {
    RaOp::Select {
        pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(u32::MAX / 2)),
    }
}

#[test]
fn rescheduled_plans_execute_identically_and_faster() {
    let input = gen::micro_input(60_000, 61);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let pre = plan.add_op(sel(1), &[t]).unwrap();
    let srt = plan.add_op(RaOp::Sort { attrs: vec![2] }, &[pre]).unwrap();
    let post = plan.add_op(sel(1), &[srt]).unwrap();
    plan.mark_output(post);

    let r = reschedule(&plan).unwrap();
    assert_eq!(r.swaps, 1);

    let mut d1 = Device::new(DeviceConfig::fermi_c2050());
    let plain = execute_plan(&plan, &[("t", &input)], &mut d1, &WeaverConfig::default()).unwrap();
    let mut d2 = Device::new(DeviceConfig::fermi_c2050());
    let moved = execute_plan(&r.plan, &[("t", &input)], &mut d2, &WeaverConfig::default()).unwrap();

    let out_plain = &plain.outputs[&post];
    let out_moved = &moved.outputs[&r.node_map[&post]];
    assert_eq!(out_plain, out_moved);
    assert!(
        moved.gpu_seconds < plain.gpu_seconds,
        "{} vs {}",
        moved.gpu_seconds,
        plain.gpu_seconds
    );
}

#[test]
fn chunked_execution_scales_with_chunk_count() {
    let input = gen::micro_input(80_000, 62);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan.add_op(sel(2), &[t]).unwrap();
    plan.mark_output(s);
    assert!(is_elementwise(&plan));

    let mut prev_outputs = None;
    for chunks in [1usize, 3, 16] {
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();
        assert_eq!(report.chunks, chunks);
        assert!(report.pipelined_seconds <= report.serialized_seconds + 1e-12);
        if let Some(prev) = &prev_outputs {
            assert_eq!(&report.outputs, prev, "chunk count must not change results");
        }
        prev_outputs = Some(report.outputs);
    }
}

#[test]
fn dot_export_covers_fused_and_boundary_nodes() {
    let input_schema = Schema::uniform_u32(4);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input_schema);
    let a = plan.add_op(sel(1), &[t]).unwrap();
    let b = plan.add_op(sel(2), &[a]).unwrap();
    let srt = plan.add_op(RaOp::Sort { attrs: vec![3] }, &[b]).unwrap();
    plan.mark_output(srt);

    let compiled = compile(&plan, &WeaverConfig::default()).unwrap();
    let dot = plan_to_dot(&plan, Some(&compiled));
    assert!(dot.contains("cluster_fused_0"), "{dot}");
    assert!(dot.contains("SORT"));
    assert!(dot.contains("SELECT"));
    // Well-formed-ish: braces balance.
    assert_eq!(dot.matches('{').count(), dot.matches('}').count());
}

#[test]
fn alternative_devices_run_all_patterns() {
    for cfg in [DeviceConfig::fused_apu(), DeviceConfig::cpu_like()] {
        for pattern in kw_tpch::Pattern::all() {
            let w = pattern.build(2_000, 63);
            let mut fused_dev = Device::new(cfg.clone());
            let fused = w.run(&mut fused_dev, &WeaverConfig::default()).unwrap();
            let mut base_dev = Device::new(cfg.clone());
            let base = w
                .run(&mut base_dev, &WeaverConfig::default().baseline())
                .unwrap();
            assert_eq!(
                fused.outputs,
                base.outputs,
                "{} on {}",
                pattern.label(),
                cfg.name
            );
            assert!(
                fused.gpu_seconds <= base.gpu_seconds,
                "{} on {}: fusion must not lose",
                pattern.label(),
                cfg.name
            );
        }
    }
}

#[test]
fn overlapped_seconds_is_max_of_streams() {
    // Non-streamed (resident) run: nothing was measured, so the accessor
    // falls back to the closed-form perfect-overlap estimate max(gpu, pcie).
    let input = gen::micro_input(10_000, 64);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan.add_op(sel(1), &[t]).unwrap();
    plan.mark_output(s);
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default()).unwrap();
    assert!(report.pipelined_seconds.is_none());
    let expect = report.gpu_seconds.max(report.pcie_seconds);
    assert!((report.overlapped_seconds() - expect).abs() < 1e-15);

    // Streamed (staged) run: the accessor must report the *measured*
    // stream-graph wallclock, not the closed-form estimate — the measured
    // value respects data dependences, so it can only be slower than (or
    // equal to) perfect overlap, and never slower than fully serialized.
    let staged = WeaverConfig {
        mode: kw_core::ExecMode::Staged,
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &staged).unwrap();
    let measured = report.pipelined_seconds.expect("staged runs are streamed");
    assert!((report.overlapped_seconds() - measured).abs() < 1e-15);
    let perfect = report.gpu_seconds.max(report.pcie_seconds);
    assert!(
        measured >= perfect - 1e-12,
        "{measured} vs perfect {perfect}"
    );
    assert!(measured <= report.serialized_seconds + 1e-12);
}

#[test]
fn staged_mode_overlaps_transfers_with_compute() {
    // Independent selects over a shared staged input (the paper's pattern
    // (d)): the first select's result download overlaps the second
    // select's computation, so the measured wallclock beats the fully
    // serialized schedule — and both bounds of the report stay ordered and
    // reconciled. (A pure chain would legitimately *not* overlap: each
    // result round-trips into the very next step.)
    let input = gen::micro_input(200_000, 65);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let a = plan.add_op(sel(0), &[t]).unwrap();
    let b = plan.add_op(sel(1), &[t]).unwrap();
    plan.mark_output(a);
    plan.mark_output(b);
    let staged = WeaverConfig {
        mode: kw_core::ExecMode::Staged,
        ..WeaverConfig::default()
    };

    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let unfused = execute_plan(&plan, &[("t", &input)], &mut dev, &staged.baseline()).unwrap();
    assert!(
        unfused.total_seconds < unfused.serialized_seconds * 0.999,
        "staged streaming should overlap real time: {} vs {}",
        unfused.total_seconds,
        unfused.serialized_seconds
    );
    // serialized_seconds is still the pre-stream serial cost: every charge
    // summed with nothing hidden.
    let serial_sum = dev.gpu_seconds() + dev.pcie_secs();
    assert!((unfused.serialized_seconds - serial_sum).abs() < 1e-9);
    kw_gpu_sim::reconcile(&unfused.spans, &unfused.stats).unwrap();

    // Streaming must not change results: the staged run still matches a
    // resident run of the same plan.
    let mut resident_dev = Device::new(DeviceConfig::fermi_c2050());
    let resident = execute_plan(
        &plan,
        &[("t", &input)],
        &mut resident_dev,
        &WeaverConfig::default().baseline(),
    )
    .unwrap();
    assert_eq!(unfused.outputs, resident.outputs);
}
