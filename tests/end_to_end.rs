//! End-to-end integration tests: plans flow through Kernel Weaver's full
//! pipeline (candidates → selection → weaving → optimization → simulated
//! execution) and every configuration produces the CPU oracle's answer.

use kw_core::{compile, execute_plan, ExecMode, QueryPlan, ResourceBudget, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_kernel_ir::OptLevel;
use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{gen, ops, CmpOp, Expr, Predicate, Relation, Value};
use kw_tpch::Pattern;

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// Every combination of {fusion, opt level, exec mode} computes the same
/// relation for every micro-benchmark pattern.
#[test]
fn all_configurations_agree_on_all_patterns() {
    for pattern in Pattern::all() {
        let w = pattern.build(3_000, 11);
        let mut reference = None;
        for fusion in [true, false] {
            for opt in [OptLevel::O0, OptLevel::O3] {
                for mode in [ExecMode::Resident, ExecMode::Staged] {
                    let config = WeaverConfig {
                        fusion,
                        opt,
                        mode,
                        ..WeaverConfig::default()
                    };
                    let mut dev = device();
                    let report = w.run(&mut dev, &config).unwrap_or_else(|e| {
                        panic!("{} {fusion}/{opt:?}/{mode:?}: {e}", pattern.label())
                    });
                    match &reference {
                        None => reference = Some(report.outputs),
                        Some(r) => assert_eq!(
                            &report.outputs,
                            r,
                            "{} fusion={fusion} {opt:?} {mode:?}",
                            pattern.label()
                        ),
                    }
                }
            }
        }
    }
}

/// A deep mixed pipeline: selects, maps, joins, set ops, unique — fused
/// result equals the composed CPU reference operators.
#[test]
fn deep_mixed_pipeline_matches_cpu_oracle() {
    let (a, b) = gen::join_inputs(4_000, 4, 0.5, 3);

    let mut plan = QueryPlan::new();
    let na = plan.add_input("a", a.schema().clone());
    let nb = plan.add_input("b", b.schema().clone());
    let pred = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));
    let sa = plan
        .add_op(RaOp::Select { pred: pred.clone() }, &[na])
        .unwrap();
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[sa, nb]).unwrap();
    let pr = plan
        .add_op(
            RaOp::Project {
                attrs: vec![0, 1, 4],
                key_arity: 1,
            },
            &[j],
        )
        .unwrap();
    let mp = plan
        .add_op(
            RaOp::Map {
                exprs: vec![Expr::attr(0), Expr::attr(1).add(Expr::attr(2))],
                key_arity: 1,
            },
            &[pr],
        )
        .unwrap();
    let un = plan.add_op(RaOp::Unique, &[mp]).unwrap();
    plan.mark_output(un);

    // CPU oracle.
    let oracle = {
        let sa = ops::select(&a, &pred).unwrap();
        let j = ops::join(&sa, &b, 1).unwrap();
        let pr = ops::project(&j, &[0, 1, 4], 1).unwrap();
        let mp = ops::compute(&pr, &[Expr::attr(0), Expr::attr(1).add(Expr::attr(2))], 1).unwrap();
        ops::unique(&mp).unwrap()
    };

    for fusion in [true, false] {
        let config = WeaverConfig {
            fusion,
            ..WeaverConfig::default()
        };
        let mut dev = device();
        let report = execute_plan(&plan, &[("a", &a), ("b", &b)], &mut dev, &config).unwrap();
        assert_eq!(report.outputs[&un], oracle, "fusion={fusion}");
    }
}

/// Set operations and sorts compose correctly through the pipeline.
#[test]
fn set_operations_with_sort_boundary() {
    let x = gen::micro_input(2_000, 5);
    let y = gen::micro_input(2_000, 6);

    let mut plan = QueryPlan::new();
    let nx = plan.add_input("x", x.schema().clone());
    let ny = plan.add_input("y", y.schema().clone());
    let u = plan.add_op(RaOp::Union, &[nx, ny]).unwrap();
    let srt = plan.add_op(RaOp::Sort { attrs: vec![2] }, &[u]).unwrap();
    let sel = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 4)),
            },
            &[srt],
        )
        .unwrap();
    let d = plan.add_op(RaOp::Difference, &[sel, sel]).unwrap();
    plan.mark_output(d);

    let mut dev = device();
    let report = execute_plan(
        &plan,
        &[("x", &x), ("y", &y)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    // A \ A is empty.
    assert!(report.outputs[&d].is_empty());
}

/// Q1 and Q21 produce identical results across all execution configurations.
#[test]
fn tpch_queries_all_configurations() {
    for w in [kw_tpch::q1(1.0, 13), kw_tpch::q21(1.0, 13)] {
        let mut reference: Option<Relation> = None;
        for fusion in [true, false] {
            for mode in [ExecMode::Resident, ExecMode::Staged] {
                let config = WeaverConfig {
                    fusion,
                    mode,
                    ..WeaverConfig::default()
                };
                let mut dev = device();
                let report = w.run(&mut dev, &config).unwrap();
                let out = report.outputs.values().next().unwrap().clone();
                match &reference {
                    None => reference = Some(out),
                    Some(r) => assert_eq!(&out, r, "{} fusion={fusion} {mode:?}", w.name),
                }
            }
        }
    }
}

/// Tight resource budgets change the schedule but never the answer.
#[test]
fn budget_variations_preserve_results() {
    let w = Pattern::C.build(3_000, 17);
    let mut reference = None;
    for shared in [2 << 10, 6 << 10, 12 << 10, 48 << 10] {
        let config = WeaverConfig {
            budget: ResourceBudget {
                max_registers_per_thread: 63,
                max_shared_per_cta: shared,
            },
            ..WeaverConfig::default()
        };
        let mut dev = device();
        let report = w.run(&mut dev, &config).unwrap();
        match &reference {
            None => reference = Some(report.outputs),
            Some(r) => assert_eq!(&report.outputs, r, "shared budget {shared}"),
        }
    }
}

/// Aggregates after fusible pipelines: grouped sums equal the oracle.
#[test]
fn aggregate_pipeline_matches_oracle() {
    let input = gen::micro_input(5_000, 19);
    let pred = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));

    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan
        .add_op(RaOp::Select { pred: pred.clone() }, &[t])
        .unwrap();
    let g = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![3],
                aggs: vec![AggFn::Count, AggFn::Min(1), AggFn::Max(2)],
            },
            &[s],
        )
        .unwrap();
    plan.mark_output(g);

    let oracle = ops::aggregate(
        &ops::select(&input, &pred).unwrap(),
        &[3],
        &[AggFn::Count, AggFn::Min(1), AggFn::Max(2)],
    )
    .unwrap();

    let mut dev = device();
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default()).unwrap();
    assert_eq!(report.outputs[&g], oracle);
}

/// Semi- and anti-joins run fused and unfused with identical results and
/// match the CPU oracle, including when woven together with selects.
#[test]
fn semi_and_anti_joins_fuse_correctly() {
    let (a, b) = gen::join_inputs(3_000, 2, 0.5, 29);
    let pred = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));

    for (op, name) in [
        (RaOp::SemiJoin { key_len: 1 }, "semi"),
        (RaOp::AntiJoin { key_len: 1 }, "anti"),
    ] {
        let mut plan = QueryPlan::new();
        let na = plan.add_input("a", a.schema().clone());
        let nb = plan.add_input("b", b.schema().clone());
        let sa = plan
            .add_op(RaOp::Select { pred: pred.clone() }, &[na])
            .unwrap();
        let sj = plan.add_op(op, &[sa, nb]).unwrap();
        plan.mark_output(sj);

        let filtered = ops::select(&a, &pred).unwrap();
        let oracle = if name == "semi" {
            ops::semi_join(&filtered, &b, 1).unwrap()
        } else {
            ops::anti_join(&filtered, &b, 1).unwrap()
        };

        for fusion in [true, false] {
            let config = WeaverConfig {
                fusion,
                ..WeaverConfig::default()
            };
            let mut dev = device();
            let report = execute_plan(&plan, &[("a", &a), ("b", &b)], &mut dev, &config).unwrap();
            assert_eq!(report.outputs[&sj], oracle, "{name} fusion={fusion}");
            if fusion {
                assert_eq!(report.fusion_sets.len(), 1, "{name} should fuse");
            }
        }
    }
}

/// Semi-join then anti-join partition the left side.
#[test]
fn semi_anti_partition_property() {
    let (a, b) = gen::join_inputs(2_000, 2, 0.4, 31);
    let mut plan = QueryPlan::new();
    let na = plan.add_input("a", a.schema().clone());
    let nb = plan.add_input("b", b.schema().clone());
    let semi = plan
        .add_op(RaOp::SemiJoin { key_len: 1 }, &[na, nb])
        .unwrap();
    let anti = plan
        .add_op(RaOp::AntiJoin { key_len: 1 }, &[na, nb])
        .unwrap();
    plan.mark_output(semi);
    plan.mark_output(anti);
    let mut dev = device();
    let report = execute_plan(
        &plan,
        &[("a", &a), ("b", &b)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    assert_eq!(
        report.outputs[&semi].len() + report.outputs[&anti].len(),
        a.len()
    );
}

/// The compiled baseline of Q21 launches 3 kernels per streaming operator
/// plus the sort/aggregate passes — the paper's "operators map to many
/// kernels" observation.
#[test]
fn kernel_counts_match_operator_structure() {
    let w = kw_tpch::q21(1.0, 23);
    let compiled = compile(&w.plan, &WeaverConfig::default().baseline()).unwrap();
    let mut dev = device();
    let report = w
        .run(&mut dev, &WeaverConfig::default().baseline())
        .unwrap();
    assert_eq!(report.operator_count, compiled.steps.len());
    // At least 3 kernels per streaming op; sorts add passes.
    assert!(report.stats.kernel_launches >= 3 * compiled.steps.len() as u64);
}
