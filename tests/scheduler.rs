//! Property and acceptance tests for the multi-query stream scheduler:
//! batching never changes results, never loses to running the queries one
//! at a time, never beats the busiest engine's physical floor — and on
//! real batches it strictly wins while the trace still reconciles.

use proptest::prelude::*;

use kw_core::{
    execute_batch, execute_batch_with_policy, execute_plan, BatchQuery, QueryPlan, RetryPolicy,
    WeaverConfig,
};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig, FaultKind, ScriptedFault};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Relation, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// A SELECT chain of `depth` steps over a 4-attribute u32 input. Chains
/// have no intra-query parallelism, so a solo chain's makespan equals its
/// serialized cost — which makes "batch beats serial" a tight property.
fn chain(input: &Relation, depth: usize) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let mut cur = plan.add_input("t", input.schema().clone());
    for a in 0..depth {
        cur = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(u32::MAX / 2 + a as u32)),
                },
                &[cur],
            )
            .expect("chain type-checks");
    }
    plan.mark_output(cur);
    plan
}

/// Random per-query shapes: `(tuples, seed, depth)`.
fn arb_batch() -> impl Strategy<Value = Vec<(usize, u64, usize)>> {
    proptest::collection::vec((64usize..4_000, any::<u64>(), 1usize..4), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharing the device never loses to running the same queries one at
    /// a time, and never beats the busiest engine's busy time.
    #[test]
    fn batch_makespan_is_bounded_both_ways(shapes in arb_batch()) {
        let inputs: Vec<Relation> =
            shapes.iter().map(|&(n, seed, _)| gen::micro_input(n, seed)).collect();
        let plans: Vec<QueryPlan> =
            shapes.iter().zip(&inputs).map(|(&(_, _, d), i)| chain(i, d)).collect();
        let bindings: Vec<[(&str, &Relation); 1]> =
            inputs.iter().map(|i| [("t", i)]).collect();
        let queries: Vec<BatchQuery<'_>> = plans
            .iter()
            .zip(&bindings)
            .map(|(p, b)| BatchQuery { name: "q", plan: p, bindings: b })
            .collect();

        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        let mut solo_sum = 0.0;
        for q in &queries {
            let mut d = device();
            solo_sum += execute_batch(&[*q], &mut d, &WeaverConfig::default())
                .unwrap()
                .makespan_seconds;
        }
        prop_assert!(
            batch.makespan_seconds <= solo_sum + 1e-12,
            "batch {} vs serial {}",
            batch.makespan_seconds,
            solo_sum
        );

        let busiest = dev.streams().engine_busy().values().copied().max().unwrap_or(0);
        let floor = dev.config().cycles_to_seconds(busiest);
        prop_assert!(
            batch.makespan_seconds >= floor - 1e-12,
            "makespan {} under engine floor {}",
            batch.makespan_seconds,
            floor
        );
        prop_assert!(batch.makespan_seconds <= batch.serialized_seconds + 1e-12);
    }

    /// Stream interleaving decides when work runs, never what it computes:
    /// every query's outputs are byte-identical to its solo execution, in
    /// any batch order, and the schedule itself is deterministic.
    #[test]
    fn batched_outputs_are_solo_outputs_and_deterministic(shapes in arb_batch()) {
        let inputs: Vec<Relation> =
            shapes.iter().map(|&(n, seed, _)| gen::micro_input(n, seed)).collect();
        let plans: Vec<QueryPlan> =
            shapes.iter().zip(&inputs).map(|(&(_, _, d), i)| chain(i, d)).collect();
        let bindings: Vec<[(&str, &Relation); 1]> =
            inputs.iter().map(|i| [("t", i)]).collect();
        let queries: Vec<BatchQuery<'_>> = plans
            .iter()
            .zip(&bindings)
            .map(|(p, b)| BatchQuery { name: "q", plan: p, bindings: b })
            .collect();

        let mut dev = device();
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        // Byte-identical to solo execution.
        for (q, r) in queries.iter().zip(&batch.queries) {
            let mut d = device();
            let solo = execute_plan(q.plan, q.bindings, &mut d, &WeaverConfig::default()).unwrap();
            prop_assert_eq!(&r.outputs, &solo.outputs);
        }

        // Deterministic: an identical batch reproduces the exact schedule.
        let mut dev2 = device();
        let again = execute_batch(&queries, &mut dev2, &WeaverConfig::default()).unwrap();
        prop_assert_eq!(batch.makespan_seconds.to_bits(), again.makespan_seconds.to_bits());
        for (a, b) in batch.queries.iter().zip(&again.queries) {
            prop_assert_eq!(&a.outputs, &b.outputs);
            prop_assert_eq!(a.latency_seconds.to_bits(), b.latency_seconds.to_bits());
        }
        // The nearest-rank percentiles are deterministic too.
        prop_assert_eq!(
            batch.latency_p50_seconds.to_bits(),
            again.latency_p50_seconds.to_bits()
        );
        prop_assert_eq!(
            batch.latency_p99_seconds.to_bits(),
            again.latency_p99_seconds.to_bits()
        );

        // Reversing the batch reorders streams but not answers.
        let reversed: Vec<BatchQuery<'_>> = queries.iter().rev().copied().collect();
        let mut dev3 = device();
        let rev = execute_batch(&reversed, &mut dev3, &WeaverConfig::default()).unwrap();
        for (r, fwd) in rev.queries.iter().zip(batch.queries.iter().rev()) {
            prop_assert_eq!(&r.outputs, &fwd.outputs);
        }
    }

    /// Fault domains do not bleed: under arbitrary transient fault rates,
    /// every *surviving* query's outputs are byte-identical to the same
    /// batch run fault-free, quarantined queries return nothing, the
    /// retried batch still satisfies `serialized >= makespan`, no device
    /// memory leaks, and the whole thing is deterministic.
    #[test]
    fn faulted_batch_preserves_survivor_outputs(
        shapes in arb_batch(),
        fault_seed in any::<u64>(),
        rate_idx in 0usize..3,
    ) {
        let rate = [0.02, 0.05, 0.10][rate_idx];
        let inputs: Vec<Relation> =
            shapes.iter().map(|&(n, seed, _)| gen::micro_input(n, seed)).collect();
        let plans: Vec<QueryPlan> =
            shapes.iter().zip(&inputs).map(|(&(_, _, d), i)| chain(i, d)).collect();
        let bindings: Vec<[(&str, &Relation); 1]> =
            inputs.iter().map(|i| [("t", i)]).collect();
        let queries: Vec<BatchQuery<'_>> = plans
            .iter()
            .zip(&bindings)
            .map(|(p, b)| BatchQuery { name: "q", plan: p, bindings: b })
            .collect();

        let mut clean_dev = device();
        let clean = execute_batch(&queries, &mut clean_dev, &WeaverConfig::default()).unwrap();

        let faults = FaultConfig {
            seed: fault_seed,
            transfer_rate: rate,
            launch_rate: rate,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy {
            max_retries: 64,
            base_backoff_seconds: 1e-4,
            backoff_multiplier: 1.1,
        };
        let run_once = || {
            let mut dev = device();
            dev.inject_faults(faults.clone());
            let batch =
                execute_batch_with_policy(&queries, &mut dev, &WeaverConfig::default(), &policy)
                    .unwrap();
            let leaked = dev.memory().in_use();
            let reconciled = kw_gpu_sim::reconcile(dev.spans(), dev.stats());
            (batch, leaked, reconciled)
        };
        let (batch, leaked, reconciled) = run_once();

        prop_assert_eq!(leaked, 0, "faulted batch leaked device memory");
        prop_assert!(reconciled.is_ok(), "{:?}", reconciled);
        for (f, c) in batch.queries.iter().zip(&clean.queries) {
            if f.outcome.is_success() {
                prop_assert_eq!(
                    &f.outputs, &c.outputs,
                    "survivor diverged from fault-free run"
                );
            } else {
                prop_assert!(f.outputs.is_empty(), "quarantined query kept outputs");
            }
        }
        prop_assert!(
            batch.serialized_seconds >= batch.makespan_seconds - 1e-12,
            "retried batch broke serialized {} >= makespan {}",
            batch.serialized_seconds,
            batch.makespan_seconds
        );
        let successes = batch.queries.iter().filter(|q| q.outcome.is_success()).count();
        if batch.makespan_seconds > 0.0 {
            let expect = successes as f64 / batch.makespan_seconds;
            prop_assert!((batch.goodput_qps - expect).abs() < 1e-9);
        }

        // Identical faulted runs agree bit-for-bit.
        let (again, _, _) = run_once();
        prop_assert_eq!(
            batch.makespan_seconds.to_bits(),
            again.makespan_seconds.to_bits()
        );
        for (a, b) in batch.queries.iter().zip(&again.queries) {
            prop_assert_eq!(&a.outcome, &b.outcome);
            prop_assert_eq!(&a.outputs, &b.outputs);
        }
    }
}

/// A scripted transient fault on the batch's first shared-device transfer
/// is absorbed deterministically: the struck query reports `Retried` with
/// the quoted backoff, its outputs and every other query's outputs are
/// byte-identical to the fault-free batch, and the retried batch still
/// satisfies `serialized >= makespan` (the backoff is serial work, so it
/// counts in both).
#[test]
fn scripted_batch_fault_retries_without_changing_answers() {
    let a = gen::micro_input(60_000, 91);
    let b = gen::micro_input(50_000, 92);
    let pa = chain(&a, 2);
    let pb = chain(&b, 3);
    let (ba, bb) = ([("t", &a)], [("t", &b)]);
    let queries = [
        BatchQuery {
            name: "alpha",
            plan: &pa,
            bindings: &ba,
        },
        BatchQuery {
            name: "beta",
            plan: &pb,
            bindings: &bb,
        },
    ];

    let mut clean_dev = device();
    let clean = execute_batch(&queries, &mut clean_dev, &WeaverConfig::default()).unwrap();

    let mut dev = device();
    dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
        kind: FaultKind::Transfer,
        attempt: 0,
    }]));
    let policy = RetryPolicy::default();
    let batch =
        execute_batch_with_policy(&queries, &mut dev, &WeaverConfig::default(), &policy).unwrap();

    let struck: Vec<_> = batch.queries.iter().filter(|q| q.retries > 0).collect();
    assert_eq!(struck.len(), 1, "exactly one query absorbs the fault");
    assert_eq!(struck[0].retries, 1);
    assert!((struck[0].backoff_seconds - policy.base_backoff_seconds).abs() < 1e-15);
    assert_eq!(batch.quarantined_count(), 0);
    for (f, c) in batch.queries.iter().zip(&clean.queries) {
        assert_eq!(f.outputs, c.outputs, "{}", f.name);
    }
    assert!(
        batch.serialized_seconds >= batch.makespan_seconds - 1e-15,
        "serialized {} vs makespan {}",
        batch.serialized_seconds,
        batch.makespan_seconds
    );
    // The backoff delayed the batch relative to the clean run.
    assert!(batch.makespan_seconds > clean.makespan_seconds);
    assert_eq!(dev.memory().in_use(), 0);
    kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();
}

/// The ISSUE's acceptance bar: for at least two independent plans, the
/// batch makespan is *strictly* smaller than the sum of solo makespans,
/// per-query outputs match solo execution exactly, and the shared device's
/// span log still reconciles with its counters.
#[test]
fn concurrent_batch_strictly_beats_serial_with_identical_outputs() {
    let a = gen::micro_input(150_000, 71);
    let b = gen::micro_input(120_000, 72);
    let c = gen::micro_input(90_000, 73);
    let pa = chain(&a, 2);
    let pb = chain(&b, 3);
    let pc = chain(&c, 2);
    let (ba, bb, bc) = ([("t", &a)], [("t", &b)], [("t", &c)]);
    let queries = [
        BatchQuery {
            name: "alpha",
            plan: &pa,
            bindings: &ba,
        },
        BatchQuery {
            name: "beta",
            plan: &pb,
            bindings: &bb,
        },
        BatchQuery {
            name: "gamma",
            plan: &pc,
            bindings: &bc,
        },
    ];

    let mut dev = device();
    let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();
    kw_gpu_sim::reconcile(dev.spans(), dev.stats()).unwrap();

    let mut solo_sum = 0.0;
    for q in &queries {
        let mut d = device();
        let solo = execute_batch(&[*q], &mut d, &WeaverConfig::default()).unwrap();
        solo_sum += solo.makespan_seconds;

        let mut pd = device();
        let plain = execute_plan(q.plan, q.bindings, &mut pd, &WeaverConfig::default()).unwrap();
        let batched = &batch.queries[queries.iter().position(|x| x.name == q.name).unwrap()];
        assert_eq!(batched.outputs, plain.outputs, "{}", q.name);
    }
    assert!(
        batch.makespan_seconds < solo_sum,
        "batch must strictly beat serial: {} vs {}",
        batch.makespan_seconds,
        solo_sum
    );
    assert!((batch.throughput_qps - 3.0 / batch.makespan_seconds).abs() < 1e-9);
}

/// The observability fields of `BatchReport`: latency percentiles are
/// exact nearest-rank order statistics over the successful queries (p99
/// bit-identical to the slowest at these batch sizes), per-engine busy
/// time is reported in seconds, and utilization is busy over makespan
/// in (0, 1].
#[test]
fn batch_report_percentiles_and_engine_utilization_are_consistent() {
    let a = gen::micro_input(150_000, 81);
    let b = gen::micro_input(120_000, 82);
    let c = gen::micro_input(90_000, 83);
    let pa = chain(&a, 2);
    let pb = chain(&b, 3);
    let pc = chain(&c, 2);
    let (ba, bb, bc) = ([("t", &a)], [("t", &b)], [("t", &c)]);
    let queries = [
        BatchQuery {
            name: "alpha",
            plan: &pa,
            bindings: &ba,
        },
        BatchQuery {
            name: "beta",
            plan: &pb,
            bindings: &bb,
        },
        BatchQuery {
            name: "gamma",
            plan: &pc,
            bindings: &bc,
        },
    ];

    let mut dev = device();
    let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

    // Percentiles are monotone, positive, and *exact*: each one is a real
    // observed latency (nearest rank), and with fewer than 100 queries the
    // p99 is bit-identical to the slowest successful query — not a
    // power-of-two histogram bucket bound.
    assert!(batch.latency_p50_seconds > 0.0);
    assert!(batch.latency_p50_seconds <= batch.latency_p95_seconds);
    assert!(batch.latency_p95_seconds <= batch.latency_p99_seconds);
    let slowest = batch
        .queries
        .iter()
        .filter(|q| q.outcome.is_success())
        .map(|q| q.latency_seconds)
        .fold(0.0f64, f64::max);
    assert_eq!(
        batch.latency_p99_seconds.to_bits(),
        slowest.to_bits(),
        "exact p99 {} must equal max successful latency {slowest}",
        batch.latency_p99_seconds
    );
    for p in [
        batch.latency_p50_seconds,
        batch.latency_p95_seconds,
        batch.latency_p99_seconds,
    ] {
        assert!(
            batch
                .queries
                .iter()
                .any(|q| q.latency_seconds.to_bits() == p.to_bits()),
            "percentile {p} is not an observed latency"
        );
    }

    // Engine accounting: the three Fermi engines all worked, busy time is
    // bounded by the makespan, and utilization = busy / makespan.
    for engine in ["compute0", "copy.h2d", "copy.d2h"] {
        let busy = *batch
            .engine_busy_seconds
            .get(engine)
            .unwrap_or_else(|| panic!("missing engine {engine}"));
        let util = batch.engine_utilization[engine];
        assert!(busy > 0.0, "{engine} idle");
        assert!(busy <= batch.makespan_seconds + 1e-12, "{engine}");
        assert!(util > 0.0 && util <= 1.0 + 1e-9, "{engine} util {util}");
        assert!(
            (util - busy / batch.makespan_seconds).abs() < 1e-9,
            "{engine}"
        );
    }

    // The attached profile covers the whole batch window.
    assert!(batch.profile.wall_seconds > 0.0);
    assert!(
        (batch.profile.wall_seconds - batch.makespan_seconds).abs()
            < 1e-12 + 1e-9 * batch.makespan_seconds
    );
}
