//! Datalog-to-GPU integration: programs compile through the front-end, the
//! weaver fuses them, the simulator executes them, and results match the
//! CPU reference pipeline.

use kw_core::{execute_plan, WeaverConfig};
use kw_datalog::compile_datalog;
use kw_gpu_sim::{Device, DeviceConfig};
use kw_relational::{gen, ops, CmpOp, Predicate, Relation, Schema, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

fn run(src: &str, bindings: &[(&str, &Relation)], fusion: bool) -> Relation {
    let t = compile_datalog(src).expect("compile");
    let config = if fusion {
        WeaverConfig::default()
    } else {
        WeaverConfig::default().baseline()
    };
    let mut dev = device();
    let report = execute_plan(&t.plan, bindings, &mut dev, &config).expect("execute");
    let (_, node) = t.outputs[0];
    report.outputs[&node].clone()
}

#[test]
fn filter_chain_program() {
    let input = gen::micro_input(4_000, 31);
    let src = "
        .input t(*u32, u32, u32, u32).
        r(K, B) :- t(K, A, B, _), A < 2000000000, B >= 1000.
        .output r.
    ";
    let fused = run(src, &[("t", &input)], true);
    let base = run(src, &[("t", &input)], false);
    assert_eq!(fused, base);

    let oracle = ops::project(
        &ops::select(
            &input,
            &Predicate::cmp(1, CmpOp::Lt, Value::U32(2000000000)).and(Predicate::cmp(
                2,
                CmpOp::Ge,
                Value::U32(1000),
            )),
        )
        .unwrap(),
        &[0, 2],
        1,
    )
    .unwrap();
    assert_eq!(fused, oracle);
}

#[test]
fn triangle_join_program() {
    // Three-way join on a shared key.
    let (a, b) = gen::join_inputs(1_500, 2, 0.6, 41);
    let (c, _) = gen::join_inputs(1_500, 2, 0.6, 41); // same keys as a
    let src = "
        .input a(*u32, u32).
        .input b(*u32, u32).
        .input c(*u32, u32).
        tri(K, X, Y, Z) :- a(K, X), b(K, Y), c(K, Z).
        .output tri.
    ";
    let fused = run(src, &[("a", &a), ("b", &b), ("c", &c)], true);
    let base = run(src, &[("a", &a), ("b", &b), ("c", &c)], false);
    assert_eq!(fused, base);

    let oracle = {
        let ab = ops::join(&a, &b, 1).unwrap();
        let abc = ops::join(&ab, &c, 1).unwrap();
        ops::project(&abc, &[0, 1, 2, 3], 1).unwrap()
    };
    assert_eq!(fused, oracle);
}

#[test]
fn arithmetic_program_matches_manual_expression() {
    let src = "
        .input l(*u32, f32, f32, f32).
        rev(K, P * (1.0 - D) * (1.0 + T)) :- l(K, P, D, T).
        .output rev.
    ";
    // Build a small float table.
    let schema = Schema::new(
        vec![
            kw_relational::AttrType::U32,
            kw_relational::AttrType::F32,
            kw_relational::AttrType::F32,
            kw_relational::AttrType::F32,
        ],
        1,
    );
    let rows: Vec<Vec<Value>> = (0..500)
        .map(|i| {
            vec![
                Value::U32(i),
                Value::F32(10.0 + i as f32),
                Value::F32(0.05),
                Value::F32(0.08),
            ]
        })
        .collect();
    let l = Relation::from_rows(schema, &rows).unwrap();

    let fused = run(src, &[("l", &l)], true);
    assert_eq!(fused.len(), 500);
    // Spot-check the arithmetic.
    let v = fused.value(0, 1);
    match v {
        Value::F32(x) => assert!((x - 10.0 * 0.95 * 1.08).abs() < 1e-3, "{x}"),
        other => panic!("expected f32, got {other:?}"),
    }
}

#[test]
fn recursive_style_union_program() {
    // Two rules with one head: results union.
    let input = gen::micro_input(2_000, 43);
    let src = "
        .input t(*u32, u32, u32, u32).
        r(K) :- t(K, A, _, _), A < 1000000.
        r(K) :- t(K, _, B, _), B >= 4294000000.
        .output r.
    ";
    let fused = run(src, &[("t", &input)], true);
    let base = run(src, &[("t", &input)], false);
    assert_eq!(fused, base);

    let left = ops::project(
        &ops::select(&input, &Predicate::cmp(1, CmpOp::Lt, Value::U32(1000000))).unwrap(),
        &[0],
        1,
    )
    .unwrap();
    let right = ops::project(
        &ops::select(
            &input,
            &Predicate::cmp(2, CmpOp::Ge, Value::U32(4294000000)),
        )
        .unwrap(),
        &[0],
        1,
    )
    .unwrap();
    let oracle = ops::union(&left, &right).unwrap();
    assert_eq!(fused, oracle);
}

#[test]
fn two_shared_variables_join_on_composite_key() {
    // Both atoms share (K1, K2) as their leading keys: the translator must
    // emit a key_len=2 join with no SORT.
    let schema = Schema::new(
        vec![
            kw_relational::AttrType::U32,
            kw_relational::AttrType::U32,
            kw_relational::AttrType::U32,
        ],
        2,
    );
    let mut r = gen::rng(97);
    use rand::Rng;
    let mk = |r: &mut rand::rngs::StdRng| {
        let words: Vec<u64> = (0..1200)
            .flat_map(|_| {
                vec![
                    u64::from(r.gen_range(0..20u32)),
                    u64::from(r.gen_range(0..4u32)),
                    u64::from(r.gen::<u32>()),
                ]
            })
            .collect();
        Relation::from_words(schema.clone(), words).unwrap()
    };
    let a = mk(&mut r);
    let b = mk(&mut r);
    let src = "
        .input a(*u32, *u32, u32).
        .input b(*u32, *u32, u32).
        j(K1, K2, X, Y) :- a(K1, K2, X), b(K1, K2, Y).
        .output j.
    ";
    let translated = compile_datalog(src).unwrap();
    let sorts = translated
        .plan
        .operator_nodes()
        .filter(|(_, op, _)| matches!(op, kw_primitives::RaOp::Sort { .. }))
        .count();
    assert_eq!(
        sorts,
        0,
        "composite keys already lead:\n{}",
        translated.plan.describe()
    );

    let fused = run(src, &[("a", &a), ("b", &b)], true);
    let base = run(src, &[("a", &a), ("b", &b)], false);
    assert_eq!(fused, base);
    // The Datalog head projection claims a single-attribute key.
    let oracle = ops::project(&ops::join(&a, &b, 2).unwrap(), &[0, 1, 2, 3], 1).unwrap();
    assert_eq!(fused, oracle);
}

#[test]
fn non_key_join_inserts_sort_and_still_matches() {
    // Join on the second attribute forces a SORT re-key in the plan.
    let a = gen::random_relation(&Schema::uniform_u32(2), 800, 64, &mut gen::rng(47));
    let b = gen::random_relation(&Schema::uniform_u32(2), 800, 64, &mut gen::rng(48));
    let src = "
        .input a(*u32, u32).
        .input b(*u32, u32).
        j(V, K1, K2) :- a(K1, V), b(K2, V).
        .output j.
    ";
    let fused = run(src, &[("a", &a), ("b", &b)], true);
    let base = run(src, &[("a", &a), ("b", &b)], false);
    assert_eq!(fused, base);
    // Oracle: sort both sides on attr 1, join, project.
    let sa = ops::sort_on(&a, &[1]).unwrap();
    let sb = ops::sort_on(&b, &[1]).unwrap();
    let j = ops::join(&sa, &sb, 1).unwrap();
    let oracle = ops::project(&j, &[0, 1, 2], 1).unwrap();
    assert_eq!(fused, oracle);
}
