//! Integration tests for the structured tracing layer: determinism of the
//! Chrome trace export, the reconciliation invariant (per-span deltas sum
//! to the aggregate `SimStats`) for fused and unfused runs under fault
//! injection, and the fusion signature visible in the spans themselves.

use proptest::prelude::*;

use kw_core::{execute_resilient, RetryPolicy, WeaverConfig};
use kw_gpu_sim::{
    chrome_trace_json, reconcile, validate_chrome_json, Device, DeviceConfig, FaultConfig, SpanKind,
};
use kw_tpch::{Pattern, Workload};

fn q1() -> Workload {
    kw_tpch::q1(2.0, 7)
}

fn run(w: &Workload, fusion: bool) -> (Device, kw_core::PlanReport) {
    let config = WeaverConfig {
        fusion,
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = w.run(&mut dev, &config).expect("q1 executes");
    (dev, report)
}

#[test]
fn identical_runs_export_byte_identical_traces() {
    let w = q1();
    let (d1, _) = run(&w, true);
    let (d2, _) = run(&w, true);
    let j1 = chrome_trace_json(d1.spans(), d1.config().clock_ghz);
    let j2 = chrome_trace_json(d2.spans(), d2.config().clock_ghz);
    assert_eq!(j1, j2, "trace export must be deterministic");
    validate_chrome_json(&j1).expect("valid Chrome trace JSON");
}

#[test]
fn per_span_deltas_sum_to_aggregate_stats() {
    let w = q1();
    for fusion in [true, false] {
        let (dev, report) = run(&w, fusion);
        // Both the device's live log and the PlanReport snapshot reconcile.
        reconcile(dev.spans(), dev.stats())
            .unwrap_or_else(|e| panic!("device (fusion={fusion}): {e}"));
        reconcile(&report.spans, &report.stats)
            .unwrap_or_else(|e| panic!("report (fusion={fusion}): {e}"));
    }
}

#[test]
fn traces_reconcile_under_fault_injection() {
    let w = q1();
    // Generous budget with gentle backoff: at a 10% per-op fault rate most
    // attempts see at least one fault, so retries stack up well past the
    // default budget of 4.
    let policy = RetryPolicy {
        max_retries: 64,
        base_backoff_seconds: 1e-4,
        backoff_multiplier: 1.1,
    };
    let mut reports = Vec::new();
    for fusion in [true, false] {
        let config = WeaverConfig {
            fusion,
            ..WeaverConfig::default()
        };
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        dev.inject_faults(FaultConfig::uniform(0xC2050, 0.10));
        let report = execute_resilient(&w.plan, &w.bindings(), &mut dev, &config, &policy)
            .expect("resilient q1 under faults");
        // The span log covers the whole resilient episode: failed attempts,
        // fault markers, backoff, and the attempt that landed. Its deltas
        // must still sum exactly to the device's aggregate counters.
        reconcile(dev.spans(), dev.stats())
            .unwrap_or_else(|e| panic!("faulted device (fusion={fusion}): {e}"));
        reconcile(&report.spans, &report.stats)
            .unwrap_or_else(|e| panic!("faulted report (fusion={fusion}): {e}"));

        let res = report.resilience.as_ref().expect("resilience report");
        if res.faults_survived > 0 {
            assert!(
                report.spans.iter().any(|s| s.kind == SpanKind::Fault),
                "survived faults must appear as fault spans (fusion={fusion})"
            );
            assert!(
                report.spans.iter().any(|s| s.kind == SpanKind::Backoff),
                "retries must appear as backoff spans (fusion={fusion})"
            );
            // Retry provenance frames mark which attempt each span fed.
            assert!(
                report
                    .spans
                    .iter()
                    .any(|s| s.provenance.starts_with("attempt")),
                "spans must carry attempt provenance (fusion={fusion})"
            );
        }
        let json = chrome_trace_json(&report.spans, 1.15);
        validate_chrome_json(&json).expect("faulted trace exports valid JSON");
        reports.push(report);
    }
    assert_eq!(
        reports[0].outputs, reports[1].outputs,
        "fault injection changed the answer"
    );
}

#[test]
fn fused_trace_has_fewer_kernel_spans_and_less_global_traffic() {
    let w = q1();
    let (fused_dev, fused) = run(&w, true);
    let (base_dev, base) = run(&w, false);
    assert_eq!(fused.outputs, base.outputs);

    let kernels = |d: &Device| {
        d.spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .count()
    };
    assert!(
        kernels(&fused_dev) < kernels(&base_dev),
        "fused {} vs baseline {}",
        kernels(&fused_dev),
        kernels(&base_dev)
    );
    assert!(
        fused.stats.global_bytes() < base.stats.global_bytes(),
        "fused {} vs baseline {}",
        fused.stats.global_bytes(),
        base.stats.global_bytes()
    );
    // Fusion-candidate provenance flows from the compiler into span labels.
    assert!(fused_dev
        .spans()
        .iter()
        .any(|s| s.provenance.contains("fused[")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The metrics registry is part of the deterministic surface: two
    /// identical seeded runs export byte-identical Prometheus text and
    /// JSON snapshots, whatever the pattern, size, seed or fusion mode.
    #[test]
    fn metrics_snapshots_are_deterministic(
        pat_idx in 0usize..Pattern::all().len(),
        n in 512usize..4_096,
        seed in any::<u64>(),
        fusion in any::<bool>(),
    ) {
        let w = Pattern::all()[pat_idx].build(n, seed);
        let config = WeaverConfig { fusion, ..WeaverConfig::default() };
        let mut d1 = Device::new(DeviceConfig::fermi_c2050());
        let mut d2 = Device::new(DeviceConfig::fermi_c2050());
        w.run(&mut d1, &config).expect("first run");
        w.run(&mut d2, &config).expect("second run");
        prop_assert_eq!(
            d1.metrics().prometheus_text(),
            d2.metrics().prometheus_text()
        );
        prop_assert_eq!(d1.metrics().to_json(), d2.metrics().to_json());
    }

    /// The histogram/counter layer reconciles with the span log and the
    /// aggregate `SimStats` it was folded from: the kernel-cycle histogram
    /// counts exactly the kernel spans and sums exactly their durations,
    /// and every mirrored counter equals its `SimStats` source.
    #[test]
    fn metric_totals_reconcile_with_stats_and_spans(
        pat_idx in 0usize..Pattern::all().len(),
        n in 512usize..4_096,
        seed in any::<u64>(),
        fusion in any::<bool>(),
    ) {
        let w = Pattern::all()[pat_idx].build(n, seed);
        let config = WeaverConfig { fusion, ..WeaverConfig::default() };
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        w.run(&mut dev, &config).expect("workload executes");

        let kernel_spans: Vec<_> = dev
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .collect();
        let hist = dev
            .metrics()
            .histogram("kw_kernel_cycles")
            .expect("kernel histogram populated");
        prop_assert_eq!(hist.count(), kernel_spans.len() as u64);
        let span_cycles: u64 = kernel_spans.iter().map(|s| s.cycles()).sum();
        prop_assert_eq!(hist.sum(), span_cycles);
        // Serial resident runs charge GPU cycles only through kernel spans.
        prop_assert_eq!(span_cycles, dev.stats().gpu_cycles);

        let m = dev.metrics();
        prop_assert_eq!(m.counter("kw_gpu_cycles_total"), dev.stats().gpu_cycles);
        prop_assert_eq!(m.counter("kw_launch_cycles_total"), dev.stats().launch_cycles);
        prop_assert_eq!(
            m.counter("kw_kernel_launches_total"),
            dev.stats().kernel_launches
        );
        prop_assert_eq!(m.counter("kw_global_bytes_total"), dev.stats().global_bytes());
        prop_assert_eq!(m.counter("kw_h2d_bytes_total"), dev.stats().h2d_bytes);
        prop_assert_eq!(m.counter("kw_d2h_bytes_total"), dev.stats().d2h_bytes);
        prop_assert_eq!(m.counter("kw_spans_total"), dev.spans().len() as u64);
        prop_assert_eq!(m.counter("kw_plans_executed_total"), 1);
    }
}
