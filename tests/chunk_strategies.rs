//! Property tests for the chunk-strategy layer: hash-partitioned join
//! chunking and partial-aggregate/merge chunking must be *byte-identical*
//! to resident execution for any bucket count and any key skew, and every
//! strategy's double-buffered makespan must beat (or tie) full
//! serialization.

use kw_core::{execute_chunked, ChunkStrategy, QueryPlan, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{gen, ops, CmpOp, Predicate, Relation, Schema, Value};
use proptest::prelude::*;

/// Deterministic xorshift-style stream for building skewed inputs.
fn mix(state: &mut u64) -> u32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) as u32
}

/// `n` rows of `(key % keys, payload)` — `keys == 1` is the all-collide
/// worst case where hash partitioning degenerates to a single bucket.
fn skewed_relation(n: usize, keys: u32, seed: u64) -> Relation {
    let schema = Schema::uniform_u32(2);
    let mut s = seed | 1;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| vec![Value::U32(mix(&mut s) % keys), Value::U32(mix(&mut s))])
        .collect();
    Relation::from_rows(schema, &rows).unwrap()
}

fn join_plan(schema: Schema) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let l = plan.add_input("l", schema.clone());
    let r = plan.add_input("r", schema);
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[l, r]).unwrap();
    plan.mark_output(j);
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hash-partitioned join chunking returns byte-identical relations to
    /// the relational oracle for any bucket count and any key skew — from
    /// well-spread keys down to every key colliding in one bucket.
    #[test]
    fn hash_partitioned_join_is_byte_identical(
        n_left in 0usize..240,
        n_right in 0usize..240,
        keys in 1u32..24,
        chunks in 1usize..12,
        seed in any::<u64>(),
    ) {
        let left = skewed_relation(n_left, keys, seed);
        let right = skewed_relation(n_right, keys, seed.rotate_left(17));
        let plan = join_plan(left.schema().clone());
        let oracle = ops::join(&left, &right, 1).unwrap();

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("l", &left), ("r", &right)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();

        prop_assert_eq!(report.strategy, ChunkStrategy::HashPartition);
        let out = report.outputs.values().next().unwrap();
        prop_assert_eq!(out.words(), oracle.words(), "join bytes diverged");
        prop_assert_eq!(out.schema(), oracle.schema());
        prop_assert!(
            report.pipelined_seconds <= report.serialized_seconds + 1e-12,
            "pipelined {} > serialized {}",
            report.pipelined_seconds,
            report.serialized_seconds
        );
        prop_assert_eq!(dev.memory().in_use(), 0, "chunked join leaked");
    }

    /// Partial-aggregate/merge chunking is byte-identical to the oracle for
    /// every mergeable aggregate function at once (COUNT, SUM, MIN, MAX and
    /// integer AVG), across group-count skew and chunk counts.
    #[test]
    fn partial_aggregate_merge_is_byte_identical(
        n in 0usize..400,
        groups in 1u32..16,
        chunks in 1usize..10,
        seed in any::<u64>(),
    ) {
        let schema = Schema::uniform_u32(4);
        let mut s = seed | 1;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    Value::U32(mix(&mut s) % groups),
                    Value::U32(mix(&mut s)),
                    Value::U32(mix(&mut s)),
                    Value::U32(mix(&mut s)),
                ]
            })
            .collect();
        let input = Relation::from_rows(schema.clone(), &rows).unwrap();
        let group_by = vec![0usize];
        let aggs = vec![
            AggFn::Count,
            AggFn::Sum(1),
            AggFn::Min(2),
            AggFn::Max(3),
            AggFn::Avg(1),
        ];
        let oracle = ops::aggregate(&input, &group_by, &aggs).unwrap();

        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", schema);
        let a = plan
            .add_op(
                RaOp::Aggregate {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(a);

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();

        prop_assert_eq!(report.strategy, ChunkStrategy::PartialAggregate);
        let out = report.outputs.values().next().unwrap();
        prop_assert_eq!(out.words(), oracle.words(), "aggregate bytes diverged");
        prop_assert_eq!(out.schema(), oracle.schema());
        prop_assert!(
            report.pipelined_seconds <= report.serialized_seconds + 1e-12,
            "pipelined {} > serialized {}",
            report.pipelined_seconds,
            report.serialized_seconds
        );
        prop_assert_eq!(dev.memory().in_use(), 0, "chunked aggregate leaked");
    }

    /// Row-sliced (elementwise) chunking keeps the same contract: oracle
    /// bytes and a pipelined makespan no worse than serialization.
    #[test]
    fn row_slice_chunking_is_byte_identical(
        n in 0usize..600,
        chunks in 1usize..10,
        seed in any::<u64>(),
    ) {
        let input = gen::micro_input(n, seed);
        let mut plan = QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let sel = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(sel);
        let oracle = ops::select(
            &input,
            &Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
        )
        .unwrap();

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_chunked(
            &plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
            chunks,
        )
        .unwrap();

        prop_assert_eq!(report.strategy, ChunkStrategy::RowSlice);
        prop_assert_eq!(report.outputs[&sel].words(), oracle.words());
        prop_assert!(
            report.pipelined_seconds <= report.serialized_seconds + 1e-12,
            "pipelined {} > serialized {}",
            report.pipelined_seconds,
            report.serialized_seconds
        );
        prop_assert_eq!(dev.memory().in_use(), 0, "chunked select leaked");
    }
}

/// The all-keys-collide corner deserves a deterministic pin alongside the
/// property: one bucket receives everything, the other buckets are skipped,
/// and the answer is still exact.
#[test]
fn all_keys_collide_lands_in_one_bucket_and_still_matches() {
    let left = skewed_relation(500, 1, 0xA11C0111DE);
    let right = skewed_relation(300, 1, 0xB0B);
    let plan = join_plan(left.schema().clone());
    let oracle = ops::join(&left, &right, 1).unwrap();

    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_chunked(
        &plan,
        &[("l", &left), ("r", &right)],
        &mut dev,
        &WeaverConfig::default(),
        8,
    )
    .unwrap();

    assert_eq!(report.strategy, ChunkStrategy::HashPartition);
    // Every row shares one key word, so 7 of the 8 bucket pairs are empty
    // and skipped: exactly one chunk executes.
    assert_eq!(report.chunks, 1);
    assert_eq!(report.outputs.values().next().unwrap(), &oracle);
    assert_eq!(dev.memory().in_use(), 0);
}
