//! Acceptance tests for the bottleneck-attribution profiler: the pinned
//! classifications the ISSUE demands (pattern (d) transfer-bound on the
//! discrete Fermi; pattern (a) fused launch/compute-bound once the PCIe
//! link is removed), plus sanity bounds on every derived figure.

use kw_core::{Bottleneck, ExecMode, WeaverConfig};
use kw_gpu_sim::{validate_json, Device, DeviceConfig};
use kw_tpch::Pattern;

fn run(
    pattern: Pattern,
    n: usize,
    config: DeviceConfig,
    mode: ExecMode,
    fusion: bool,
) -> kw_core::PlanReport {
    let w = pattern.build(n, 0xC2050);
    let weaver = WeaverConfig {
        fusion,
        mode,
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(config);
    w.run(&mut dev, &weaver).expect("workload executes")
}

/// Pattern (d) stages a shared input over an 8 GB/s PCIe link whose
/// latency alone dwarfs the half-selectivity SELECTs it feeds: the link
/// is the busiest resource at any size, which is the paper's argument for
/// why input-dependent patterns don't profit from fusion on Fermi.
#[test]
fn pattern_d_staged_is_transfer_bound_on_fermi() {
    for fusion in [true, false] {
        let report = run(
            Pattern::D,
            1 << 16,
            DeviceConfig::fermi_c2050(),
            ExecMode::Staged,
            fusion,
        );
        println!(
            "pattern d staged fusion={fusion}: {:?} gpu={:.6} pcie={:.6} launch_share={:.3}",
            report.profile.bottleneck,
            report.profile.gpu_busy_seconds,
            report.profile.pcie_busy_seconds,
            report.profile.launch_share
        );
        assert_eq!(
            report.profile.bottleneck,
            Bottleneck::Transfer,
            "fusion={fusion}"
        );
        assert!(report.profile.pcie_busy_seconds >= report.profile.gpu_busy_seconds);
    }
}

/// Pattern (a) fused on the paper's fused (APU-style) device — §2.3
/// removes the PCIe bus — at a small input: with transfers cheap and the
/// whole chain woven into one kernel, what remains is launch overhead and
/// the kernel's own cycles.
#[test]
fn pattern_a_fused_is_launch_or_compute_bound_without_pcie() {
    let report = run(
        Pattern::A,
        2048,
        DeviceConfig::fused_apu(),
        ExecMode::Resident,
        true,
    );
    println!(
        "pattern a fused apu: {:?} gpu={:.9} pcie={:.9} launch_share={:.3} mem_share={:.3} ops={}",
        report.profile.bottleneck,
        report.profile.gpu_busy_seconds,
        report.profile.pcie_busy_seconds,
        report.profile.launch_share,
        report.profile.memory_share,
        report.operator_count,
    );
    assert_eq!(report.operator_count, 1, "the whole chain fuses");
    assert!(
        matches!(
            report.profile.bottleneck,
            Bottleneck::Launch | Bottleneck::Compute
        ),
        "got {:?}",
        report.profile.bottleneck
    );
}

/// Fusion must shrink absolute launch overhead: pattern (a) unfused runs
/// four kernels where fused runs one over the same data. (The launch
/// *share* may rise — fusion shrinks the cycle total even faster.)
#[test]
fn fusion_reduces_launch_overhead_on_pattern_a() {
    let cfg = DeviceConfig::fused_apu();
    let fused = run(Pattern::A, 2048, cfg.clone(), ExecMode::Resident, true);
    let base = run(Pattern::A, 2048, cfg, ExecMode::Resident, false);
    println!(
        "launch seconds fused={:.9} base={:.9}",
        fused.profile.launch_seconds, base.profile.launch_seconds
    );
    assert!(fused.profile.launch_seconds < base.profile.launch_seconds);
    assert!(fused.stats.kernel_launches < base.stats.kernel_launches);
}

/// Every derived figure stays in its mathematical range, and the JSON
/// export is parseable, for all five patterns in both modes.
#[test]
fn profile_figures_are_bounded_and_exportable() {
    for pattern in Pattern::all() {
        for mode in [ExecMode::Resident, ExecMode::Staged] {
            let report = run(pattern, 4096, DeviceConfig::fermi_c2050(), mode, true);
            let p = &report.profile;
            assert!(p.wall_seconds > 0.0, "{pattern:?} {mode:?}");
            for (name, v) in [
                ("launch_share", p.launch_share),
                ("memory_share", p.memory_share),
                ("global_bw_utilization", p.global_bw_utilization),
                ("pcie_bw_utilization", p.pcie_bw_utilization),
            ] {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&v),
                    "{pattern:?} {mode:?} {name}={v}"
                );
            }
            // Busy fractions can't exceed 1 against the run's own wall
            // time for a serial run; staged runs overlap engines, so each
            // engine's fraction is still individually <= 1.
            assert!(p.gpu_busy_fraction <= 1.0 + 1e-9, "{pattern:?} {mode:?}");
            assert!(p.pcie_busy_fraction <= 1.0 + 1e-9, "{pattern:?} {mode:?}");
            assert!(!p.operators.is_empty());
            validate_json(&p.to_json()).expect("profile JSON parses");
        }
    }
}

/// The per-operator rows carry the same rule as the run verdict: a
/// staged pattern (d) sees its stage-in scope classified transfer-bound.
#[test]
fn operator_rows_attribute_transfers_to_staging_scopes() {
    let report = run(
        Pattern::D,
        1 << 16,
        DeviceConfig::fermi_c2050(),
        ExecMode::Staged,
        true,
    );
    for op in &report.profile.operators {
        println!(
            "  {} -> {:?} (gpu {:.6}, pcie {:.6})",
            op.operator, op.bottleneck, op.gpu_seconds, op.pcie_seconds
        );
    }
    assert!(report
        .profile
        .operators
        .iter()
        .any(|op| op.bottleneck == Bottleneck::Transfer));
}
