//! Robustness fuzzing of the Datalog front-end: arbitrary input must never
//! panic — it either parses or returns a typed error with a line number —
//! and valid programs round-trip deterministically.

use proptest::prelude::*;

use kw_datalog::{compile_datalog, lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser never panic on arbitrary ASCII soup.
    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n]{0,200}") {
        let _ = lex(&src);
        let _ = parse(&src);
        let _ = compile_datalog(&src);
    }

    /// Never panics on strings built from the language's own token alphabet
    /// (more likely to reach deep parser states than raw ASCII).
    #[test]
    fn parser_never_panics_on_tokeny_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just(".input".to_string()),
                Just(".output".to_string()),
                Just("r".to_string()),
                Just("t".to_string()),
                Just("K".to_string()),
                Just("V".to_string()),
                Just("u32".to_string()),
                Just("f32".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(":-".to_string()),
                Just("!".to_string()),
                Just("*".to_string()),
                Just("_".to_string()),
                Just("<".to_string()),
                Just(">=".to_string()),
                Just("1.5".to_string()),
                Just("42".to_string()),
            ],
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = compile_datalog(&src);
    }

    /// Well-formed generated programs always compile, and compilation is
    /// deterministic.
    #[test]
    fn generated_programs_compile(
        n_attrs in 1usize..5,
        n_selects in 0usize..4,
        threshold in any::<u32>(),
    ) {
        let attrs = (0..n_attrs)
            .map(|i| if i == 0 { "*u32".to_string() } else { "u32".to_string() })
            .collect::<Vec<_>>()
            .join(", ");
        let vars: Vec<String> = (0..n_attrs).map(|i| format!("V{i}")).collect();
        let head_vars = vars.join(", ");
        let mut body = format!("t({head_vars})");
        for s in 0..n_selects {
            body.push_str(&format!(", V{} < {threshold}", s % n_attrs));
        }
        let src = format!(
            ".input t({attrs}).\nr({head_vars}) :- {body}.\n.output r.\n"
        );
        let a = compile_datalog(&src);
        prop_assert!(a.is_ok(), "{src}: {:?}", a.err().map(|e| e.to_string()));
        let b = compile_datalog(&src).unwrap();
        prop_assert_eq!(a.unwrap().plan, b.plan, "deterministic compilation");
    }
}
