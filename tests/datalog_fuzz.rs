//! Robustness fuzzing of the Datalog front-end: arbitrary input must never
//! panic — it either parses or returns a typed error with a line number —
//! and valid programs round-trip deterministically.

use proptest::prelude::*;

use kw_datalog::{compile_datalog, lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser never panic on arbitrary ASCII soup.
    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n]{0,200}") {
        let _ = lex(&src);
        let _ = parse(&src);
        let _ = compile_datalog(&src);
    }

    /// Never panics on strings built from the language's own token alphabet
    /// (more likely to reach deep parser states than raw ASCII).
    #[test]
    fn parser_never_panics_on_tokeny_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just(".input".to_string()),
                Just(".output".to_string()),
                Just("r".to_string()),
                Just("t".to_string()),
                Just("K".to_string()),
                Just("V".to_string()),
                Just("u32".to_string()),
                Just("f32".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(":-".to_string()),
                Just("!".to_string()),
                Just("*".to_string()),
                Just("_".to_string()),
                Just("<".to_string()),
                Just(">=".to_string()),
                Just("1.5".to_string()),
                Just("42".to_string()),
            ],
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = compile_datalog(&src);
    }

    /// Mutating one byte of a valid program never panics the front-end:
    /// the result either still compiles or reports a typed error.
    #[test]
    fn mutated_valid_programs_never_panic(
        idx in 0usize..1000,
        replacement in "[ -~]{1,1}",
    ) {
        let base = ".input t(*u32, u32, f32).\n\
                    .input u(*u32, u32).\n\
                    r(K, V + 1) :- t(K, V, _), u(K, W), V < 100, V != W.\n\
                    s(K) :- r(K, _), !u(K, 7).\n\
                    .output s.\n";
        let mut bytes = base.as_bytes().to_vec();
        let pos = idx % bytes.len();
        bytes[pos] = replacement.as_bytes()[0];
        // The mutation may break UTF-8-irrelevant ASCII only, so this is
        // always a valid string.
        let src = String::from_utf8(bytes).unwrap();
        match compile_datalog(&src) {
            Ok(_) => {}
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Deep arithmetic nesting reaches the recursion guard, not the stack
    /// limit: any depth either parses or errors, never aborts.
    #[test]
    fn nested_arithmetic_never_overflows(depth in 0usize..300) {
        let src = format!(
            ".input t(*u32).\nr({}X + 1{}) :- t(X).\n.output r.",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let _ = compile_datalog(&src);
    }

    /// Well-formed generated programs always compile, and compilation is
    /// deterministic.
    #[test]
    fn generated_programs_compile(
        n_attrs in 1usize..5,
        n_selects in 0usize..4,
        threshold in any::<u32>(),
    ) {
        let attrs = (0..n_attrs)
            .map(|i| if i == 0 { "*u32".to_string() } else { "u32".to_string() })
            .collect::<Vec<_>>()
            .join(", ");
        let vars: Vec<String> = (0..n_attrs).map(|i| format!("V{i}")).collect();
        let head_vars = vars.join(", ");
        let mut body = format!("t({head_vars})");
        for s in 0..n_selects {
            body.push_str(&format!(", V{} < {threshold}", s % n_attrs));
        }
        let src = format!(
            ".input t({attrs}).\nr({head_vars}) :- {body}.\n.output r.\n"
        );
        let a = compile_datalog(&src);
        prop_assert!(a.is_ok(), "{src}: {:?}", a.err().map(|e| e.to_string()));
        let b = compile_datalog(&src).unwrap();
        prop_assert_eq!(a.unwrap().plan, b.plan, "deterministic compilation");
    }
}
