//! Failure injection: capacity exhaustion, infeasible launches, malformed
//! bindings and hostile plans must surface as typed errors — never panics,
//! never wrong answers.

use kw_core::{execute_plan, QueryPlan, ResourceBudget, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig, SimError};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Schema, Value};

fn select_plan(schema: Schema) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", schema);
    let s = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[t],
        )
        .unwrap();
    plan.mark_output(s);
    plan
}

#[test]
fn device_out_of_memory_is_reported() {
    // 1 MiB device; 64k tuples * 16 B = 1 MiB of input alone cannot fit
    // input + output.
    let input = gen::micro_input(65_536, 1);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::tiny());
    let err = execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
}

#[test]
fn small_data_fits_tiny_device() {
    let input = gen::micro_input(1_000, 2);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::tiny());
    let report =
        execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default()).unwrap();
    assert_eq!(report.outputs.len(), 1);
    // Everything freed at the end.
    assert_eq!(dev.memory().in_use(), 0);
}

#[test]
fn infeasible_launch_surfaces_from_raw_device() {
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let err = dev
        .launch(
            "monster",
            kw_gpu_sim::LaunchDims::new(1, 256),
            kw_gpu_sim::KernelResources {
                registers_per_thread: 64,
                shared_per_cta: 0,
            },
            &kw_gpu_sim::KernelQuantities::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SimError::InfeasibleLaunch { .. }));
}

#[test]
fn zero_budget_still_executes_unfused() {
    // A budget nothing fits simply disables fusion; execution proceeds.
    let input = gen::micro_input(2_000, 3);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let a = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(9)),
            },
            &[t],
        )
        .unwrap();
    let b = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(2, CmpOp::Lt, Value::U32(9)),
            },
            &[a],
        )
        .unwrap();
    plan.mark_output(b);
    let config = WeaverConfig {
        budget: ResourceBudget {
            max_registers_per_thread: 1,
            max_shared_per_cta: 0,
        },
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &config).unwrap();
    assert!(report.fusion_sets.is_empty());
    assert_eq!(report.operator_count, 2);
}

#[test]
fn duplicate_binding_names_use_first() {
    let input = gen::micro_input(100, 4);
    let other = gen::micro_input(100, 5);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    // First binding wins; execution succeeds deterministically.
    let r1 = execute_plan(
        &plan,
        &[("t", &input), ("t", &other)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    let mut dev2 = Device::new(DeviceConfig::fermi_c2050());
    let r2 = execute_plan(&plan, &[("t", &input)], &mut dev2, &WeaverConfig::default()).unwrap();
    assert_eq!(r1.outputs, r2.outputs);
}

#[test]
fn empty_relations_flow_through_everything() {
    let schema = Schema::uniform_u32(4);
    let empty = kw_relational::Relation::empty(schema.clone());
    let pattern_plan = select_plan(schema.clone());
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(
        &pattern_plan,
        &[("t", &empty)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    assert!(report.outputs.values().all(|r| r.is_empty()));
    // Joins of empty relations.
    let mut plan = QueryPlan::new();
    let x = plan.add_input("x", schema.clone());
    let y = plan.add_input("y", schema.clone());
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
    plan.mark_output(j);
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(
        &plan,
        &[("x", &empty), ("y", &empty)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    assert!(report.outputs[&j].is_empty());
}

#[test]
fn self_join_is_handled() {
    let input = gen::micro_input(1_000, 6);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[t, t]).unwrap();
    plan.mark_output(j);
    for fusion in [true, false] {
        let config = WeaverConfig {
            fusion,
            ..WeaverConfig::default()
        };
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(&plan, &[("t", &input)], &mut dev, &config).unwrap();
        let oracle = kw_relational::ops::join(&input, &input, 1).unwrap();
        assert_eq!(report.outputs[&j], oracle, "fusion={fusion}");
    }
}

#[test]
fn all_weaver_errors_display_nonempty() {
    use kw_core::WeaverError;
    let errors: Vec<WeaverError> = vec![
        WeaverError::plan("broken"),
        WeaverError::binding("missing"),
        kw_relational::RelationalError::NotSorted { index: 1 }.into(),
        kw_gpu_sim::SimError::InvalidBuffer { id: 1 }.into(),
        kw_kernel_ir::IrError::validation("bad").into(),
        kw_primitives::IrBuildError::new("nope").into(),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
        let _ = format!("{e:?}");
    }
}
