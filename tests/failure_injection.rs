//! Failure injection: capacity exhaustion, infeasible launches, transient
//! device faults, malformed bindings and hostile plans must surface as typed
//! errors — never panics, never wrong answers, never leaked device memory.
//! The resilient driver additionally has to *absorb* the recoverable subset:
//! transient faults by retrying, capacity misses by degrading
//! Resident → Staged → Chunked.

use kw_core::{
    execute_batch, execute_plan, execute_resilient, AdmittedMode, BatchQuery, LadderStop,
    QueryOutcome, QueryPlan, ResourceBudget, RetryPolicy, WeaverConfig, WeaverError,
};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig, FaultKind, ScriptedFault, SimError};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Relation, Schema, Value};
use proptest::prelude::*;

fn select_plan(schema: Schema) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", schema);
    let s = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[t],
        )
        .unwrap();
    plan.mark_output(s);
    plan
}

#[test]
fn device_out_of_memory_is_reported() {
    // 1 MiB device; 64k tuples * 16 B = 1 MiB of input alone cannot fit
    // input + output.
    let input = gen::micro_input(65_536, 1);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::tiny());
    let err =
        execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
    assert!(err.is_capacity());
    // The executor's cleanup guard must free every buffer it allocated
    // before the OOM, including the input uploads.
    assert_eq!(dev.memory().in_use(), 0, "error path leaked device memory");
}

#[test]
fn small_data_fits_tiny_device() {
    let input = gen::micro_input(1_000, 2);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::tiny());
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &WeaverConfig::default()).unwrap();
    assert_eq!(report.outputs.len(), 1);
    // Everything freed at the end.
    assert_eq!(dev.memory().in_use(), 0);
}

#[test]
fn infeasible_launch_surfaces_from_raw_device() {
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let err = dev
        .launch(
            "monster",
            kw_gpu_sim::LaunchDims::new(1, 256),
            kw_gpu_sim::KernelResources {
                registers_per_thread: 64,
                shared_per_cta: 0,
            },
            &kw_gpu_sim::KernelQuantities::default(),
        )
        .unwrap_err();
    assert!(matches!(err, SimError::InfeasibleLaunch { .. }));
}

#[test]
fn zero_budget_still_executes_unfused() {
    // A budget nothing fits simply disables fusion; execution proceeds.
    let input = gen::micro_input(2_000, 3);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let a = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(9)),
            },
            &[t],
        )
        .unwrap();
    let b = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(2, CmpOp::Lt, Value::U32(9)),
            },
            &[a],
        )
        .unwrap();
    plan.mark_output(b);
    let config = WeaverConfig {
        budget: ResourceBudget {
            max_registers_per_thread: 1,
            max_shared_per_cta: 0,
        },
        ..WeaverConfig::default()
    };
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(&plan, &[("t", &input)], &mut dev, &config).unwrap();
    assert!(report.fusion_sets.is_empty());
    assert_eq!(report.operator_count, 2);
}

#[test]
fn duplicate_binding_names_use_first() {
    let input = gen::micro_input(100, 4);
    let other = gen::micro_input(100, 5);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    // First binding wins; execution succeeds deterministically.
    let r1 = execute_plan(
        &plan,
        &[("t", &input), ("t", &other)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    let mut dev2 = Device::new(DeviceConfig::fermi_c2050());
    let r2 = execute_plan(&plan, &[("t", &input)], &mut dev2, &WeaverConfig::default()).unwrap();
    assert_eq!(r1.outputs, r2.outputs);
}

#[test]
fn empty_relations_flow_through_everything() {
    let schema = Schema::uniform_u32(4);
    let empty = kw_relational::Relation::empty(schema.clone());
    let pattern_plan = select_plan(schema.clone());
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(
        &pattern_plan,
        &[("t", &empty)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    assert!(report.outputs.values().all(|r| r.is_empty()));
    // Joins of empty relations.
    let mut plan = QueryPlan::new();
    let x = plan.add_input("x", schema.clone());
    let y = plan.add_input("y", schema.clone());
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[x, y]).unwrap();
    plan.mark_output(j);
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    let report = execute_plan(
        &plan,
        &[("x", &empty), ("y", &empty)],
        &mut dev,
        &WeaverConfig::default(),
    )
    .unwrap();
    assert!(report.outputs[&j].is_empty());
}

#[test]
fn self_join_is_handled() {
    let input = gen::micro_input(1_000, 6);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[t, t]).unwrap();
    plan.mark_output(j);
    for fusion in [true, false] {
        let config = WeaverConfig {
            fusion,
            ..WeaverConfig::default()
        };
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(&plan, &[("t", &input)], &mut dev, &config).unwrap();
        let oracle = kw_relational::ops::join(&input, &input, 1).unwrap();
        assert_eq!(report.outputs[&j], oracle, "fusion={fusion}");
    }
}

/// Acceptance: a plan too large for Resident on `DeviceConfig::tiny()` runs
/// to completion via automatic degradation, and the answer matches a clean
/// run on a big device.
#[test]
fn too_large_for_resident_degrades_and_matches_oracle() {
    let input = gen::micro_input(65_536, 1);
    let plan = select_plan(input.schema().clone());

    let mut big = Device::new(DeviceConfig::fermi_c2050());
    let oracle = execute_plan(&plan, &[("t", &input)], &mut big, &WeaverConfig::default())
        .expect("oracle run");

    let mut dev = Device::new(DeviceConfig::tiny());
    let report = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .expect("resilient run on tiny device");

    assert_eq!(report.outputs, oracle.outputs);
    let res = report.resilience.as_ref().unwrap();
    assert_ne!(res.final_mode, AdmittedMode::Resident, "{res:?}");
    assert!(res.admission.resident_peak > res.admission.capacity);
    assert_eq!(
        dev.memory().in_use(),
        0,
        "degraded run leaked device memory"
    );
}

/// Acceptance: the same oversized run with a ≥10% transient PCIe + launch
/// fault rate still completes with identical outputs, the retries are
/// visible in the ResilienceReport, and nothing leaks.
#[test]
fn faulty_degraded_run_completes_with_identical_outputs() {
    // 32Ki tuples: still over tiny()'s Resident/Staged capacity (degrades to
    // chunked(2)) but with a small enough per-attempt fault cross-section
    // that a bounded retry budget is guaranteed to get through at 10%.
    let input = gen::micro_input(32_768, 1);
    let plan = select_plan(input.schema().clone());

    let mut clean_dev = Device::new(DeviceConfig::tiny());
    let clean = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut clean_dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .expect("fault-free resilient run");

    let mut dev = Device::new(DeviceConfig::tiny());
    dev.inject_faults(FaultConfig {
        seed: 0xFA18,
        transfer_rate: 0.10,
        launch_rate: 0.10,
        ..FaultConfig::default()
    });
    let policy = RetryPolicy {
        max_retries: 64,
        base_backoff_seconds: 1e-4,
        backoff_multiplier: 1.05,
    };
    let report = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &policy,
    )
    .expect("resilient run under 10% faults");

    assert_eq!(report.outputs, clean.outputs, "faults changed the answer");
    let res = report.resilience.as_ref().unwrap();
    assert!(res.retries >= 1, "no retry recorded at 10% faults: {res:?}");
    assert_eq!(res.faults_survived, res.retries);
    assert!(res.backoff_seconds > 0.0);
    // Chunked attempts run on scratch devices, so the parent's own fault
    // counter only sees faults on its mirrored transfers — the driver-side
    // ResilienceReport above is the authoritative count.
    assert_eq!(dev.memory().in_use(), 0, "faulty run leaked device memory");
}

/// A scripted first-launch fault costs exactly one retry with exactly the
/// base backoff: the whole fault → retry → success path is deterministic.
#[test]
fn scripted_fault_costs_exactly_one_retry() {
    let input = gen::micro_input(1_000, 2);
    let plan = select_plan(input.schema().clone());
    let mut dev = Device::new(DeviceConfig::fermi_c2050());
    dev.inject_faults(FaultConfig::scripted(vec![ScriptedFault {
        kind: FaultKind::Launch,
        attempt: 0,
    }]));
    let policy = RetryPolicy::default();
    let report = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &policy,
    )
    .unwrap();
    let res = report.resilience.as_ref().unwrap();
    assert_eq!((res.attempts, res.retries, res.faults_survived), (2, 1, 1));
    assert!((res.backoff_seconds - policy.base_backoff_seconds).abs() < 1e-15);
    assert_eq!(dev.stats().faults_injected, 1);
    assert_eq!(dev.memory().in_use(), 0);
}

/// A self-join over `keys` distinct key values, `n` rows total, whose
/// output is quadratic per key group: the admission estimator (which sizes
/// joins at `max(left, right)` rows) under-predicts it, so the plan is
/// admitted and then hits a *mid-run* capacity miss that only the
/// hash-partitioned Chunked rung can absorb — and only if the keys
/// actually spread across buckets.
fn exploding_join(n: usize, keys: u32) -> (QueryPlan, Relation) {
    let schema = Schema::uniform_u32(2);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::U32(i as u32 % keys), Value::U32(i as u32)])
        .collect();
    let input = Relation::from_rows(schema.clone(), &rows).unwrap();
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", schema);
    let j = plan.add_op(RaOp::Join { key_len: 1 }, &[t, t]).unwrap();
    plan.mark_output(j);
    (plan, input)
}

/// Ladder exhaustion is a *typed* verdict: with every key identical, hash
/// partitioning puts the whole input into one bucket at any chunk count,
/// so the ladder doubles chunks until the `MaxChunksExceeded` ceiling —
/// not a bare capacity error, and not a wrong answer.
#[test]
fn exploding_join_exhausts_ladder_with_typed_reason() {
    // 1024 all-equal keys: 8 KiB of input sails through admission, but the
    // 1 Mi-row join output cannot fit the 1 MiB device in any mode, and
    // one key means one bucket no matter how many chunks the ladder tries.
    let (plan, input) = exploding_join(1024, 1);
    let mut dev = Device::new(DeviceConfig::tiny());
    let err = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .unwrap_err();
    match &err {
        WeaverError::LadderExhausted { stop, .. } => {
            assert_eq!(*stop, LadderStop::MaxChunksExceeded, "{err}");
        }
        other => panic!("expected LadderExhausted, got {other}"),
    }
    assert!(err.to_string().contains("chunk-count ceiling"), "{err}");
    assert_eq!(
        dev.memory().in_use(),
        0,
        "exhausted ladder leaked device memory"
    );
}

/// A genuinely non-partitionable plan (full SORT) over capacity is the one
/// case that still lands on `NonElementwiseBlocksChunking`: there is no
/// chunk strategy, so no rung exists below Staged.
#[test]
fn oversized_sort_exhausts_ladder_with_no_chunk_strategy() {
    let input = gen::micro_input(131_072, 3);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s = plan.add_op(RaOp::Sort { attrs: vec![0] }, &[t]).unwrap();
    plan.mark_output(s);
    let mut dev = Device::new(DeviceConfig::tiny());
    let err = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .unwrap_err();
    let msg = err.to_string();
    match &err {
        WeaverError::LadderExhausted { stop, .. } => {
            assert_eq!(*stop, LadderStop::NonElementwiseBlocksChunking, "{err}");
            assert!(msg.contains("no chunk strategy"), "{msg}");
        }
        // Admission may already prove no mode fits before the first run.
        WeaverError::Admission { detail } => {
            assert!(detail.contains("no chunk strategy"), "{detail}");
        }
        other => panic!("expected a typed no-strategy verdict, got {other}"),
    }
    assert_eq!(dev.memory().in_use(), 0, "error path leaked device memory");
}

/// With distinct keys the same mid-run explosion is *survivable*: the
/// ladder lands on hash-partitioned chunking, doubles the bucket count
/// until each bucket pair fits the 1 MiB device, and the answer is
/// byte-identical to the relational oracle.
#[test]
fn exploding_join_completes_via_hash_partitioned_chunks() {
    // 4096 rows over 64 keys: admission predicts a 4096-row join output,
    // but 64 rows per key explode to 64 * 64² = 262_144 output rows
    // (~6 MiB) — far past the 1 MiB device until partitioning splits the
    // key groups across buckets.
    let (plan, input) = exploding_join(4096, 64);
    let oracle = kw_relational::ops::join(&input, &input, 1).unwrap();

    let mut dev = Device::new(DeviceConfig::tiny());
    let report = execute_resilient(
        &plan,
        &[("t", &input)],
        &mut dev,
        &WeaverConfig::default(),
        &RetryPolicy::default(),
    )
    .expect("exploding join should survive via hash partitioning");

    let out = report.outputs.values().next().unwrap();
    assert_eq!(out, &oracle, "partitioned join changed the answer");
    let res = report.resilience.as_ref().unwrap();
    assert!(
        matches!(res.final_mode, AdmittedMode::Chunked { chunks } if chunks >= 2),
        "{res:?}"
    );
    assert_eq!(dev.memory().in_use(), 0, "partitioned run leaked memory");
}

/// The same exploding join inside a batch quarantines only itself: the
/// batch completes, the join reports `Failed` with the ladder-exhaustion
/// reason, and its neighbors' answers are untouched.
#[test]
fn exploding_join_in_batch_quarantines_only_itself() {
    let (join_plan, join_input) = exploding_join(1024, 1);
    let ok_input = gen::micro_input(5_000, 9);
    let ok_plan = select_plan(ok_input.schema().clone());
    let bj = [("t", &join_input)];
    let bo = [("t", &ok_input)];
    let queries = [
        BatchQuery {
            name: "boom",
            plan: &join_plan,
            bindings: &bj,
        },
        BatchQuery {
            name: "ok",
            plan: &ok_plan,
            bindings: &bo,
        },
    ];
    let mut dev = Device::new(DeviceConfig::tiny());
    let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

    let boom = &batch.queries[0];
    match &boom.outcome {
        QueryOutcome::Failed { reason } => {
            assert!(reason.contains("chunk-count ceiling"), "{reason}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert!(boom.outputs.is_empty());

    let ok = &batch.queries[1];
    assert!(ok.outcome.is_success(), "{:?}", ok.outcome);
    let mut solo = Device::new(DeviceConfig::fermi_c2050());
    let oracle = execute_plan(&ok_plan, &bo, &mut solo, &WeaverConfig::default()).unwrap();
    assert_eq!(ok.outputs, oracle.outputs);
    assert_eq!(dev.memory().in_use(), 0, "quarantine leaked device memory");
}

/// An elementwise SELECT/PROJECT chain of the given depth (≥ 1) over a
/// 3-column schema, for the property test below.
fn chain_plan(schema: Schema, depth: usize) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let mut cur = plan.add_input("t", schema);
    for i in 0..depth.max(1) {
        let op = if i % 2 == 0 {
            RaOp::Select {
                pred: Predicate::cmp(i % 3, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            }
        } else {
            RaOp::Project {
                attrs: vec![0, 1, 2],
                key_arity: 1,
            }
        };
        cur = plan.add_op(op, &[cur]).unwrap();
    }
    plan.mark_output(cur);
    plan
}

proptest! {
    /// Arbitrary small plans on arbitrary small devices under arbitrary
    /// transient-fault rates: the resilient driver either returns
    /// oracle-equal outputs or a typed error — it never panics, never leaks
    /// device memory, and is deterministic (two identical runs agree).
    #[test]
    fn resilient_execution_is_safe_and_deterministic(
        depth in 1usize..4,
        n in 0usize..300,
        data_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        cap_idx in 0usize..4,
        rate_idx in 0usize..3,
    ) {
        let input = gen::micro_input(n, data_seed);
        let plan = chain_plan(input.schema().clone(), depth);
        let capacities = [3u64 << 30, 1 << 20, 1 << 13, 1 << 10];
        let rate = [0.0, 0.05, 0.2][rate_idx];
        let faults = FaultConfig {
            seed: fault_seed,
            transfer_rate: rate,
            launch_rate: rate,
            ..FaultConfig::default()
        };
        let policy = RetryPolicy {
            max_retries: 32,
            base_backoff_seconds: 1e-4,
            backoff_multiplier: 1.1,
        };

        let run_once = || {
            let mut dev = Device::new(DeviceConfig {
                global_mem_bytes: capacities[cap_idx],
                ..DeviceConfig::fermi_c2050()
            });
            dev.inject_faults(faults.clone());
            let result = execute_resilient(
                &plan,
                &[("t", &input)],
                &mut dev,
                &WeaverConfig::default(),
                &policy,
            );
            let leaked = dev.memory().in_use();
            (result.map(|r| r.outputs).map_err(|e| e.to_string()), leaked)
        };

        let (first, leak1) = run_once();
        let (second, leak2) = run_once();
        prop_assert_eq!(leak1, 0, "first run leaked");
        prop_assert_eq!(leak2, 0, "second run leaked");
        prop_assert_eq!(&first, &second, "identical runs disagreed");

        match &first {
            Ok(outputs) => {
                let mut big = Device::new(DeviceConfig::fermi_c2050());
                let oracle = execute_plan(
                    &plan,
                    &[("t", &input)],
                    &mut big,
                    &WeaverConfig::default(),
                )
                .expect("oracle run on a clean full-size device");
                prop_assert_eq!(outputs, &oracle.outputs);
            }
            Err(msg) => prop_assert!(!msg.is_empty(), "untyped empty error"),
        }
    }
}

#[test]
fn all_weaver_errors_display_nonempty() {
    use kw_core::WeaverError;
    let errors: Vec<WeaverError> = vec![
        WeaverError::plan("broken"),
        WeaverError::binding("missing"),
        kw_relational::RelationalError::NotSorted { index: 1 }.into(),
        kw_gpu_sim::SimError::InvalidBuffer { id: 1 }.into(),
        kw_kernel_ir::IrError::validation("bad").into(),
        kw_primitives::IrBuildError::new("nope").into(),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
        let _ = format!("{e:?}");
    }
}
