//! Integration and property tests for the open-loop query service and the
//! compiled-plan cache: caching never changes answers, cache keys separate
//! exactly the shapes that compile differently, and a service run is a
//! pure function of its seed.

use proptest::prelude::*;

use kw_core::{
    execute_batch, execute_batch_compiled_with_policy, plan_shape_key, run_service, BatchQuery,
    PlanCache, QueryPlan, RetryPolicy, ServiceConfig, WeaverConfig,
};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate, Relation, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// A SELECT chain of `depth` steps over the 4-attribute micro schema.
fn chain(input: &Relation, depth: usize, threshold: u32) -> QueryPlan {
    let mut plan = QueryPlan::new();
    let mut cur = plan.add_input("t", input.schema().clone());
    for a in 0..depth {
        cur = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(threshold)),
                },
                &[cur],
            )
            .expect("chain type-checks");
    }
    plan.mark_output(cur);
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executing a shape with a cache-served compiled plan is byte-identical
    /// to compiling it fresh inside the batch executor — for any shape,
    /// binding contents, and repeat count.
    #[test]
    fn cached_compile_execution_is_byte_identical(
        n in 64usize..3_000,
        seed in any::<u64>(),
        depth in 1usize..4,
        threshold in any::<u32>(),
        repeats in 1usize..4,
    ) {
        let input = gen::micro_input(n, seed);
        let plan = chain(&input, depth, threshold);
        let bindings = [("t", &input)];
        let queries: Vec<BatchQuery<'_>> = (0..repeats)
            .map(|_| BatchQuery { name: "q", plan: &plan, bindings: &bindings })
            .collect();
        let config = WeaverConfig::default();

        // Fresh path: the batch executor compiles internally.
        let mut fresh_dev = device();
        let fresh = execute_batch(&queries, &mut fresh_dev, &config).unwrap();

        // Cached path: every compiled plan comes from the cache; after the
        // first miss each lookup is a hit serving the same artifact.
        let mut cache = PlanCache::new(4);
        let compiled: Vec<_> = (0..repeats)
            .map(|_| cache.get_or_compile(&plan, &config).unwrap().0)
            .collect();
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, repeats as u64 - 1);
        let mut cached_dev = device();
        let cached = execute_batch_compiled_with_policy(
            &queries,
            &compiled,
            &mut cached_dev,
            &config,
            &RetryPolicy::default(),
        )
        .unwrap();

        prop_assert_eq!(
            fresh.makespan_seconds.to_bits(),
            cached.makespan_seconds.to_bits()
        );
        for (f, c) in fresh.queries.iter().zip(&cached.queries) {
            prop_assert_eq!(&f.outputs, &c.outputs);
            prop_assert_eq!(&f.outcome, &c.outcome);
            prop_assert_eq!(f.latency_seconds.to_bits(), c.latency_seconds.to_bits());
        }
    }

    /// Shape keys collide exactly when the shapes are genuinely identical:
    /// same structure + same fusion-relevant config ⇒ same key, and any
    /// structural difference (depth, predicate constant) ⇒ different keys.
    #[test]
    fn shape_keys_separate_exactly_the_distinct_shapes(
        depth_a in 1usize..5,
        depth_b in 1usize..5,
        thr_a in any::<u32>(),
        thr_b in any::<u32>(),
    ) {
        let input = gen::micro_input(64, 1);
        let config = WeaverConfig::default();
        let a = chain(&input, depth_a, thr_a);
        let b = chain(&input, depth_b, thr_b);
        let rebuilt_a = chain(&input, depth_a, thr_a);

        // Identical construction ⇒ identical key.
        prop_assert_eq!(plan_shape_key(&a, &config), plan_shape_key(&rebuilt_a, &config));
        // Key equality ⇔ plan equality (the key is an injective encoding).
        prop_assert_eq!(
            plan_shape_key(&a, &config) == plan_shape_key(&b, &config),
            a == b
        );
        // Fusion-relevant config always separates keys.
        prop_assert_ne!(
            plan_shape_key(&a, &config),
            plan_shape_key(&a, &config.baseline())
        );
    }

    /// A service run is a pure function of its seed: identical seeds agree
    /// bit-for-bit, and the arrival schedule actually depends on the seed.
    #[test]
    fn service_runs_are_seed_deterministic(
        seed in any::<u64>(),
        offered_idx in 0usize..3,
    ) {
        let offered = [400.0, 1_500.0, 6_000.0][offered_idx];
        let input = gen::micro_input(2_000, 11);
        let plan = chain(&input, 2, u32::MAX / 2);
        let bindings = [("t", &input)];
        let shapes = [BatchQuery { name: "q", plan: &plan, bindings: &bindings }];
        let service = ServiceConfig {
            arrivals: 16,
            offered_qps: offered,
            seed,
            ..ServiceConfig::default()
        };

        let run = || {
            let mut dev = device();
            run_service(&shapes, &mut dev, &WeaverConfig::default(), &service).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.arrivals, 16);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.dispatches, b.dispatches);
        prop_assert_eq!(a.total.p99_seconds.to_bits(), b.total.p99_seconds.to_bits());
        prop_assert_eq!(a.achieved_qps.to_bits(), b.achieved_qps.to_bits());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            prop_assert_eq!(x.arrival_seconds.to_bits(), y.arrival_seconds.to_bits());
            prop_assert_eq!(x.total_seconds.to_bits(), y.total_seconds.to_bits());
            prop_assert_eq!(x.cache_hit, y.cache_hit);
        }

        // A different seed moves the arrival schedule.
        let other = ServiceConfig { seed: seed.wrapping_add(1), ..service };
        let mut dev = device();
        let c = run_service(&shapes, &mut dev, &WeaverConfig::default(), &other).unwrap();
        prop_assert_ne!(
            a.queries[0].arrival_seconds.to_bits(),
            c.queries[0].arrival_seconds.to_bits()
        );
    }
}

/// Service-level accounting invariants on a mixed-shape run: every arrival
/// is accounted for, exactly one cache lookup happens per arrival, totals
/// decompose into queueing + execution, and percentiles are monotone.
#[test]
fn service_accounting_invariants_hold_on_mixed_shapes() {
    let inputs: Vec<Relation> = (0..3).map(|i| gen::micro_input(4_000, 40 + i)).collect();
    let plans: Vec<QueryPlan> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| chain(input, i + 1, u32::MAX / 2 + i as u32))
        .collect();
    let bindings: Vec<[(&str, &Relation); 1]> = inputs.iter().map(|i| [("t", i)]).collect();
    let names = ["alpha", "beta", "gamma"];
    let shapes: Vec<BatchQuery<'_>> = plans
        .iter()
        .zip(&bindings)
        .zip(names)
        .map(|((p, b), name)| BatchQuery {
            name,
            plan: p,
            bindings: b,
        })
        .collect();

    let service = ServiceConfig {
        arrivals: 48,
        offered_qps: 3_000.0,
        ..ServiceConfig::default()
    };
    let mut dev = device();
    let report = run_service(&shapes, &mut dev, &WeaverConfig::default(), &service).unwrap();

    assert_eq!(report.arrivals, 48);
    assert_eq!(report.completed + report.failed, report.arrivals);
    assert_eq!(
        report.cache_hits + report.cache_misses,
        report.arrivals as u64,
        "exactly one cache lookup per arrival"
    );
    assert_eq!(report.cache_misses, 3, "one miss per distinct shape");
    assert!(report.dispatches >= 1);

    for q in &report.queries {
        assert!(
            (q.total_seconds - (q.queueing_seconds + q.execution_seconds)).abs() < 1e-12,
            "{}: total must decompose",
            q.name
        );
        assert!(q.queueing_seconds >= q.compile_seconds - 1e-12);
        if q.cache_hit {
            assert_eq!(q.compile_seconds, 0.0);
        }
    }
    for fam in [&report.queueing, &report.execution, &report.total] {
        assert!(fam.p50_seconds <= fam.p95_seconds);
        assert!(fam.p95_seconds <= fam.p99_seconds);
    }
    assert!(report.total.p99_seconds >= report.queueing.p99_seconds);
    assert!(report.total.p99_seconds >= report.execution.p99_seconds);
    assert!(report.duration_seconds > 0.0);
    assert!(report.achieved_qps > 0.0);
    assert_eq!(dev.metrics().counter("kw_service_arrivals_total"), 48);
    assert_eq!(
        dev.metrics().counter("kw_plan_cache_hits_total"),
        report.cache_hits
    );
}

/// The tentpole's acceptance bar at unit scale: at a fixed offered load
/// with repeated shapes, the cached service strictly beats the
/// compile-per-arrival baseline on total p99 and never loses on achieved
/// QPS.
#[test]
fn cached_service_strictly_beats_uncached_baseline() {
    let input = gen::micro_input(8_000, 55);
    let plan = chain(&input, 3, u32::MAX / 2);
    let bindings = [("t", &input)];
    let shapes = [BatchQuery {
        name: "repeat",
        plan: &plan,
        bindings: &bindings,
    }];
    let base = ServiceConfig {
        arrivals: 32,
        offered_qps: 2_500.0,
        ..ServiceConfig::default()
    };

    let run = |cache_capacity: usize| {
        let mut dev = device();
        let service = ServiceConfig {
            cache_capacity,
            ..base
        };
        run_service(&shapes, &mut dev, &WeaverConfig::default(), &service).unwrap()
    };
    let cached = run(32);
    let uncached = run(0);

    assert_eq!(cached.cache_misses, 1);
    assert_eq!(cached.cache_hits, 31);
    assert_eq!(uncached.cache_hits, 0);
    assert_eq!(uncached.cache_misses, 32);
    assert!(
        cached.total.p99_seconds < uncached.total.p99_seconds,
        "cached p99 {} must strictly beat uncached {}",
        cached.total.p99_seconds,
        uncached.total.p99_seconds
    );
    assert!(cached.achieved_qps >= uncached.achieved_qps - 1e-12);
    assert!(cached.compile_seconds_total < uncached.compile_seconds_total);
}
