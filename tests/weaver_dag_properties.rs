//! Property tests over random *DAG-shaped* plans (branches, shared
//! producers, multiple outputs): whatever Algorithm 1/2 and the weaver
//! decide, results must equal the unfused baseline in both exec modes.

use proptest::prelude::*;

use kw_core::{execute_plan, NodeId, QueryPlan, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Expr, Predicate, Relation, Schema, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// Instructions for growing a random DAG: each entry picks producers by
/// index modulo the current frontier and an operator shape.
#[derive(Debug, Clone)]
enum GrowStep {
    Select(usize, u32),
    MapAdd(usize, u32),
    Join(usize, usize),
    SemiJoin(usize, usize, bool),
    Union(usize, usize),
}

fn arb_grow() -> impl Strategy<Value = GrowStep> {
    prop_oneof![
        (any::<usize>(), any::<u32>()).prop_map(|(a, v)| GrowStep::Select(a, v)),
        (any::<usize>(), 1u32..1000).prop_map(|(a, v)| GrowStep::MapAdd(a, v)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GrowStep::Join(a, b)),
        (any::<usize>(), any::<usize>(), any::<bool>())
            .prop_map(|(a, b, n)| GrowStep::SemiJoin(a, b, n)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GrowStep::Union(a, b)),
    ]
}

/// Grow a plan whose every node keeps the uniform 4×u32 schema (joins are
/// re-projected down), so any composition type-checks.
fn grow_plan(steps: &[GrowStep]) -> (QueryPlan, Vec<NodeId>) {
    let schema = Schema::uniform_u32(4);
    let mut plan = QueryPlan::new();
    let t0 = plan.add_input("t0", schema.clone());
    let t1 = plan.add_input("t1", schema);
    let mut frontier = vec![t0, t1];

    for step in steps {
        let pick = |i: usize| frontier[i % frontier.len()];
        let node = match step {
            GrowStep::Select(a, v) => plan
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(1 + (a % 3), CmpOp::Lt, Value::U32(*v | 0x0fff_ffff)),
                    },
                    &[pick(*a)],
                )
                .unwrap(),
            GrowStep::MapAdd(a, v) => plan
                .add_op(
                    RaOp::Map {
                        exprs: vec![
                            Expr::attr(0),
                            Expr::attr(1).add(Expr::lit(*v)),
                            Expr::attr(2),
                            Expr::attr(3),
                        ],
                        key_arity: 1,
                    },
                    &[pick(*a)],
                )
                .unwrap(),
            GrowStep::Join(a, b) => {
                let j = plan
                    .add_op(RaOp::Join { key_len: 1 }, &[pick(*a), pick(*b)])
                    .unwrap();
                // Back to 4 attributes so the frontier stays uniform.
                plan.add_op(
                    RaOp::Project {
                        attrs: vec![0, 1, 2, 3],
                        key_arity: 1,
                    },
                    &[j],
                )
                .unwrap()
            }
            GrowStep::SemiJoin(a, b, negated) => {
                let op = if *negated {
                    RaOp::AntiJoin { key_len: 1 }
                } else {
                    RaOp::SemiJoin { key_len: 1 }
                };
                plan.add_op(op, &[pick(*a), pick(*b)]).unwrap()
            }
            GrowStep::Union(a, b) => plan.add_op(RaOp::Union, &[pick(*a), pick(*b)]).unwrap(),
        };
        frontier.push(node);
    }

    // Every sink (unconsumed node) is a plan output.
    let sinks: Vec<NodeId> = frontier
        .iter()
        .copied()
        .filter(|&n| {
            plan.consumers(n).is_empty() && !matches!(plan.node(n), kw_core::PlanNode::Input { .. })
        })
        .collect();
    let outputs = if sinks.is_empty() {
        vec![*frontier.last().unwrap()]
    } else {
        sinks
    };
    for &o in &outputs {
        plan.mark_output(o);
    }
    (plan, outputs)
}

fn inputs_for(seed: u64, n: usize) -> (Relation, Relation) {
    let schema = Schema::uniform_u32(4);
    let a = gen::random_relation(&schema, n, 256, &mut gen::rng(seed));
    let b = gen::random_relation(&schema, n, 256, &mut gen::rng(seed ^ 0xABCD));
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_dags_fuse_correctly(
        steps in proptest::collection::vec(arb_grow(), 1..8),
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        let (plan, _) = grow_plan(&steps);
        prop_assume!(plan.validate().is_ok());
        let (a, b) = inputs_for(seed, n);
        let bindings = [("t0", &a), ("t1", &b)];

        let mut d1 = device();
        let fused = execute_plan(&plan, &bindings, &mut d1, &WeaverConfig::default())
            .expect("fused execution");
        let mut d2 = device();
        let base = execute_plan(&plan, &bindings, &mut d2, &WeaverConfig::default().baseline())
            .expect("baseline execution");
        prop_assert_eq!(&fused.outputs, &base.outputs);

        // Staged mode agrees too.
        let staged = WeaverConfig {
            mode: kw_core::ExecMode::Staged,
            ..WeaverConfig::default()
        };
        let mut d3 = device();
        let staged_run = execute_plan(&plan, &bindings, &mut d3, &staged)
            .expect("staged execution");
        prop_assert_eq!(&staged_run.outputs, &base.outputs);

        // Accounting sanity on every run.
        for report in [&fused, &base, &staged_run] {
            prop_assert!(report.gpu_seconds > 0.0);
            prop_assert!(report.stats.kernel_launches > 0);
        }
        prop_assert!(d1.memory().in_use() == 0, "all buffers freed");
        prop_assert!(d3.memory().in_use() == 0, "all staged buffers freed");
    }
}
