//! Tokens of the Datalog surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Lower-case identifier (relation names, directives).
    Ident(String),
    /// Upper-case identifier (variables).
    Variable(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Floating literal (contains a `.` or exponent).
    Float(f32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.` terminating a clause
    Dot,
    /// `:-`
    Turnstile,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `!` (negation prefix)
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `_` wildcard
    Wildcard,
    /// A directive word following `.`: `input`, `output`, etc. — produced
    /// by the parser, not the lexer.
    End,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Variable(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Turnstile => write!(f, ":-"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Bang => write!(f, "!"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Wildcard => write!(f, "_"),
            Token::End => write!(f, "<end>"),
        }
    }
}

/// A token plus its source line (1-based) for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source line it starts on.
    pub line: usize,
}
