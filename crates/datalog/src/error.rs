//! Error type for the Datalog front-end.

use std::fmt;

/// Errors produced while lexing, parsing or translating Datalog.
#[derive(Debug)]
pub enum DatalogError {
    /// Lexical error.
    Lex {
        /// Source line.
        line: usize,
        /// Description.
        detail: String,
    },
    /// Syntax error.
    Parse {
        /// Source line.
        line: usize,
        /// Description.
        detail: String,
    },
    /// Semantic error (unknown relation, arity mismatch, unbound variable,
    /// type conflict).
    Semantic {
        /// Description.
        detail: String,
    },
    /// Plan construction failed downstream.
    Weaver(kw_core::WeaverError),
}

impl DatalogError {
    pub(crate) fn semantic(detail: impl Into<String>) -> DatalogError {
        DatalogError::Semantic {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Lex { line, detail } => write!(f, "lex error (line {line}): {detail}"),
            DatalogError::Parse { line, detail } => {
                write!(f, "parse error (line {line}): {detail}")
            }
            DatalogError::Semantic { detail } => write!(f, "semantic error: {detail}"),
            DatalogError::Weaver(e) => write!(f, "plan construction failed: {e}"),
        }
    }
}

impl std::error::Error for DatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatalogError::Weaver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kw_core::WeaverError> for DatalogError {
    fn from(e: kw_core::WeaverError) -> Self {
        DatalogError::Weaver(e)
    }
}

/// Convenience alias for front-end results.
pub type Result<T> = std::result::Result<T, DatalogError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = DatalogError::Parse {
            line: 12,
            detail: "expected )".into(),
        };
        assert!(e.to_string().contains("12"));
    }
}
