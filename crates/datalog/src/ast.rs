//! Abstract syntax of the Datalog subset.
//!
//! The supported language (documented in the crate root):
//!
//! ```text
//! .input t(*u32, u32, f32).        % base relation; '*' marks key attrs
//! r(K, V)  :- t(K, V, _), V < 10.  % conjunctive rule with comparisons
//! s(K, V2) :- r(K, V), u(K, W), V2 = V * W.  % join + arithmetic
//! .output s.
//! ```

use kw_relational::AttrType;

/// A parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Base-relation declarations.
    pub inputs: Vec<InputDecl>,
    /// Rules in source order.
    pub rules: Vec<Rule>,
    /// Relations marked `.output`.
    pub outputs: Vec<String>,
}

/// `.input name(*ty, ty, ...)` — a base relation; leading `*` attributes
/// form the key (defaults to the first attribute if none are starred).
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// Relation name.
    pub name: String,
    /// Attribute types.
    pub attrs: Vec<AttrType>,
    /// Number of leading key attributes.
    pub key_arity: usize,
}

/// A single rule `head :- body.`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head relation name.
    pub head: String,
    /// Head terms: variables or arithmetic expressions over body variables.
    pub head_terms: Vec<HeadTerm>,
    /// Body literals in source order.
    pub body: Vec<Literal>,
    /// Source line (for error messages).
    pub line: usize,
}

/// A term in a rule head.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadTerm {
    /// A body variable passed through.
    Var(String),
    /// An arithmetic expression over body variables.
    Expr(ArithAst),
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A relation atom.
    Atom {
        /// Relation name (base or derived).
        name: String,
        /// Terms, one per attribute.
        terms: Vec<Term>,
    },
    /// A negated relation atom (`!r(...)` — translated to an anti-join;
    /// every shared variable must be bound by a positive atom).
    NegAtom {
        /// Relation name.
        name: String,
        /// Terms, one per attribute.
        terms: Vec<Term>,
    },
    /// A comparison constraint.
    Compare {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: kw_relational::CmpOp,
        /// Right operand.
        right: Operand,
    },
}

/// A term inside an atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable binding the attribute.
    Var(String),
    /// A constant the attribute must equal.
    Const(ConstVal),
    /// Ignore the attribute.
    Wildcard,
}

/// An operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A bound variable.
    Var(String),
    /// A literal constant.
    Const(ConstVal),
}

/// An untyped literal constant (typed during translation against the
/// attribute it meets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// Integer literal.
    Int(u64),
    /// Float literal.
    Float(f32),
}

/// Arithmetic expression AST (head expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum ArithAst {
    /// A body variable.
    Var(String),
    /// A constant.
    Const(ConstVal),
    /// Addition.
    Add(Box<ArithAst>, Box<ArithAst>),
    /// Subtraction.
    Sub(Box<ArithAst>, Box<ArithAst>),
    /// Multiplication.
    Mul(Box<ArithAst>, Box<ArithAst>),
    /// Division.
    Div(Box<ArithAst>, Box<ArithAst>),
}

impl ArithAst {
    /// Variables referenced by the expression.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            ArithAst::Var(v) => vec![v.as_str()],
            ArithAst::Const(_) => vec![],
            ArithAst::Add(a, b)
            | ArithAst::Sub(a, b)
            | ArithAst::Mul(a, b)
            | ArithAst::Div(a, b) => {
                let mut out = a.vars();
                out.extend(b.vars());
                out
            }
        }
    }
}
