//! Datalog front-end for the Kernel Weaver reproduction.
//!
//! The paper's language front-end is Datalog (Section 3): declarative rules
//! are compiled into a query plan of relational-algebra operators, which
//! Kernel Weaver then fuses. This crate implements a typed conjunctive
//! subset sufficient for the paper's workloads:
//!
//! ```text
//! % declare base relations; '*' marks key attributes (default: first)
//! .input item(*u32, u32, f32).
//! .input color(*u32, u32).
//!
//! % conjunctive rules: joins on shared variables, comparisons, constants
//! cheap(K, P)    :- item(K, _, P), P < 10.0.
//! red(K, P)      :- cheap(K, P), color(K, 1).
//!
//! % arithmetic head expressions (the paper's §4.4 extension)
//! taxed(K, P * 1.1) :- red(K, P).
//!
//! .output taxed.
//! ```
//!
//! Rules with the same head are UNIONed. Joining on a variable that is not
//! the leading key of its relation inserts a SORT node — a kernel-dependence
//! boundary, exactly as in the paper's Figure 9(c).
//!
//! Safe negation is supported: `!banned(K, _)` in a body becomes an
//! anti-join on the variables shared with the positive atoms (every negated
//! atom must share at least one). Not supported (documented scope cuts):
//! recursion (the paper also "only considers" non-recursive queries) and
//! aggregation syntax (build aggregate plans directly with
//! [`kw_core::QueryPlan`]).
//!
//! # Examples
//!
//! ```
//! use kw_datalog::compile_datalog;
//!
//! let q = "
//!     .input t(*u32, u32).
//!     small(K, V) :- t(K, V), V < 100.
//!     .output small.
//! ";
//! let translated = compile_datalog(q)?;
//! assert_eq!(translated.outputs.len(), 1);
//! assert!(translated.plan.validate().is_ok());
//! # Ok::<(), kw_datalog::DatalogError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod parser;
mod token;
mod translate;

pub use ast::{ArithAst, ConstVal, HeadTerm, InputDecl, Literal, Operand, Program, Rule, Term};
pub use error::{DatalogError, Result};
pub use lexer::lex;
pub use parser::parse;
pub use token::{Spanned, Token};
pub use translate::{translate, Translated};

/// Parse and translate a Datalog program into a query plan.
///
/// # Errors
///
/// Returns [`DatalogError`] for lexical, syntactic or semantic problems.
pub fn compile_datalog(src: &str) -> Result<Translated> {
    translate(&parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::{execute_plan, WeaverConfig};
    use kw_gpu_sim::{Device, DeviceConfig};
    use kw_primitives::RaOp;
    use kw_relational::{gen, ops, CmpOp, Predicate, Value};

    #[test]
    fn select_chain_program_runs_and_matches_oracle() {
        let src = "
            .input t(*u32, u32, u32, u32).
            f1(A, B, C, D) :- t(A, B, C, D), B < 2147483647.
            f2(A, B) :- f1(A, B, C, _), C < 1073741824.
            .output f2.
        ";
        let translated = compile_datalog(src).unwrap();
        let input = gen::micro_input(5_000, 3);

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(
            &translated.plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
        )
        .unwrap();

        let p1 = Predicate::cmp(1, CmpOp::Lt, Value::U32(2147483647));
        let p2 = Predicate::cmp(2, CmpOp::Lt, Value::U32(1073741824));
        let expect = ops::project(
            &ops::select(&ops::select(&input, &p1).unwrap(), &p2).unwrap(),
            &[0, 1],
            1,
        )
        .unwrap();
        let (_, out_node) = translated.outputs[0];
        assert_eq!(report.outputs[&out_node], expect);
    }

    #[test]
    fn join_program_matches_oracle() {
        let src = "
            .input x(*u32, u32).
            .input y(*u32, u32).
            j(K, A, B) :- x(K, A), y(K, B).
            .output j.
        ";
        let translated = compile_datalog(src).unwrap();
        let (l, r) = gen::join_inputs(2_000, 2, 0.5, 11);

        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(
            &translated.plan,
            &[("x", &l), ("y", &r)],
            &mut dev,
            &WeaverConfig::default(),
        )
        .unwrap();

        let expect = ops::project(&ops::join(&l, &r, 1).unwrap(), &[0, 1, 2], 1).unwrap();
        let (_, out) = translated.outputs[0];
        assert_eq!(report.outputs[&out], expect);
    }

    #[test]
    fn join_on_non_key_inserts_sort() {
        let src = "
            .input x(*u32, u32).
            .input y(*u32, u32).
            j(K) :- x(K, V), y(_, V).
            .output j.
        ";
        let translated = compile_datalog(src).unwrap();
        let sorts = translated
            .plan
            .operator_nodes()
            .filter(|(_, op, _)| matches!(op, RaOp::Sort { .. }))
            .count();
        assert!(
            sorts >= 1,
            "expected a SORT re-key:\n{}",
            translated.plan.describe()
        );
    }

    #[test]
    fn arithmetic_head_becomes_map() {
        let src = "
            .input l(*u32, f32, f32, f32).
            rev(K, P * (1.0 - D) * (1.0 + T)) :- l(K, P, D, T).
            .output rev.
        ";
        let translated = compile_datalog(src).unwrap();
        let maps = translated
            .plan
            .operator_nodes()
            .filter(|(_, op, _)| matches!(op, RaOp::Map { .. }))
            .count();
        assert_eq!(maps, 1);
    }

    #[test]
    fn same_head_rules_union() {
        let src = "
            .input t(*u32, u32).
            r(K) :- t(K, V), V < 5.
            r(K) :- t(K, V), V > 100.
            .output r.
        ";
        let translated = compile_datalog(src).unwrap();
        let unions = translated
            .plan
            .operator_nodes()
            .filter(|(_, op, _)| matches!(op, RaOp::Union))
            .count();
        assert_eq!(unions, 1);
    }

    #[test]
    fn negation_is_anti_join() {
        let src = "
            .input t(*u32, u32).
            .input banned(*u32, u32).
            ok(K, V) :- t(K, V), !banned(K, _).
            .output ok.
        ";
        let translated = compile_datalog(src).unwrap();
        let anti = translated
            .plan
            .operator_nodes()
            .filter(|(_, op, _)| matches!(op, RaOp::AntiJoin { .. }))
            .count();
        assert_eq!(anti, 1);

        let t = kw_relational::Relation::from_words(
            kw_relational::Schema::uniform_u32(2),
            vec![1, 10, 2, 20, 3, 30],
        )
        .unwrap();
        let banned =
            kw_relational::Relation::from_words(kw_relational::Schema::uniform_u32(2), vec![2, 0])
                .unwrap();
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(
            &translated.plan,
            &[("t", &t), ("banned", &banned)],
            &mut dev,
            &WeaverConfig::default(),
        )
        .unwrap();
        let (_, out) = translated.outputs[0];
        assert_eq!(report.outputs[&out].words(), &[1, 10, 3, 30]);
    }

    #[test]
    fn unsafe_negation_rejected() {
        let src = "
            .input t(*u32).
            .input u(*u32).
            r(K) :- t(K), !u(Z).
            .output r.
        ";
        let err = compile_datalog(src).unwrap_err();
        assert!(err.to_string().contains("shares no variable"), "{err}");
    }

    #[test]
    fn semantic_errors() {
        // Unknown relation.
        assert!(compile_datalog(".input t(*u32).\nr(K) :- u(K).\n.output r.").is_err());
        // Arity mismatch.
        assert!(compile_datalog(".input t(*u32).\nr(K) :- t(K, V).\n.output r.").is_err());
        // Unbound head variable.
        assert!(compile_datalog(".input t(*u32).\nr(Z) :- t(K).\n.output r.").is_err());
        // Missing output.
        assert!(compile_datalog(".input t(*u32).\nr(K) :- t(K).").is_err());
        // Unknown output.
        assert!(compile_datalog(".input t(*u32).\nr(K) :- t(K).\n.output z.").is_err());
        // Constant too large for u32 attribute.
        assert!(
            compile_datalog(".input t(*u32).\nr(K) :- t(K), K < 99999999999.\n.output r.").is_err()
        );
    }

    #[test]
    fn repeated_variable_in_atom_is_equality() {
        let src = "
            .input t(*u32, u32).
            eq(K) :- t(K, K).
            .output eq.
        ";
        let translated = compile_datalog(src).unwrap();
        let input = kw_relational::Relation::from_words(
            kw_relational::Schema::uniform_u32(2),
            vec![1, 1, 2, 3, 4, 4],
        )
        .unwrap();
        let mut dev = Device::new(DeviceConfig::fermi_c2050());
        let report = execute_plan(
            &translated.plan,
            &[("t", &input)],
            &mut dev,
            &WeaverConfig::default(),
        )
        .unwrap();
        let (_, out) = translated.outputs[0];
        assert_eq!(report.outputs[&out].to_rows().len(), 2);
    }
}
