//! Recursive-descent parser for the Datalog subset.

use kw_relational::{AttrType, CmpOp};

use crate::{
    ArithAst, ConstVal, DatalogError, HeadTerm, InputDecl, Literal, Operand, Program, Result, Rule,
    Spanned, Term, Token,
};

/// Parse a program from source text.
///
/// # Errors
///
/// Returns [`DatalogError::Lex`] or [`DatalogError::Parse`] with the source
/// line of the problem.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = crate::lex(src)?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .program()
}

/// Maximum parenthesis-nesting depth inside an arithmetic expression.
/// Real programs nest two or three levels; the bound exists so a
/// paren-bomb (`((((…`) reports a parse error instead of overflowing
/// the recursive-descent stack.
const MAX_ARITH_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, detail: impl Into<String>) -> Result<T> {
        Err(DatalogError::Parse {
            line: self.line(),
            detail: detail.into(),
        })
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<()> {
        if self.peek() == want {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found '{}'", self.peek()))
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut p = Program::default();
        loop {
            match self.peek().clone() {
                Token::End => break,
                Token::Dot => {
                    self.next();
                    let Token::Ident(directive) = self.next() else {
                        return self.err("expected directive after '.'");
                    };
                    match directive.as_str() {
                        "input" => p.inputs.push(self.input_decl()?),
                        "output" => {
                            let Token::Ident(name) = self.next() else {
                                return self.err("expected relation name after .output");
                            };
                            p.outputs.push(name);
                            self.expect(&Token::Dot, "'.'")?;
                        }
                        other => return self.err(format!("unknown directive '.{other}'")),
                    }
                }
                Token::Ident(_) => p.rules.push(self.rule()?),
                other => return self.err(format!("unexpected '{other}'")),
            }
        }
        Ok(p)
    }

    fn input_decl(&mut self) -> Result<InputDecl> {
        let Token::Ident(name) = self.next() else {
            return self.err("expected relation name after .input");
        };
        self.expect(&Token::LParen, "'('")?;
        let mut attrs = Vec::new();
        let mut key_arity = 0usize;
        let mut starred = false;
        loop {
            let mut is_key = false;
            if *self.peek() == Token::Star {
                self.next();
                is_key = true;
                starred = true;
            }
            let Token::Ident(ty) = self.next() else {
                return self.err("expected attribute type");
            };
            let ty = match ty.as_str() {
                "u32" => AttrType::U32,
                "u64" => AttrType::U64,
                "f32" => AttrType::F32,
                "bool" => AttrType::Bool,
                other => return self.err(format!("unknown type '{other}'")),
            };
            if is_key {
                if attrs.len() != key_arity {
                    return self.err("key attributes must be a leading prefix");
                }
                key_arity += 1;
            }
            attrs.push(ty);
            match self.next() {
                Token::Comma => continue,
                Token::RParen => break,
                other => return self.err(format!("expected ',' or ')', found '{other}'")),
            }
        }
        self.expect(&Token::Dot, "'.'")?;
        if !starred {
            key_arity = 1.min(attrs.len());
        }
        Ok(InputDecl {
            name,
            attrs,
            key_arity,
        })
    }

    fn rule(&mut self) -> Result<Rule> {
        let line = self.line();
        let Token::Ident(head) = self.next() else {
            return self.err("expected head relation name");
        };
        self.expect(&Token::LParen, "'('")?;
        let mut head_terms = Vec::new();
        loop {
            head_terms.push(self.head_term()?);
            match self.next() {
                Token::Comma => continue,
                Token::RParen => break,
                other => return self.err(format!("expected ',' or ')', found '{other}'")),
            }
        }
        self.expect(&Token::Turnstile, "':-'")?;
        let mut body = Vec::new();
        loop {
            body.push(self.literal()?);
            match self.next() {
                Token::Comma => continue,
                Token::Dot => break,
                other => return self.err(format!("expected ',' or '.', found '{other}'")),
            }
        }
        Ok(Rule {
            head,
            head_terms,
            body,
            line,
        })
    }

    fn head_term(&mut self) -> Result<HeadTerm> {
        let expr = self.arith_expr()?;
        // A bare variable stays a Var (pass-through); anything else is an
        // arithmetic head expression.
        Ok(match expr {
            ArithAst::Var(v) => HeadTerm::Var(v),
            other => HeadTerm::Expr(other),
        })
    }

    fn literal(&mut self) -> Result<Literal> {
        if *self.peek() == Token::Bang {
            self.next();
            let Token::Ident(name) = self.next() else {
                return self.err("expected relation name after '!'");
            };
            self.expect(&Token::LParen, "'('")?;
            let mut terms = Vec::new();
            loop {
                terms.push(self.atom_term()?);
                match self.next() {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return self.err(format!("expected ',' or ')', found '{other}'")),
                }
            }
            return Ok(Literal::NegAtom { name, terms });
        }
        match self.peek().clone() {
            Token::Ident(name) => {
                self.next();
                self.expect(&Token::LParen, "'('")?;
                let mut terms = Vec::new();
                loop {
                    terms.push(self.atom_term()?);
                    match self.next() {
                        Token::Comma => continue,
                        Token::RParen => break,
                        other => return self.err(format!("expected ',' or ')', found '{other}'")),
                    }
                }
                Ok(Literal::Atom { name, terms })
            }
            _ => {
                let left = self.operand()?;
                let op = match self.next() {
                    Token::Lt => CmpOp::Lt,
                    Token::Le => CmpOp::Le,
                    Token::Gt => CmpOp::Gt,
                    Token::Ge => CmpOp::Ge,
                    Token::EqEq => CmpOp::Eq,
                    Token::Ne => CmpOp::Ne,
                    other => return self.err(format!("expected comparison, found '{other}'")),
                };
                let right = self.operand()?;
                Ok(Literal::Compare { left, op, right })
            }
        }
    }

    fn atom_term(&mut self) -> Result<Term> {
        match self.next() {
            Token::Variable(v) => Ok(Term::Var(v)),
            Token::Wildcard => Ok(Term::Wildcard),
            Token::Int(v) => Ok(Term::Const(ConstVal::Int(v))),
            Token::Float(v) => Ok(Term::Const(ConstVal::Float(v))),
            other => self.err(format!("expected term, found '{other}'")),
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.next() {
            Token::Variable(v) => Ok(Operand::Var(v)),
            Token::Int(v) => Ok(Operand::Const(ConstVal::Int(v))),
            Token::Float(v) => Ok(Operand::Const(ConstVal::Float(v))),
            other => self.err(format!("expected operand, found '{other}'")),
        }
    }

    // Arithmetic expressions with standard precedence: term ::= factor (('*'|'/') factor)*.
    fn arith_expr(&mut self) -> Result<ArithAst> {
        let mut left = self.arith_term()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.next();
                    let r = self.arith_term()?;
                    left = ArithAst::Add(Box::new(left), Box::new(r));
                }
                Token::Minus => {
                    self.next();
                    let r = self.arith_term()?;
                    left = ArithAst::Sub(Box::new(left), Box::new(r));
                }
                _ => return Ok(left),
            }
        }
    }

    fn arith_term(&mut self) -> Result<ArithAst> {
        let mut left = self.arith_factor()?;
        loop {
            match self.peek() {
                Token::Star => {
                    self.next();
                    let r = self.arith_factor()?;
                    left = ArithAst::Mul(Box::new(left), Box::new(r));
                }
                Token::Slash => {
                    self.next();
                    let r = self.arith_factor()?;
                    left = ArithAst::Div(Box::new(left), Box::new(r));
                }
                _ => return Ok(left),
            }
        }
    }

    fn arith_factor(&mut self) -> Result<ArithAst> {
        match self.next() {
            Token::Variable(v) => Ok(ArithAst::Var(v)),
            Token::Int(v) => Ok(ArithAst::Const(ConstVal::Int(v))),
            Token::Float(v) => Ok(ArithAst::Const(ConstVal::Float(v))),
            Token::LParen => {
                if self.depth >= MAX_ARITH_DEPTH {
                    return self.err(format!(
                        "expression nests deeper than {MAX_ARITH_DEPTH} parentheses"
                    ));
                }
                self.depth += 1;
                let e = self.arith_expr();
                self.depth -= 1;
                let e = e?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inputs_rules_outputs() {
        let p = parse(
            "% demo\n\
             .input t(*u32, u32, f32).\n\
             .input u(*u32, u32).\n\
             r(K, V) :- t(K, V, _), V < 10.\n\
             s(K, W) :- r(K, V), u(K, W), V != W.\n\
             .output s.\n",
        )
        .unwrap();
        assert_eq!(p.inputs.len(), 2);
        assert_eq!(p.inputs[0].key_arity, 1);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.outputs, vec!["s"]);
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn parses_arithmetic_head() {
        let p = parse(
            ".input l(*u32, f32, f32, f32).\n\
             r(K, P * (1.0 - D) * (1.0 + T)) :- l(K, P, D, T).\n\
             .output r.\n",
        )
        .unwrap();
        match &p.rules[0].head_terms[1] {
            HeadTerm::Expr(e) => {
                assert_eq!(e.vars().len(), 3);
            }
            other => panic!("expected expression, got {other:?}"),
        }
    }

    #[test]
    fn default_key_is_first_attr() {
        let p = parse(".input t(u32, u32).\nr(K) :- t(K, _).\n.output r.").unwrap();
        assert_eq!(p.inputs[0].key_arity, 1);
    }

    #[test]
    fn multi_attr_key() {
        let p = parse(".input t(*u32, *u32, f32).\nr(K) :- t(K, _, _).\n.output r.").unwrap();
        assert_eq!(p.inputs[0].key_arity, 2);
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse(".input t(*u32).\nr(K) :- t(K\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("parse error"), "{msg}");
    }

    #[test]
    fn non_prefix_key_rejected() {
        assert!(parse(".input t(u32, *u32).\n").is_err());
        assert!(parse(".input t(*u32, u32, *u32).\n").is_err());
    }

    #[test]
    fn paren_bomb_errors_instead_of_overflowing() {
        // 100k nested parens must yield a parse error, not a stack overflow.
        let bomb = format!(
            ".input t(*u32).\nr({}X{}) :- t(X).\n.output r.",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        let err = parse(&bomb).unwrap_err();
        assert!(err.to_string().contains("nests deeper"), "{err}");
        // Modest nesting still parses.
        let ok = format!(
            ".input t(*u32).\nr({}X{}) :- t(X).\n.output r.",
            "(".repeat(16),
            ")".repeat(16)
        );
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn constants_in_atoms() {
        let p = parse(".input t(*u32, u32).\nr(K) :- t(K, 7).\n.output r.").unwrap();
        match &p.rules[0].body[0] {
            Literal::Atom { terms, .. } => {
                assert_eq!(terms[1], Term::Const(ConstVal::Int(7)));
            }
            other => panic!("{other:?}"),
        }
    }
}
