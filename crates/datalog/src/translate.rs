//! Translation from Datalog rules to Kernel Weaver query plans.
//!
//! Each rule becomes a left-deep operator tree: per-atom constant/equality
//! SELECTs, joins between atoms on their shared variables (with SORT nodes
//! inserted when a shared variable is not already the leading key — exactly
//! the kernel-dependence boundaries of the paper's Figure 9(c)), one SELECT
//! for the comparison constraints, and a PROJECT (or arithmetic MAP) onto
//! the head terms. Rules with the same head name are UNIONed.

use std::collections::BTreeMap;

use kw_core::{NodeId, QueryPlan};
use kw_primitives::RaOp;
use kw_relational::{AttrType, CmpOp, Expr, Predicate, Schema, Value};

use crate::{
    ArithAst, ConstVal, DatalogError, HeadTerm, Literal, Operand, Program, Result, Rule, Term,
};

/// A translated program: the plan plus name↦node maps.
#[derive(Debug)]
pub struct Translated {
    /// The query plan.
    pub plan: QueryPlan,
    /// Base relation input nodes by name.
    pub inputs: BTreeMap<String, NodeId>,
    /// Output nodes in `.output` order, with their names.
    pub outputs: Vec<(String, NodeId)>,
}

/// Translate a parsed [`Program`] into a [`QueryPlan`].
///
/// # Errors
///
/// Returns [`DatalogError::Semantic`] for unknown relations, arity
/// mismatches, unbound variables or type conflicts.
pub fn translate(program: &Program) -> Result<Translated> {
    let mut plan = QueryPlan::new();
    let mut inputs = BTreeMap::new();
    // name -> (node, variable-free schema) for base and derived relations.
    let mut env: BTreeMap<String, NodeId> = BTreeMap::new();

    for decl in &program.inputs {
        if env.contains_key(&decl.name) {
            return Err(DatalogError::semantic(format!(
                "relation '{}' declared twice",
                decl.name
            )));
        }
        let schema = Schema::new(decl.attrs.clone(), decl.key_arity);
        let node = plan.add_input(decl.name.clone(), schema);
        env.insert(decl.name.clone(), node);
        inputs.insert(decl.name.clone(), node);
    }

    // Group rules by head, preserving order of first appearance.
    let mut head_order: Vec<String> = Vec::new();
    for r in &program.rules {
        if !head_order.contains(&r.head) {
            head_order.push(r.head.clone());
        }
    }
    for head in &head_order {
        let mut result: Option<NodeId> = None;
        for rule in program.rules.iter().filter(|r| &r.head == head) {
            let node = translate_rule(&mut plan, &env, rule)?;
            result = Some(match result {
                None => node,
                Some(prev) => plan
                    .add_op(RaOp::Union, &[prev, node])
                    .map_err(DatalogError::from)?,
            });
        }
        let node = result.ok_or_else(|| {
            DatalogError::semantic(format!("no rule bodies translated for head '{head}'"))
        })?;
        if env.contains_key(head) {
            return Err(DatalogError::semantic(format!(
                "relation '{head}' already defined"
            )));
        }
        env.insert(head.clone(), node);
    }

    let mut outputs = Vec::new();
    for name in &program.outputs {
        let node = *env.get(name).ok_or_else(|| {
            DatalogError::semantic(format!("output relation '{name}' is not defined"))
        })?;
        plan.mark_output(node);
        outputs.push((name.clone(), node));
    }
    if outputs.is_empty() {
        return Err(DatalogError::semantic("program has no .output directive"));
    }

    Ok(Translated {
        plan,
        inputs,
        outputs,
    })
}

/// Bindings: variable name -> attribute position in the current
/// intermediate relation.
type Bindings = Vec<(String, usize)>;

fn position(bindings: &Bindings, var: &str) -> Option<usize> {
    bindings.iter().find(|(v, _)| v == var).map(|(_, p)| *p)
}

fn translate_rule(
    plan: &mut QueryPlan,
    env: &BTreeMap<String, NodeId>,
    rule: &Rule,
) -> Result<NodeId> {
    let mut acc: Option<(NodeId, Bindings)> = None;

    for lit in &rule.body {
        if let Literal::Atom { name, terms } = lit {
            let (node, bindings) = load_atom(plan, env, name, terms, rule.line)?;
            acc = Some(match acc {
                None => (node, bindings),
                Some((lnode, lbind)) => join_atoms(plan, lnode, lbind, node, bindings)?,
            });
        }
    }
    let (mut node, mut bindings) = acc.ok_or_else(|| {
        DatalogError::semantic(format!(
            "rule for '{}' (line {}) has no positive relation atoms",
            rule.head, rule.line
        ))
    })?;

    // Negated atoms become anti-joins on the variables shared with the
    // positive body (every negation must be "safe": share at least one
    // bound variable).
    for lit in &rule.body {
        if let Literal::NegAtom { name, terms } = lit {
            let (rnode, rbind) = load_atom(plan, env, name, terms, rule.line)?;
            let shared: Vec<String> = bindings
                .iter()
                .map(|(v, _)| v.clone())
                .filter(|v| position(&rbind, v).is_some())
                .collect();
            if shared.is_empty() {
                return Err(DatalogError::semantic(format!(
                    "negated atom '!{name}' (line {}) shares no variable with the positive body",
                    rule.line
                )));
            }
            let (lnode, lbind) = rekey(plan, node, bindings, &shared)?;
            let (rnode, _) = rekey(plan, rnode, rbind, &shared)?;
            node = plan
                .add_op(
                    RaOp::AntiJoin {
                        key_len: shared.len(),
                    },
                    &[lnode, rnode],
                )
                .map_err(DatalogError::from)?;
            bindings = lbind;
        }
    }

    // Comparison constraints, conjoined into one SELECT.
    let mut pred: Option<Predicate> = None;
    for lit in &rule.body {
        if let Literal::Compare { left, op, right } = lit {
            let p = compare_predicate(plan, node, &bindings, left, *op, right)?;
            pred = Some(match pred {
                None => p,
                Some(q) => q.and(p),
            });
        }
    }
    if let Some(pred) = pred {
        node = plan
            .add_op(RaOp::Select { pred }, &[node])
            .map_err(DatalogError::from)?;
    }

    // Head projection / arithmetic map.
    let all_vars = rule
        .head_terms
        .iter()
        .all(|t| matches!(t, HeadTerm::Var(_)));
    if all_vars {
        let mut attrs = Vec::new();
        for t in &rule.head_terms {
            let HeadTerm::Var(v) = t else {
                return Err(DatalogError::semantic(format!(
                    "head of '{}' mixes expressions into a variable-only projection",
                    rule.head
                )));
            };
            attrs.push(position(&bindings, v).ok_or_else(|| {
                DatalogError::semantic(format!(
                    "head variable '{v}' of '{}' is not bound in the body",
                    rule.head
                ))
            })?);
        }
        // A PROJECT can only claim a key it preserves; otherwise the
        // derived relation is unkeyed and a later join will insert a SORT.
        let key_arity = usize::from(attrs.first() == Some(&0));
        plan.add_op(RaOp::Project { attrs, key_arity }, &[node])
            .map_err(DatalogError::from)
    } else {
        let mut exprs = Vec::new();
        for t in &rule.head_terms {
            exprs.push(match t {
                HeadTerm::Var(v) => Expr::attr(position(&bindings, v).ok_or_else(|| {
                    DatalogError::semantic(format!(
                        "head variable '{v}' of '{}' is not bound in the body",
                        rule.head
                    ))
                })?),
                HeadTerm::Expr(e) => arith_to_expr(e, &bindings)?,
            });
        }
        let key_arity = usize::from(exprs.first() == Some(&Expr::Attr(0)));
        plan.add_op(RaOp::Map { exprs, key_arity }, &[node])
            .map_err(DatalogError::from)
    }
}

/// Load one atom: resolve the relation, apply constant/equality selects,
/// and return its node plus variable bindings.
fn load_atom(
    plan: &mut QueryPlan,
    env: &BTreeMap<String, NodeId>,
    name: &str,
    terms: &[Term],
    line: usize,
) -> Result<(NodeId, Bindings)> {
    let node = *env.get(name).ok_or_else(|| {
        DatalogError::semantic(format!("unknown relation '{name}' (line {line})"))
    })?;
    let schema = plan.schema(node).clone();
    if terms.len() != schema.arity() {
        return Err(DatalogError::semantic(format!(
            "atom '{name}' has {} terms but the relation has arity {} (line {line})",
            terms.len(),
            schema.arity()
        )));
    }

    let mut bindings: Bindings = Vec::new();
    let mut pred: Option<Predicate> = None;
    let and = |pred: &mut Option<Predicate>, p: Predicate| {
        *pred = Some(match pred.take() {
            None => p,
            Some(q) => q.and(p),
        });
    };

    for (i, term) in terms.iter().enumerate() {
        match term {
            Term::Wildcard => {}
            Term::Const(c) => {
                let v = typed_const(*c, schema.attr(i))?;
                and(&mut pred, Predicate::cmp(i, CmpOp::Eq, v));
            }
            Term::Var(v) => match position(&bindings, v) {
                None => bindings.push((v.clone(), i)),
                Some(first) => and(&mut pred, Predicate::cmp_attr(first, CmpOp::Eq, i)),
            },
        }
    }

    let node = match pred {
        Some(pred) => plan
            .add_op(RaOp::Select { pred }, &[node])
            .map_err(DatalogError::from)?,
        None => node,
    };
    Ok((node, bindings))
}

/// Join the accumulated relation with a new atom on their shared variables,
/// inserting SORT nodes to re-key when necessary.
fn join_atoms(
    plan: &mut QueryPlan,
    lnode: NodeId,
    lbind: Bindings,
    rnode: NodeId,
    rbind: Bindings,
) -> Result<(NodeId, Bindings)> {
    let shared: Vec<String> = lbind
        .iter()
        .map(|(v, _)| v.clone())
        .filter(|v| position(&rbind, v).is_some())
        .collect();

    if shared.is_empty() {
        // No shared variables: cross product.
        let larity = plan.schema(lnode).arity();
        let node = plan
            .add_op(RaOp::Product, &[lnode, rnode])
            .map_err(DatalogError::from)?;
        let mut bindings = lbind;
        for (v, p) in rbind {
            if position(&bindings, &v).is_none() {
                bindings.push((v, larity + p));
            }
        }
        return Ok((node, bindings));
    }

    // Re-key both sides so the shared variables lead.
    let (lnode, lbind) = rekey(plan, lnode, lbind, &shared)?;
    let (rnode, rbind) = rekey(plan, rnode, rbind, &shared)?;
    let k = shared.len();
    let larity = plan.schema(lnode).arity();

    let node = plan
        .add_op(RaOp::Join { key_len: k }, &[lnode, rnode])
        .map_err(DatalogError::from)?;

    // Output layout: shared key, left non-key attrs, right non-key attrs.
    let mut bindings: Bindings = Vec::new();
    for (v, p) in &lbind {
        bindings.push((v.clone(), *p));
    }
    for (v, p) in &rbind {
        if position(&bindings, v).is_none() {
            bindings.push((v.clone(), larity + (p - k)));
        }
    }
    Ok((node, bindings))
}

/// Permute a relation (via SORT) so that `shared` variables become the
/// leading key, unless they already are.
fn rekey(
    plan: &mut QueryPlan,
    node: NodeId,
    bindings: Bindings,
    shared: &[String],
) -> Result<(NodeId, Bindings)> {
    let positions: Vec<usize> = shared
        .iter()
        .map(|v| {
            position(&bindings, v).ok_or_else(|| {
                DatalogError::semantic(format!("shared variable '{v}' is not bound on this side"))
            })
        })
        .collect::<Result<_>>()?;
    let schema = plan.schema(node);
    let already =
        positions.iter().enumerate().all(|(i, &p)| p == i) && schema.key_arity() >= positions.len();
    if already {
        return Ok((node, bindings));
    }
    let sorted = plan
        .add_op(
            RaOp::Sort {
                attrs: positions.clone(),
            },
            &[node],
        )
        .map_err(DatalogError::from)?;
    // New attribute order: `positions` first, then the rest in order.
    let arity = plan.schema(sorted).arity();
    let mut order: Vec<usize> = positions.clone();
    for a in 0..arity {
        if !order.contains(&a) {
            order.push(a);
        }
    }
    let new_bindings = bindings
        .into_iter()
        .map(|(v, old)| {
            let new = order.iter().position(|&o| o == old).ok_or_else(|| {
                DatalogError::semantic(format!(
                    "variable '{v}' lost its attribute while re-keying (position {old})"
                ))
            })?;
            Ok((v, new))
        })
        .collect::<Result<_>>()?;
    Ok((sorted, new_bindings))
}

fn compare_predicate(
    plan: &QueryPlan,
    node: NodeId,
    bindings: &Bindings,
    left: &Operand,
    op: CmpOp,
    right: &Operand,
) -> Result<Predicate> {
    let schema = plan.schema(node);
    let pos = |o: &Operand| -> Result<usize> {
        match o {
            Operand::Var(v) => position(bindings, v).ok_or_else(|| {
                DatalogError::semantic(format!("comparison uses unbound variable '{v}'"))
            }),
            Operand::Const(_) => Err(DatalogError::semantic(
                "constant operand where a variable was required",
            )),
        }
    };
    match (left, right) {
        (Operand::Var(_), Operand::Var(_)) => Ok(Predicate::cmp_attr(pos(left)?, op, pos(right)?)),
        (Operand::Var(_), Operand::Const(c)) => {
            let a = pos(left)?;
            Ok(Predicate::cmp(a, op, typed_const(*c, schema.attr(a))?))
        }
        (Operand::Const(c), Operand::Var(_)) => {
            let a = pos(right)?;
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            };
            Ok(Predicate::cmp(a, flipped, typed_const(*c, schema.attr(a))?))
        }
        (Operand::Const(_), Operand::Const(_)) => {
            Err(DatalogError::semantic("comparison between two constants"))
        }
    }
}

fn typed_const(c: ConstVal, ty: AttrType) -> Result<Value> {
    match (c, ty) {
        (ConstVal::Int(v), AttrType::U32) => u32::try_from(v)
            .map(Value::U32)
            .map_err(|_| DatalogError::semantic(format!("constant {v} does not fit u32"))),
        (ConstVal::Int(v), AttrType::U64) => Ok(Value::U64(v)),
        (ConstVal::Int(v), AttrType::F32) => Ok(Value::F32(v as f32)),
        (ConstVal::Int(v), AttrType::Bool) => Ok(Value::Bool(v != 0)),
        (ConstVal::Float(v), AttrType::F32) => Ok(Value::F32(v)),
        (ConstVal::Float(v), ty) => Err(DatalogError::semantic(format!(
            "float constant {v} used where {ty} expected"
        ))),
    }
}

fn arith_to_expr(ast: &ArithAst, bindings: &Bindings) -> Result<Expr> {
    Ok(match ast {
        ArithAst::Var(v) => Expr::attr(position(bindings, v).ok_or_else(|| {
            DatalogError::semantic(format!("expression uses unbound variable '{v}'"))
        })?),
        ArithAst::Const(ConstVal::Int(v)) => {
            if let Ok(small) = u32::try_from(*v) {
                Expr::lit(small)
            } else {
                Expr::lit(*v)
            }
        }
        ArithAst::Const(ConstVal::Float(v)) => Expr::lit(*v),
        ArithAst::Add(a, b) => arith_to_expr(a, bindings)?.add(arith_to_expr(b, bindings)?),
        ArithAst::Sub(a, b) => arith_to_expr(a, bindings)?.sub(arith_to_expr(b, bindings)?),
        ArithAst::Mul(a, b) => arith_to_expr(a, bindings)?.mul(arith_to_expr(b, bindings)?),
        ArithAst::Div(a, b) => arith_to_expr(a, bindings)?.div(arith_to_expr(b, bindings)?),
    })
}
