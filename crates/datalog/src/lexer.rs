//! Lexer for the Datalog surface syntax.

use crate::{DatalogError, Result, Spanned, Token};

/// Tokenize `src`.
///
/// `%` starts a line comment. Identifiers starting with a lower-case letter
/// are relation names/directives; upper-case are variables; `_` is the
/// wildcard.
///
/// # Errors
///
/// Returns [`DatalogError::Lex`] on unexpected characters or malformed
/// numbers.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '%' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => push(&mut out, Token::LParen, line, &mut chars),
            ')' => push(&mut out, Token::RParen, line, &mut chars),
            ',' => push(&mut out, Token::Comma, line, &mut chars),
            '+' => push(&mut out, Token::Plus, line, &mut chars),
            '-' => push(&mut out, Token::Minus, line, &mut chars),
            '*' => push(&mut out, Token::Star, line, &mut chars),
            '/' => push(&mut out, Token::Slash, line, &mut chars),
            '_' => push(&mut out, Token::Wildcard, line, &mut chars),
            '.' => push(&mut out, Token::Dot, line, &mut chars),
            ':' => {
                chars.next();
                if chars.next() != Some('-') {
                    return Err(DatalogError::Lex {
                        line,
                        detail: "expected ':-'".into(),
                    });
                }
                out.push(Spanned {
                    token: Token::Turnstile,
                    line,
                });
            }
            '<' => {
                chars.next();
                let t = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Le
                } else {
                    Token::Lt
                };
                out.push(Spanned { token: t, line });
            }
            '>' => {
                chars.next();
                let t = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Ge
                } else {
                    Token::Gt
                };
                out.push(Spanned { token: t, line });
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                }
                out.push(Spanned {
                    token: Token::EqEq,
                    line,
                });
            }
            '!' => {
                chars.next();
                let t = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Ne
                } else {
                    Token::Bang
                };
                out.push(Spanned { token: t, line });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        chars.next();
                    } else if d == '.' {
                        // Lookahead: `1.` followed by a digit is a float;
                        // otherwise the dot terminates the clause.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(char::is_ascii_digit) {
                            is_float = true;
                            text.push('.');
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| DatalogError::Lex {
                        line,
                        detail: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| DatalogError::Lex {
                        line,
                        detail: format!("bad integer literal '{text}'"),
                    })?)
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_alphabetic() => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let token = if text.chars().next().is_some_and(char::is_uppercase) {
                    Token::Variable(text)
                } else {
                    Token::Ident(text)
                };
                out.push(Spanned { token, line });
            }
            other => {
                return Err(DatalogError::Lex {
                    line,
                    detail: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    out.push(Spanned {
        token: Token::End,
        line,
    });
    Ok(out)
}

fn push(
    out: &mut Vec<Spanned>,
    token: Token,
    line: usize,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) {
    chars.next();
    out.push(Spanned { token, line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_rule() {
        let t = tokens("r(K, V) :- t(K, V), V < 10.");
        assert!(t.contains(&Token::Turnstile));
        assert!(t.contains(&Token::Variable("K".into())));
        assert!(t.contains(&Token::Ident("t".into())));
        assert!(t.contains(&Token::Lt));
        assert!(t.contains(&Token::Int(10)));
        assert_eq!(t.last(), Some(&Token::End));
    }

    #[test]
    fn float_vs_clause_dot() {
        let t = tokens("x(1.5). y(2).");
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::Int(2)));
        assert_eq!(t.iter().filter(|x| **x == Token::Dot).count(), 2);
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let s = lex("% comment\nr(K) :- t(K).\n% more\n").unwrap();
        assert_eq!(s[0].line, 2);
    }

    #[test]
    fn comparison_operators() {
        let t = tokens("A <= B >= C != D == E");
        assert_eq!(
            t[..9],
            [
                Token::Variable("A".into()),
                Token::Le,
                Token::Variable("B".into()),
                Token::Ge,
                Token::Variable("C".into()),
                Token::Ne,
                Token::Variable("D".into()),
                Token::EqEq,
                Token::Variable("E".into()),
            ]
        );
    }

    #[test]
    fn bad_character_reported_with_line() {
        let err = lex("r(K).\n#").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
