//! The kernel cost model.
//!
//! A kernel's cost is assembled from the quantities the interpreter
//! accumulates while executing it: bytes moved at each level of the memory
//! hierarchy, ALU operations and barriers. Costs are charged in core cycles:
//!
//! * global traffic is bandwidth-limited, degraded when occupancy is too low
//!   to hide DRAM latency (below
//!   [`crate::DeviceConfig::bandwidth_saturation_occupancy`]) and when the
//!   grid is too small to fill the device;
//! * shared-memory traffic uses the on-chip bandwidth
//!   ([`crate::DeviceConfig::shared_bandwidth_ratio`] × global);
//! * register traffic is free (it is the baseline the others are relative
//!   to), which is exactly why fusing thread-dependent operators wins;
//! * every kernel pays a fixed launch overhead, every CTA-wide barrier a
//!   fixed synchronization cost.

use crate::{occupancy, DeviceConfig, Occupancy};

/// Launch geometry of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDims {
    /// Number of CTAs in the grid.
    pub grid_ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
}

impl LaunchDims {
    /// Convenience constructor.
    pub fn new(grid_ctas: u32, threads_per_cta: u32) -> LaunchDims {
        LaunchDims {
            grid_ctas,
            threads_per_cta,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_ctas) * u64::from(self.threads_per_cta)
    }
}

/// Per-thread/per-CTA resource demands of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelResources {
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Shared memory per CTA, bytes.
    pub shared_per_cta: u32,
}

/// Work quantities accumulated while executing a kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelQuantities {
    /// Bytes read from global memory.
    pub global_bytes_read: u64,
    /// Bytes written to global memory.
    pub global_bytes_written: u64,
    /// Bytes read from shared memory.
    pub shared_bytes_read: u64,
    /// Bytes written to shared memory.
    pub shared_bytes_written: u64,
    /// ALU operations.
    pub alu_ops: u64,
    /// CTA-wide barriers (counted once per CTA per barrier statement).
    pub barriers: u64,
}

impl KernelQuantities {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &KernelQuantities) {
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.shared_bytes_read += other.shared_bytes_read;
        self.shared_bytes_written += other.shared_bytes_written;
        self.alu_ops += other.alu_ops;
        self.barriers += other.barriers;
    }
}

/// Cycle breakdown of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Launch overhead cycles.
    pub launch_cycles: u64,
    /// Global-memory access cycles.
    pub global_cycles: u64,
    /// Shared-memory access cycles.
    pub shared_cycles: u64,
    /// ALU cycles.
    pub alu_cycles: u64,
    /// Barrier cycles.
    pub barrier_cycles: u64,
    /// Occupancy achieved by this kernel.
    pub occupancy: Occupancy,
}

impl KernelCost {
    /// Total cycles for the kernel.
    pub fn total_cycles(&self) -> u64 {
        self.launch_cycles
            + self.global_cycles
            + self.shared_cycles
            + self.alu_cycles
            + self.barrier_cycles
    }
}

/// Compute the cost of a kernel execution.
///
/// Returns `None` when the resource demands fit no CTA on an SM (the caller
/// converts that into [`crate::SimError::InfeasibleLaunch`]).
pub fn kernel_cost(
    cfg: &DeviceConfig,
    dims: LaunchDims,
    res: KernelResources,
    q: &KernelQuantities,
) -> Option<KernelCost> {
    let occ = occupancy(
        cfg,
        dims.threads_per_cta,
        res.registers_per_thread,
        res.shared_per_cta,
    );
    if occ.ctas_per_sm == 0 {
        return None;
    }

    // Bandwidth degradation: low occupancy fails to hide DRAM latency.
    let bw_factor = (occ.occupancy / cfg.bandwidth_saturation_occupancy).min(1.0);
    // Grid under-utilization: a grid smaller than one full wave cannot use
    // every SM.
    let resident_ctas = u64::from(cfg.sm_count) * u64::from(occ.ctas_per_sm);
    let util = (dims.grid_ctas as f64 / resident_ctas as f64).min(1.0);
    let mem_derate = (bw_factor * util).max(1e-3);

    let global_bytes = (q.global_bytes_read + q.global_bytes_written) as f64;
    let global_cycles = (global_bytes / cfg.global_bytes_per_cycle() / mem_derate).round() as u64;

    let shared_bytes = (q.shared_bytes_read + q.shared_bytes_written) as f64;
    let shared_cycles =
        (shared_bytes / cfg.shared_bytes_per_cycle() / util.max(1e-3)).round() as u64;

    let alu_cycles = (q.alu_ops as f64 / cfg.alu_ops_per_cycle / util.max(1e-3)).round() as u64;

    let barrier_cycles = q.barriers * cfg.barrier_cycles;

    Some(KernelCost {
        launch_cycles: cfg.kernel_launch_cycles,
        global_cycles,
        shared_cycles,
        alu_cycles,
        barrier_cycles,
        occupancy: occ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050()
    }

    fn big_dims() -> LaunchDims {
        LaunchDims::new(4096, 256)
    }

    fn light_res() -> KernelResources {
        KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 2048,
        }
    }

    #[test]
    fn global_traffic_dominates_ra_kernels() {
        let q = KernelQuantities {
            global_bytes_read: 64 << 20,
            global_bytes_written: 32 << 20,
            alu_ops: 4 << 20,
            ..KernelQuantities::default()
        };
        let c = kernel_cost(&cfg(), big_dims(), light_res(), &q).unwrap();
        assert!(c.global_cycles > 10 * c.alu_cycles);
        assert!(c.total_cycles() > c.global_cycles);
    }

    #[test]
    fn cost_scales_linearly_with_bytes() {
        let q1 = KernelQuantities {
            global_bytes_read: 1 << 20,
            ..KernelQuantities::default()
        };
        let q2 = KernelQuantities {
            global_bytes_read: 2 << 20,
            ..KernelQuantities::default()
        };
        let c1 = kernel_cost(&cfg(), big_dims(), light_res(), &q1).unwrap();
        let c2 = kernel_cost(&cfg(), big_dims(), light_res(), &q2).unwrap();
        assert!((c2.global_cycles as f64 / c1.global_cycles as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn low_occupancy_raises_global_cost() {
        let q = KernelQuantities {
            global_bytes_read: 16 << 20,
            ..KernelQuantities::default()
        };
        let heavy = KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 26 << 10, // 1 CTA/SM -> 8 warps of 48
        };
        let c_light = kernel_cost(&cfg(), big_dims(), light_res(), &q).unwrap();
        let c_heavy = kernel_cost(&cfg(), big_dims(), heavy, &q).unwrap();
        assert!(c_heavy.global_cycles > c_light.global_cycles);
    }

    #[test]
    fn shared_is_cheaper_than_global() {
        let qg = KernelQuantities {
            global_bytes_read: 8 << 20,
            ..KernelQuantities::default()
        };
        let qs = KernelQuantities {
            shared_bytes_read: 8 << 20,
            ..KernelQuantities::default()
        };
        let cg = kernel_cost(&cfg(), big_dims(), light_res(), &qg).unwrap();
        let cs = kernel_cost(&cfg(), big_dims(), light_res(), &qs).unwrap();
        assert!(cg.global_cycles > 4 * cs.shared_cycles);
    }

    #[test]
    fn infeasible_returns_none() {
        let res = KernelResources {
            registers_per_thread: 64,
            shared_per_cta: 0,
        };
        assert!(kernel_cost(&cfg(), big_dims(), res, &KernelQuantities::default()).is_none());
    }

    #[test]
    fn small_grid_underutilizes() {
        let q = KernelQuantities {
            global_bytes_read: 16 << 20,
            ..KernelQuantities::default()
        };
        let small = LaunchDims::new(4, 256);
        let cs = kernel_cost(&cfg(), small, light_res(), &q).unwrap();
        let cb = kernel_cost(&cfg(), big_dims(), light_res(), &q).unwrap();
        assert!(cs.global_cycles > cb.global_cycles);
    }

    #[test]
    fn barriers_cost() {
        let q = KernelQuantities {
            barriers: 100,
            ..KernelQuantities::default()
        };
        let c = kernel_cost(&cfg(), big_dims(), light_res(), &q).unwrap();
        assert_eq!(c.barrier_cycles, 100 * cfg().barrier_cycles);
    }
}
