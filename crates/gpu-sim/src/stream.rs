//! Device-level streams, events and copy/compute engines.
//!
//! The paper's §VII observes that overlapping PCIe transfers with
//! computation is the technique kernel fusion composes with: fusion shrinks
//! the compute and traffic volumes, double buffering hides what traffic
//! remains behind the kernels. Before this module existed the repo modelled
//! overlap with a closed-form makespan recurrence computed *outside* the
//! device clock; this module replaces that with the mechanism real CUDA
//! runtimes expose — streams whose operations execute in issue order,
//! dedicated copy engines per PCIe direction, and events carrying
//! happens-before edges between streams.
//!
//! The model is deliberately minimal and deterministic:
//!
//! * every operation occupies exactly one [`Engine`] for a closed cycle
//!   interval; operations on the same engine serialize in issue order
//!   (Fermi's copy queues and kernel dispatcher are FIFO);
//! * an operation starts at the latest of: its stream's ready cycle, its
//!   engine's free cycle, and the issue-time floor its caller supplies
//!   (the [`Device`](crate::Device) passes its serial trace clock, so
//!   streamed work never pretends to predate the work that enqueued it);
//! * [`StreamModel::makespan`] is the maximum end cycle over all scheduled
//!   operations — the wallclock of the whole event graph on the same
//!   unified cycle clock the serial trace uses.
//!
//! # Examples
//!
//! A two-chunk upload/compute/download pipeline on one compute engine:
//!
//! ```
//! use kw_gpu_sim::{Engine, StreamModel};
//!
//! let mut m = StreamModel::new(1);
//! for chunk in 0..2u64 {
//!     let s = m.create_stream();
//!     m.schedule(s, Engine::CopyH2D, "h2d", 10, 0).unwrap();
//!     m.schedule(s, m.compute_engine(s), "compute", 30, 0).unwrap();
//!     m.schedule(s, Engine::CopyD2H, "d2h", 10, 0).unwrap();
//! }
//! // Chunk 1's upload hides behind chunk 0's compute: 10 + 30 + 30 + 10.
//! assert_eq!(m.makespan(), 80);
//! // Serialized, the same work would cost 2 * (10 + 30 + 10) = 100.
//! ```

use crate::{Result, SimError};
use std::collections::BTreeMap;

/// Handle to a stream created by [`StreamModel::create_stream`] (or
/// [`Device::create_stream`](crate::Device::create_stream)).
///
/// Operations issued to the same stream execute in issue order; operations
/// in different streams may overlap when they occupy different engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(u32);

impl StreamId {
    /// Stable index of this stream (creation order, starting at 0).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Handle to an event recorded by [`StreamModel::record_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u32);

/// The hardware unit a streamed operation occupies.
///
/// Mirrors a discrete Fermi-class card: one kernel dispatcher per compute
/// engine and one DMA engine per PCIe direction, so an upload, a kernel and
/// a download can be in flight simultaneously, but two uploads cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Engine {
    /// A compute engine (kernel execution). Fermi exposes one; configs may
    /// model more via [`DeviceConfig::compute_engines`](crate::DeviceConfig::compute_engines).
    Compute(u32),
    /// The dedicated host-to-device DMA engine.
    CopyH2D,
    /// The dedicated device-to-host DMA engine.
    CopyD2H,
}

impl Engine {
    /// Short human-readable name (used in trace labels and tables).
    pub fn name(&self) -> String {
        match self {
            Engine::Compute(i) => format!("compute{i}"),
            Engine::CopyH2D => "copy.h2d".to_string(),
            Engine::CopyD2H => "copy.d2h".to_string(),
        }
    }
}

/// One operation scheduled on the stream/event graph: a closed cycle
/// interval on a single engine, issued by a single stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOp {
    /// The stream that issued the operation.
    pub stream: StreamId,
    /// The engine the operation occupied.
    pub engine: Engine,
    /// Caller-supplied label (matches the trace span label).
    pub label: String,
    /// Cycle at which the engine started the operation.
    pub start_cycle: u64,
    /// Cycle at which the engine finished (`start_cycle + duration`).
    pub end_cycle: u64,
}

impl StreamOp {
    /// Duration of the operation in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Deterministic scheduler for streams, events and engines.
///
/// Owned by [`Device`](crate::Device), but usable standalone (the property
/// tests drive it directly against the analytical pipeline-makespan oracle).
#[derive(Debug, Clone, Default)]
pub struct StreamModel {
    /// Number of compute engines (≥ 1 treated as 1 when 0).
    compute_engines: u32,
    /// Per-stream ready cycle: the end of the last operation issued to the
    /// stream, raised further by [`StreamModel::wait_event`].
    stream_ready: Vec<u64>,
    /// Per-event completion cycle captured at record time.
    events: Vec<u64>,
    /// Cycle at which each engine finishes its last accepted operation.
    engine_free: BTreeMap<Engine, u64>,
    /// Every scheduled operation, in issue order.
    ops: Vec<StreamOp>,
}

impl StreamModel {
    /// Create a model with `compute_engines` kernel engines (0 acts as 1).
    pub fn new(compute_engines: u32) -> StreamModel {
        StreamModel {
            compute_engines: compute_engines.max(1),
            ..StreamModel::default()
        }
    }

    /// Create a new stream, initially ready at cycle 0.
    pub fn create_stream(&mut self) -> StreamId {
        self.stream_ready.push(0);
        StreamId(self.stream_ready.len() as u32 - 1)
    }

    /// The compute engine kernels from `stream` run on. Streams are spread
    /// round-robin over the configured engines, so with one engine (Fermi)
    /// all kernels serialize and with N engines up to N kernels overlap.
    pub fn compute_engine(&self, stream: StreamId) -> Engine {
        Engine::Compute(stream.0 % self.compute_engines.max(1))
    }

    /// Check that `stream` belongs to this model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for an unknown stream id.
    pub fn validate(&self, stream: StreamId) -> Result<()> {
        self.check_stream(stream).map(|_| ())
    }

    fn check_stream(&self, stream: StreamId) -> Result<usize> {
        let idx = stream.0 as usize;
        if idx >= self.stream_ready.len() {
            return Err(SimError::InvalidStream {
                detail: format!(
                    "unknown stream id {} ({} exist)",
                    stream.0,
                    self.stream_ready.len()
                ),
            });
        }
        Ok(idx)
    }

    /// Schedule an operation of `duration_cycles` from `stream` on
    /// `engine`, starting no earlier than `not_before` (the caller's issue
    /// clock). Returns the scheduled `(start, end)` cycle interval.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for an unknown stream id or an
    /// out-of-range compute engine.
    pub fn schedule(
        &mut self,
        stream: StreamId,
        engine: Engine,
        label: impl Into<String>,
        duration_cycles: u64,
        not_before: u64,
    ) -> Result<(u64, u64)> {
        let idx = self.check_stream(stream)?;
        if let Engine::Compute(i) = engine {
            if i >= self.compute_engines.max(1) {
                return Err(SimError::InvalidStream {
                    detail: format!(
                        "compute engine {i} out of range ({} configured)",
                        self.compute_engines.max(1)
                    ),
                });
            }
        }
        let start = self.stream_ready[idx]
            .max(self.engine_free.get(&engine).copied().unwrap_or(0))
            .max(not_before);
        let end = start.saturating_add(duration_cycles);
        self.stream_ready[idx] = end;
        self.engine_free.insert(engine, end);
        self.ops.push(StreamOp {
            stream,
            engine,
            label: label.into(),
            start_cycle: start,
            end_cycle: end,
        });
        Ok((start, end))
    }

    /// Record an event capturing `stream`'s current ready cycle. Waiting on
    /// the event (from any stream) establishes a happens-before edge from
    /// everything issued to `stream` so far.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for an unknown stream id.
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId> {
        let idx = self.check_stream(stream)?;
        self.events.push(self.stream_ready[idx]);
        Ok(EventId(self.events.len() as u32 - 1))
    }

    /// Make `stream`'s next operation wait for `event`: its ready cycle is
    /// raised to the event's recorded completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for an unknown stream or event.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<()> {
        let idx = self.check_stream(stream)?;
        let at = self.event_cycle(event)?;
        self.stream_ready[idx] = self.stream_ready[idx].max(at);
        Ok(())
    }

    /// The completion cycle `event` captured at record time — the cycle at
    /// which everything issued to its stream before the record has finished.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for an unknown event id.
    pub fn event_cycle(&self, event: EventId) -> Result<u64> {
        self.events
            .get(event.0 as usize)
            .copied()
            .ok_or_else(|| SimError::InvalidStream {
                detail: format!("unknown event id {} ({} exist)", event.0, self.events.len()),
            })
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.stream_ready.len()
    }

    /// The cycle at which every scheduled operation has finished (0 when
    /// nothing was scheduled) — the event graph's wallclock.
    pub fn makespan(&self) -> u64 {
        self.ops.iter().map(|op| op.end_cycle).max().unwrap_or(0)
    }

    /// Busy cycles per engine (sum of operation durations; engines are
    /// FIFO, so intervals on one engine never overlap).
    pub fn engine_busy(&self) -> BTreeMap<Engine, u64> {
        let mut busy = BTreeMap::new();
        for op in &self.ops {
            *busy.entry(op.engine).or_insert(0u64) += op.duration();
        }
        busy
    }

    /// Every scheduled operation, in issue order.
    pub fn ops(&self) -> &[StreamOp] {
        &self.ops
    }

    /// Forget all streams, events and scheduled operations (configuration
    /// survives).
    pub fn reset(&mut self) {
        self.stream_ready.clear();
        self.events.clear();
        self.engine_free.clear();
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The closed-form 3-stage pipeline recurrence (the retired overlap
    /// formula, kept in `kw-core` as a public test oracle) in cycles.
    fn pipeline_oracle(chunks: &[(u64, u64, u64)]) -> u64 {
        let (mut up, mut mid, mut down) = (0u64, 0u64, 0u64);
        for &(h2d, compute, d2h) in chunks {
            up += h2d;
            mid = mid.max(up) + compute;
            down = down.max(mid) + d2h;
        }
        down
    }

    fn run_pipeline(m: &mut StreamModel, chunks: &[(u64, u64, u64)]) {
        for &(h2d, compute, d2h) in chunks {
            let s = m.create_stream();
            m.schedule(s, Engine::CopyH2D, "h2d", h2d, 0).unwrap();
            m.schedule(s, m.compute_engine(s), "compute", compute, 0)
                .unwrap();
            m.schedule(s, Engine::CopyD2H, "d2h", d2h, 0).unwrap();
        }
    }

    #[test]
    fn empty_model_has_zero_makespan() {
        let m = StreamModel::new(1);
        assert_eq!(m.makespan(), 0);
        assert!(m.engine_busy().is_empty());
    }

    #[test]
    fn single_stream_serializes() {
        let mut m = StreamModel::new(4);
        let s = m.create_stream();
        let e = m.compute_engine(s);
        m.schedule(s, e, "a", 10, 0).unwrap();
        m.schedule(s, e, "b", 5, 0).unwrap();
        let ops = m.ops();
        assert_eq!((ops[0].start_cycle, ops[0].end_cycle), (0, 10));
        assert_eq!((ops[1].start_cycle, ops[1].end_cycle), (10, 15));
        assert_eq!(m.makespan(), 15);
    }

    #[test]
    fn one_compute_engine_serializes_kernels_across_streams() {
        let mut m = StreamModel::new(1);
        let a = m.create_stream();
        let b = m.create_stream();
        m.schedule(a, m.compute_engine(a), "ka", 10, 0).unwrap();
        m.schedule(b, m.compute_engine(b), "kb", 10, 0).unwrap();
        assert_eq!(m.makespan(), 20, "one kernel dispatcher is FIFO");
        let mut m2 = StreamModel::new(2);
        let a = m2.create_stream();
        let b = m2.create_stream();
        m2.schedule(a, m2.compute_engine(a), "ka", 10, 0).unwrap();
        m2.schedule(b, m2.compute_engine(b), "kb", 10, 0).unwrap();
        assert_eq!(m2.makespan(), 10, "two engines overlap kernels");
    }

    #[test]
    fn copy_engines_overlap_compute() {
        let mut m = StreamModel::new(1);
        let a = m.create_stream();
        let b = m.create_stream();
        m.schedule(a, m.compute_engine(a), "k", 100, 0).unwrap();
        let (s, e) = m.schedule(b, Engine::CopyH2D, "up", 40, 0).unwrap();
        assert_eq!((s, e), (0, 40), "upload runs under the kernel");
        assert_eq!(m.makespan(), 100);
    }

    #[test]
    fn events_carry_happens_before_edges() {
        let mut m = StreamModel::new(2);
        let producer = m.create_stream();
        let consumer = m.create_stream();
        m.schedule(producer, Engine::CopyH2D, "up", 50, 0).unwrap();
        let ev = m.record_event(producer).unwrap();
        // Without the wait the consumer's kernel (own engine) would start at 0.
        m.wait_event(consumer, ev).unwrap();
        let (start, _) = m
            .schedule(consumer, m.compute_engine(consumer), "k", 10, 0)
            .unwrap();
        assert_eq!(start, 50, "kernel must wait for the producer's upload");
    }

    #[test]
    fn not_before_floors_the_start() {
        let mut m = StreamModel::new(1);
        let s = m.create_stream();
        let (start, end) = m.schedule(s, Engine::CopyH2D, "up", 10, 1000).unwrap();
        assert_eq!((start, end), (1000, 1010));
    }

    #[test]
    fn invalid_ids_are_rejected() {
        let mut m = StreamModel::new(1);
        let s = m.create_stream();
        let bogus = StreamId(7);
        assert!(matches!(
            m.schedule(bogus, Engine::CopyH2D, "x", 1, 0),
            Err(SimError::InvalidStream { .. })
        ));
        assert!(matches!(
            m.schedule(s, Engine::Compute(3), "x", 1, 0),
            Err(SimError::InvalidStream { .. })
        ));
        assert!(matches!(
            m.record_event(bogus),
            Err(SimError::InvalidStream { .. })
        ));
        assert!(matches!(
            m.wait_event(s, EventId(9)),
            Err(SimError::InvalidStream { .. })
        ));
    }

    #[test]
    fn pipeline_matches_closed_form_oracle() {
        let cases: Vec<Vec<(u64, u64, u64)>> = vec![
            vec![(1, 2, 1)],
            vec![(1, 2, 1), (1, 2, 1)],
            vec![(10, 30, 10), (10, 30, 10), (10, 30, 10)],
            vec![(100, 1, 1), (100, 1, 1), (1, 500, 1)],
            vec![(0, 7, 0), (3, 0, 3), (5, 5, 5)],
        ];
        for chunks in cases {
            let mut m = StreamModel::new(1);
            run_pipeline(&mut m, &chunks);
            assert_eq!(
                m.makespan(),
                pipeline_oracle(&chunks),
                "stream schedule diverged from the pipeline recurrence on {chunks:?}"
            );
        }
    }

    #[test]
    fn makespan_bounds() {
        let chunks = vec![(10, 30, 10), (20, 5, 40), (1, 60, 2)];
        let mut m = StreamModel::new(1);
        run_pipeline(&mut m, &chunks);
        let serialized: u64 = chunks.iter().map(|(a, b, c)| a + b + c).sum();
        let busiest = m.engine_busy().values().copied().max().unwrap();
        assert!(m.makespan() <= serialized);
        assert!(m.makespan() >= busiest);
    }

    #[test]
    fn reset_clears_schedule() {
        let mut m = StreamModel::new(1);
        let s = m.create_stream();
        m.schedule(s, Engine::CopyH2D, "x", 10, 0).unwrap();
        m.reset();
        assert_eq!(m.makespan(), 0);
        assert!(m.ops().is_empty());
        // Old handles are invalid after reset.
        assert!(m.schedule(s, Engine::CopyH2D, "x", 1, 0).is_err());
    }

    #[test]
    fn engine_names() {
        assert_eq!(Engine::Compute(0).name(), "compute0");
        assert_eq!(Engine::CopyH2D.name(), "copy.h2d");
        assert_eq!(Engine::CopyD2H.name(), "copy.d2h");
    }
}
