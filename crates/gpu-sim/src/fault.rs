//! Deterministic fault injection.
//!
//! Real GPU query engines must survive transient device failures: a PCIe
//! transfer that times out, a kernel launch the driver rejects, an allocation
//! that fails under momentary pressure. The simulator models these as
//! injectable faults so the resilience layer in `kw-core` can be exercised
//! deterministically: every decision is driven by a seeded splitmix64 stream
//! (plus an optional explicit schedule), so a given
//! `(seed, rates, operation sequence)` always produces the same fault
//! pattern — retries are reproducible by construction.

/// The class of device operation a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A PCIe transfer failed mid-flight.
    Transfer,
    /// A kernel launch was rejected by the (simulated) driver.
    Launch,
    /// A device allocation failed transiently (not a capacity miss).
    Alloc,
}

impl FaultKind {
    /// All fault kinds, in a stable order.
    pub const ALL: [FaultKind; 3] = [FaultKind::Transfer, FaultKind::Launch, FaultKind::Alloc];

    fn index(self) -> usize {
        match self {
            FaultKind::Transfer => 0,
            FaultKind::Launch => 1,
            FaultKind::Alloc => 2,
        }
    }

    /// Stable lowercase name, used in timeline events and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transfer => "transfer",
            FaultKind::Launch => "launch",
            FaultKind::Alloc => "alloc",
        }
    }
}

/// Fire a fault on one specific attempt of one operation kind.
///
/// `attempt` is a zero-based per-kind counter: `{ kind: Transfer, attempt: 0 }`
/// fails the first transfer the device performs, whether or not random rates
/// are also configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Which operation kind to strike.
    pub kind: FaultKind,
    /// Zero-based index among operations of that kind.
    pub attempt: u64,
}

/// Configuration for a [`FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the random stream. Two devices configured with the same seed
    /// and rates inject identical fault patterns for identical op sequences.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given PCIe transfer faults.
    pub transfer_rate: f64,
    /// Probability in `[0, 1]` that any given kernel launch faults.
    pub launch_rate: f64,
    /// Probability in `[0, 1]` that any given allocation faults.
    pub alloc_rate: f64,
    /// Faults fired at exact per-kind attempt indices, independent of rates.
    pub script: Vec<ScriptedFault>,
}

impl FaultConfig {
    /// The same fault probability for transfers, launches and allocations.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            transfer_rate: rate,
            launch_rate: rate,
            alloc_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// Purely scripted faults: nothing random, only the listed attempts fail.
    pub fn scripted(script: Vec<ScriptedFault>) -> FaultConfig {
        FaultConfig {
            script,
            ..FaultConfig::default()
        }
    }

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Transfer => self.transfer_rate,
            FaultKind::Launch => self.launch_rate,
            FaultKind::Alloc => self.alloc_rate,
        }
    }
}

/// Decides, operation by operation, whether to inject a fault.
///
/// Owned by a [`crate::Device`] once installed via
/// [`crate::Device::inject_faults`]. Scratch devices spawned during chunked
/// execution call [`FaultInjector::split`] to obtain an independent but still
/// deterministic stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    state: u64,
    attempts: [u64; 3],
    injected: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector from its configuration.
    pub fn new(config: FaultConfig) -> FaultInjector {
        let state = config.seed;
        FaultInjector {
            config,
            state,
            attempts: [0; 3],
            injected: 0,
        }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Per-kind operation attempts observed so far.
    pub fn attempts(&self, kind: FaultKind) -> u64 {
        self.attempts[kind.index()]
    }

    /// Should the next operation of `kind` fault? Advances the per-kind
    /// attempt counter and (when a rate is configured) the random stream.
    pub fn should_fault(&mut self, kind: FaultKind) -> bool {
        let attempt = self.attempts[kind.index()];
        self.attempts[kind.index()] += 1;

        let scripted = self
            .config
            .script
            .iter()
            .any(|s| s.kind == kind && s.attempt == attempt);

        let rate = self.config.rate(kind);
        // Kinds with a zero rate consume no draws, so purely scripted configs
        // keep the stream untouched.
        let random = if rate > 0.0 {
            let unit = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
            unit < rate
        } else {
            false
        };

        let fired = scripted || random;
        if fired {
            self.injected += 1;
        }
        fired
    }

    /// Derive an independent injector for a scratch device: same rates, a
    /// distinct deterministic stream, and no scripted faults (the script is
    /// positional against the parent device's own operation sequence).
    pub fn split(&mut self) -> FaultInjector {
        let child_seed = splitmix64(&mut self.state);
        FaultInjector::new(FaultConfig {
            seed: child_seed,
            script: Vec::new(),
            ..self.config.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(42, 0.0));
        for _ in 0..1000 {
            for kind in FaultKind::ALL {
                assert!(!inj.should_fault(kind));
            }
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn full_rate_always_faults() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(42, 1.0));
        for _ in 0..100 {
            assert!(inj.should_fault(FaultKind::Transfer));
        }
        assert_eq!(inj.injected(), 100);
    }

    #[test]
    fn rate_is_respected_statistically() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(7, 0.2));
        let hits = (0..10_000)
            .filter(|_| inj.should_fault(FaultKind::Launch))
            .count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
    }

    #[test]
    fn same_seed_same_pattern() {
        let mut a = FaultInjector::new(FaultConfig::uniform(9, 0.3));
        let mut b = FaultInjector::new(FaultConfig::uniform(9, 0.3));
        for _ in 0..500 {
            let kind = FaultKind::ALL[(a.attempts(FaultKind::Transfer) % 3) as usize];
            assert_eq!(a.should_fault(kind), b.should_fault(kind));
        }
    }

    #[test]
    fn script_fires_on_exact_attempt() {
        let mut inj = FaultInjector::new(FaultConfig::scripted(vec![
            ScriptedFault {
                kind: FaultKind::Transfer,
                attempt: 1,
            },
            ScriptedFault {
                kind: FaultKind::Launch,
                attempt: 0,
            },
        ]));
        assert!(!inj.should_fault(FaultKind::Transfer)); // attempt 0
        assert!(inj.should_fault(FaultKind::Transfer)); // attempt 1
        assert!(!inj.should_fault(FaultKind::Transfer)); // attempt 2
        assert!(inj.should_fault(FaultKind::Launch)); // attempt 0
        assert!(!inj.should_fault(FaultKind::Alloc));
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = FaultInjector::new(FaultConfig::uniform(11, 0.5));
        let mut b = FaultInjector::new(FaultConfig::uniform(11, 0.5));
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..100 {
            assert_eq!(
                ca.should_fault(FaultKind::Alloc),
                cb.should_fault(FaultKind::Alloc)
            );
        }
        // The child carries the rates but not the script.
        let mut parent = FaultInjector::new(FaultConfig {
            script: vec![ScriptedFault {
                kind: FaultKind::Transfer,
                attempt: 0,
            }],
            ..FaultConfig::default()
        });
        let mut child = parent.split();
        assert!(!child.should_fault(FaultKind::Transfer));
        assert!(parent.should_fault(FaultKind::Transfer));
    }
}
