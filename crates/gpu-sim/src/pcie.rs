//! PCIe transfer model.
//!
//! The paper's Figure 1 motivates kernel fusion with the order-of-magnitude
//! bandwidth gap between GPU DRAM and the PCIe link to host memory. The
//! model is latency + bytes/bandwidth per transfer.

use crate::DeviceConfig;

/// Direction of a PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
}

/// Time in seconds to move `bytes` over PCIe under `cfg`.
///
/// # Examples
///
/// ```
/// use kw_gpu_sim::{pcie_seconds, DeviceConfig};
/// let cfg = DeviceConfig::fermi_c2050();
/// let t = pcie_seconds(&cfg, 8_000_000_000);
/// assert!((t - 1.0).abs() < 0.01); // ~1 s at 8 GB/s
/// ```
pub fn pcie_seconds(cfg: &DeviceConfig, bytes: u64) -> f64 {
    cfg.pcie_latency_us * 1e-6 + bytes as f64 / (cfg.pcie_bandwidth_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor() {
        let cfg = DeviceConfig::fermi_c2050();
        let t = pcie_seconds(&cfg, 0);
        assert!((t - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_term() {
        let cfg = DeviceConfig::fermi_c2050();
        let t1 = pcie_seconds(&cfg, 1 << 30);
        let t2 = pcie_seconds(&cfg, 2 << 30);
        assert!(t2 > t1 * 1.9);
    }

    #[test]
    fn pcie_much_slower_than_dram() {
        let cfg = DeviceConfig::fermi_c2050();
        // Per-byte PCIe cost should exceed per-byte global-memory cost by
        // an order of magnitude (the Fig. 1 motivation).
        let pcie_per_byte = 1.0 / (cfg.pcie_bandwidth_gbs * 1e9);
        let dram_per_byte = 1.0 / (cfg.global_bandwidth_gbs * 1e9);
        assert!(pcie_per_byte > 10.0 * dram_per_byte);
    }
}
