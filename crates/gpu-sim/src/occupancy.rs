//! The occupancy calculator.
//!
//! Mirrors NVIDIA's `CUDA_Occupancy_calculator` for Fermi, which the paper
//! uses to produce Table 3: given a kernel's threads/CTA, registers/thread
//! and shared memory/CTA, compute how many CTAs fit on one SM and what
//! fraction of the maximum resident warps stays active.

use crate::DeviceConfig;

/// Which resource limits the number of resident CTAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// CTA slots per SM.
    CtaSlots,
    /// Resident warps/threads per SM.
    Warps,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// The kernel fits no CTA at all (over-sized request).
    Infeasible,
}

/// Result of an occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident CTAs per SM.
    pub ctas_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`.
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

/// Compute occupancy for a kernel with the given per-thread register count,
/// per-CTA shared memory (bytes) and CTA size (threads).
///
/// # Examples
///
/// ```
/// use kw_gpu_sim::{occupancy, DeviceConfig};
/// let cfg = DeviceConfig::fermi_c2050();
/// // 256-thread CTAs at 20 regs/thread, 2 KiB shared: full occupancy.
/// let occ = occupancy(&cfg, 256, 20, 2048);
/// assert!(occ.occupancy > 0.99);
/// ```
pub fn occupancy(
    cfg: &DeviceConfig,
    threads_per_cta: u32,
    registers_per_thread: u32,
    shared_per_cta: u32,
) -> Occupancy {
    // A CTA larger than the hardware limit cannot launch at all. Silently
    // clamping here used to make oversized kernels look feasible (and
    // cheap); report them infeasible like the real occupancy calculator.
    if threads_per_cta > cfg.max_threads_per_cta {
        return Occupancy {
            ctas_per_sm: 0,
            warps_per_sm: 0,
            occupancy: 0.0,
            limiter: OccupancyLimiter::Infeasible,
        };
    }
    let threads = threads_per_cta.max(1);
    let warps_per_cta = threads.div_ceil(cfg.warp_size);

    // CTA slot limit.
    let by_slots = cfg.max_ctas_per_sm;
    // Warp limit.
    let by_warps = cfg.max_warps_per_sm / warps_per_cta.max(1);
    // Register limit: registers are allocated per warp at a granularity.
    let regs_per_warp = round_up(
        registers_per_thread.max(1) * cfg.warp_size,
        cfg.register_granularity,
    );
    let by_regs = if registers_per_thread > cfg.max_registers_per_thread {
        0
    } else {
        cfg.registers_per_sm / (regs_per_warp * warps_per_cta).max(1)
    };
    // Shared-memory limit.
    let shared = round_up(shared_per_cta, cfg.shared_granularity);
    let by_shared = cfg
        .shared_mem_per_sm
        .checked_div(shared)
        .unwrap_or(cfg.max_ctas_per_sm);

    let ctas = by_slots.min(by_warps).min(by_regs).min(by_shared);
    let limiter = if ctas == 0 {
        OccupancyLimiter::Infeasible
    } else if ctas == by_slots {
        OccupancyLimiter::CtaSlots
    } else if ctas == by_warps {
        OccupancyLimiter::Warps
    } else if ctas == by_regs {
        OccupancyLimiter::Registers
    } else {
        OccupancyLimiter::SharedMemory
    };

    let warps = ctas * warps_per_cta;
    Occupancy {
        ctas_per_sm: ctas,
        warps_per_sm: warps,
        occupancy: f64::from(warps) / f64::from(cfg.max_warps_per_sm),
        limiter,
    }
}

fn round_up(v: u32, granularity: u32) -> u32 {
    if granularity == 0 {
        v
    } else {
        v.div_ceil(granularity) * granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050()
    }

    #[test]
    fn light_kernel_reaches_full_occupancy() {
        let o = occupancy(&cfg(), 256, 16, 0);
        assert_eq!(o.warps_per_sm, 48);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
        assert_eq!(o.limiter, OccupancyLimiter::Warps);
    }

    #[test]
    fn register_pressure_lowers_occupancy() {
        let low = occupancy(&cfg(), 256, 20, 0);
        let high = occupancy(&cfg(), 256, 55, 0);
        assert!(high.occupancy < low.occupancy);
        assert_eq!(high.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn shared_pressure_lowers_occupancy() {
        // 23 KiB/CTA -> only 2 CTAs fit in 48 KiB.
        let o = occupancy(&cfg(), 256, 20, 23 * 1024);
        assert_eq!(o.ctas_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn oversized_kernel_is_infeasible() {
        let o = occupancy(&cfg(), 256, 64, 0);
        assert_eq!(o.ctas_per_sm, 0);
        assert_eq!(o.limiter, OccupancyLimiter::Infeasible);

        let o = occupancy(&cfg(), 256, 20, 64 * 1024);
        assert_eq!(o.limiter, OccupancyLimiter::Infeasible);
    }

    #[test]
    fn oversized_cta_is_infeasible_not_clamped() {
        // Regression: 2048 threads/CTA used to be silently clamped to the
        // 1024 hardware limit and reported as a feasible launch.
        let o = occupancy(&cfg(), 2048, 16, 0);
        assert_eq!(o.ctas_per_sm, 0);
        assert_eq!(o.warps_per_sm, 0);
        assert_eq!(o.occupancy, 0.0);
        assert_eq!(o.limiter, OccupancyLimiter::Infeasible);
        // The limit itself is still feasible.
        let at_limit = occupancy(&cfg(), cfg().max_threads_per_cta, 16, 0);
        assert!(at_limit.ctas_per_sm > 0);
    }

    #[test]
    fn cta_slot_limit() {
        // Tiny CTAs: 32 threads each, slots bind at 8 CTAs = 8 warps of 48.
        let o = occupancy(&cfg(), 32, 16, 0);
        assert_eq!(o.ctas_per_sm, 8);
        assert_eq!(o.limiter, OccupancyLimiter::CtaSlots);
        assert!((o.occupancy - 8.0 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn matches_published_fermi_point() {
        // A known Fermi occupancy-calculator point: 256 threads, 32 regs,
        // 0 shared -> 4 CTAs (32768 / (32*32*8 rounded to 1024*8)) = 4.
        let o = occupancy(&cfg(), 256, 32, 0);
        assert_eq!(o.ctas_per_sm, 4);
        assert!((o.occupancy - 32.0 / 48.0).abs() < 1e-9);
    }
}
