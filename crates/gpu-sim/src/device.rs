//! The simulated device facade.
//!
//! [`Device`] owns the memory tracker, statistics and event timeline, and is
//! the single place where kernel launches and PCIe transfers are charged.

use crate::{
    kernel_cost, pcie_seconds, ArenaStats, BufferId, DeviceConfig, Direction, Engine, Event,
    EventId, FaultConfig, FaultInjector, FaultKind, KernelCost, KernelQuantities, KernelResources,
    LaunchDims, MemoryTracker, MetricsRegistry, Result, ScratchArena, SimError, SimStats, Span,
    SpanKind, StreamId, StreamModel,
};

/// A simulated GPU.
///
/// # Examples
///
/// ```
/// use kw_gpu_sim::{Device, DeviceConfig, LaunchDims, KernelResources, KernelQuantities};
///
/// let mut dev = Device::new(DeviceConfig::fermi_c2050());
/// let buf = dev.alloc(1 << 20, "input")?;
/// let cost = dev.launch(
///     "select.compute",
///     LaunchDims::new(1024, 256),
///     KernelResources { registers_per_thread: 18, shared_per_cta: 2048 },
///     &KernelQuantities { global_bytes_read: 1 << 20, ..Default::default() },
/// )?;
/// assert!(cost.total_cycles() > 0);
/// dev.free(buf)?;
/// # Ok::<(), kw_gpu_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    memory: MemoryTracker,
    stats: SimStats,
    timeline: Vec<Event>,
    faults: Option<FaultInjector>,
    /// Structured trace: one span per charged operation (see [`Span`]).
    spans: Vec<Span>,
    /// Provenance scope stack; joined into each recorded span.
    scope: Vec<String>,
    /// Unified trace clock: GPU cycles, PCIe time and backoff all advance
    /// it, so spans of all kinds share one timeline.
    clock_cycles: u64,
    /// Running sum of span deltas; must always equal `stats` (the
    /// reconciliation invariant, asserted in debug builds).
    reconciled: SimStats,
    /// Stream/event scheduler for overlapped (asynchronous) operations.
    streams: StreamModel,
    /// Deterministic telemetry: every recorded span publishes counters and
    /// histograms here; driver layers add their own series on top.
    metrics: MetricsRegistry,
    /// First swallowed free error (drain-on-error paths): accounting
    /// corruption that must surface on reports instead of vanishing.
    first_free_error: Option<String>,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Device {
        let memory = MemoryTracker::new(config.global_mem_bytes);
        let streams = StreamModel::new(config.compute_engines);
        Device {
            config,
            memory,
            stats: SimStats::default(),
            timeline: Vec::new(),
            faults: None,
            spans: Vec::new(),
            scope: Vec::new(),
            clock_cycles: 0,
            reconciled: SimStats::default(),
            streams,
            metrics: MetricsRegistry::default(),
            first_free_error: None,
        }
    }

    /// Install a fault injector; subsequent transfers, launches and
    /// allocations may fail with transient [`SimError`] variants.
    pub fn inject_faults(&mut self, config: FaultConfig) {
        self.faults = Some(FaultInjector::new(config));
    }

    /// Remove any installed fault injector.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// A fresh device with the same configuration, sharing no state — except
    /// that if this device injects faults, the scratch device gets a derived
    /// (deterministic, independent) fault stream at the same rates. Chunked
    /// execution uses this so per-chunk work stays under fault pressure.
    pub fn fork_scratch(&mut self) -> Device {
        let mut scratch = Device::new(self.config.clone());
        scratch.faults = self.faults.as_mut().map(FaultInjector::split);
        scratch
    }

    /// Whether an injected fault fires for the next operation of `kind`;
    /// when it does, the fault is recorded in the stats, timeline and trace.
    fn fault_fires(&mut self, kind: FaultKind, label: &str) -> bool {
        let fires = self.faults.as_mut().is_some_and(|f| f.should_fault(kind));
        if fires {
            let before = self.stats;
            self.stats.faults_injected += 1;
            self.timeline.push(Event::Fault {
                kind,
                label: label.to_string(),
            });
            self.record_span(
                SpanKind::Fault,
                format!("fault.{}:{label}", kind.name()),
                before,
                0,
            );
        }
        fires
    }

    /// Record one span covering everything charged to `stats` since
    /// `before`, advancing the trace clock by `duration_cycles`.
    fn record_span(
        &mut self,
        kind: SpanKind,
        label: String,
        before: SimStats,
        duration_cycles: u64,
    ) {
        let start_cycle = self.clock_cycles;
        // Saturate like SimStats::merge: a pathological duration (e.g. an
        // exponential backoff that left f64 range) clamps instead of
        // wrapping the clock backwards.
        self.clock_cycles = self.clock_cycles.saturating_add(duration_cycles);
        self.record_span_at(kind, label, before, start_cycle, self.clock_cycles, None);
    }

    /// Record one span with an explicit `[start, end)` cycle interval
    /// (streamed operations: the interval comes from the stream scheduler,
    /// and the serial trace clock does NOT advance — issuing async work is
    /// free; only [`Device::sync_streams`] moves the clock). The span delta
    /// still feeds the reconciliation invariant.
    fn record_span_at(
        &mut self,
        kind: SpanKind,
        label: String,
        before: SimStats,
        start_cycle: u64,
        end_cycle: u64,
        engine: Option<Engine>,
    ) {
        let delta = self.stats.diff(&before);
        self.reconciled.merge(&delta);
        self.publish_span_metrics(kind, end_cycle - start_cycle, &delta);
        self.spans.push(Span {
            id: self.spans.len() as u64,
            kind,
            label,
            provenance: self.scope.join("/"),
            start_cycle,
            end_cycle,
            delta,
            engine,
        });
        #[cfg(debug_assertions)]
        if let Err(e) = crate::trace::compare_stats(&self.reconciled, &self.stats) {
            panic!("span accounting drifted from aggregate stats: {e}");
        }
    }

    /// Publish one recorded span into the metrics registry. Every span —
    /// serial or streamed — funnels through here, so registry counters are
    /// a third independent view of the same costs (after the aggregate
    /// `SimStats` and the span log) that tests can reconcile.
    fn publish_span_metrics(&mut self, kind: SpanKind, cycles: u64, delta: &SimStats) {
        let m = &mut self.metrics;
        m.inc("kw_spans_total", 1);
        let per_kind = match kind {
            SpanKind::Kernel => "kw_kernel_spans_total",
            SpanKind::Transfer => "kw_pcie_spans_total",
            SpanKind::Alloc => "kw_alloc_spans_total",
            SpanKind::Free => "kw_free_spans_total",
            SpanKind::Fault => "kw_fault_spans_total",
            SpanKind::Backoff => "kw_backoff_spans_total",
        };
        m.inc(per_kind, 1);
        match kind {
            SpanKind::Kernel => m.observe("kw_kernel_cycles", cycles),
            SpanKind::Transfer => m.observe("kw_pcie_cycles", cycles),
            SpanKind::Backoff => m.observe("kw_backoff_cycles", cycles),
            _ => {}
        }
        m.inc("kw_kernel_launches_total", delta.kernel_launches);
        m.inc("kw_launch_cycles_total", delta.launch_cycles);
        m.inc("kw_gpu_cycles_total", delta.gpu_cycles);
        m.inc("kw_global_bytes_total", delta.global_bytes());
        m.inc("kw_h2d_bytes_total", delta.h2d_bytes);
        m.inc("kw_d2h_bytes_total", delta.d2h_bytes);
        m.inc("kw_faults_injected_total", delta.faults_injected);
    }

    /// The device's metrics registry (read side: exporters, tests).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry, for driver layers (executor,
    /// resilient driver, batch scheduler) publishing their own series.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The recorded trace spans, in charge order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Current position of the unified trace clock, cycles.
    pub fn clock_cycles(&self) -> u64 {
        self.clock_cycles
    }

    /// Push a provenance frame; spans recorded until the matching
    /// [`Device::pop_scope`] carry it in [`Span::provenance`].
    pub fn push_scope(&mut self, frame: impl Into<String>) {
        self.scope.push(frame.into());
    }

    /// Pop the innermost provenance frame (no-op on an empty stack).
    pub fn pop_scope(&mut self) {
        self.scope.pop();
    }

    /// Depth of the provenance stack (for balanced unwinding on error
    /// paths, via [`Device::truncate_scope`]).
    pub fn scope_depth(&self) -> usize {
        self.scope.len()
    }

    /// Drop provenance frames down to `depth` (error-path cleanup).
    pub fn truncate_scope(&mut self, depth: usize) {
        self.scope.truncate(depth);
    }

    /// The current `/`-joined provenance string.
    pub fn current_provenance(&self) -> String {
        self.scope.join("/")
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The recorded event timeline.
    pub fn timeline(&self) -> &[Event] {
        &self.timeline
    }

    /// Reset statistics, timeline, trace spans, the trace clock, the
    /// stream scheduler and the metrics registry (allocations and the
    /// provenance scope stack survive; outstanding
    /// [`StreamId`]/[`EventId`] handles go stale).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.timeline.clear();
        self.spans.clear();
        self.clock_cycles = 0;
        self.reconciled = SimStats::default();
        self.streams.reset();
        self.metrics.reset();
    }

    /// Allocate a global-memory buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] past device capacity, or
    /// [`SimError::AllocFault`] when an injected transient fault fires.
    pub fn alloc(&mut self, bytes: u64, label: impl Into<String>) -> Result<BufferId> {
        let label = label.into();
        if self.fault_fires(FaultKind::Alloc, &label) {
            return Err(SimError::AllocFault { requested: bytes });
        }
        let id = self.memory.alloc(bytes, label.clone())?;
        self.timeline.push(Event::Alloc {
            label: label.clone(),
            bytes,
        });
        let before = self.stats;
        self.record_span(SpanKind::Alloc, label, before, 0);
        self.publish_memory_gauges();
        Ok(id)
    }

    /// Free a global-memory buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for unknown ids.
    pub fn free(&mut self, id: BufferId) -> Result<()> {
        let bytes = self.memory.size_of(id)?;
        self.memory.free(id)?;
        self.timeline.push(Event::Free { bytes });
        let before = self.stats;
        self.record_span(SpanKind::Free, format!("free.{bytes}B"), before, 0);
        self.publish_memory_gauges();
        Ok(())
    }

    /// Refresh the device-memory gauges after an alloc/free.
    fn publish_memory_gauges(&mut self) {
        self.metrics
            .set_gauge("kw_device_mem_in_use_bytes", self.memory.in_use() as f64);
        self.metrics
            .set_gauge("kw_device_mem_peak_bytes", self.memory.peak() as f64);
    }

    /// Reserve a [`ScratchArena`] of `bytes` in one backing allocation.
    ///
    /// This is the only `Alloc` span an arena-run plan emits: every
    /// input/staging/scratch/result buffer inside the plan becomes a
    /// span-free sub-allocation of the reservation, which is what drops
    /// alloc/free span counts from O(steps × chunks) to O(1) per plan.
    ///
    /// # Errors
    ///
    /// Same contract as [`Device::alloc`]: [`SimError::OutOfMemory`] past
    /// device capacity, [`SimError::AllocFault`] on an injected fault.
    pub fn create_arena(&mut self, bytes: u64, label: impl Into<String>) -> Result<ScratchArena> {
        let backing = self.alloc(bytes, label)?;
        Ok(ScratchArena::new(backing, bytes))
    }

    /// Free an arena's backing reservation (the plan's single `Free`
    /// span) and publish its accounting into the metrics registry:
    /// `kw_arena_reservation_bytes` / `kw_arena_high_water_bytes` gauges
    /// (high water kept monotone across arenas) and
    /// `kw_arena_suballocs_total` / `kw_arena_resets_total` counters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] when the backing buffer is gone
    /// — accounting corruption, not a recoverable condition.
    pub fn release_arena(&mut self, arena: ScratchArena) -> Result<ArenaStats> {
        let stats = arena.stats();
        self.free(arena.backing())?;
        self.metrics
            .set_gauge("kw_arena_reservation_bytes", stats.reservation as f64);
        let hw = self
            .metrics
            .gauge("kw_arena_high_water_bytes")
            .unwrap_or(0.0)
            .max(stats.high_water as f64);
        self.metrics.set_gauge("kw_arena_high_water_bytes", hw);
        self.metrics
            .inc("kw_arena_suballocs_total", stats.sub_allocs);
        self.metrics.inc("kw_arena_resets_total", stats.resets);
        Ok(stats)
    }

    /// Fold a scratch fork's memory peak into this device's high-water
    /// accounting. Chunked execution runs each chunk on a forked scratch
    /// device; the bytes it held are bytes the simulated hardware really
    /// held, so the parent's `peak()` and `kw_device_mem_peak_bytes`
    /// gauge must see them.
    pub fn absorb_scratch_peak(&mut self, bytes: u64) {
        self.memory.raise_peak(bytes);
        self.publish_memory_gauges();
    }

    /// Count a swallowed free error from a drain-on-error path
    /// (`kw_free_errors_total`) and retain the first one so reports can
    /// surface it instead of silently dropping accounting corruption.
    pub fn note_free_error(&mut self, e: &SimError) {
        self.metrics.inc("kw_free_errors_total", 1);
        if self.first_free_error.is_none() {
            self.first_free_error = Some(e.to_string());
        }
    }

    /// The first swallowed free error noted on this device, if any.
    pub fn first_free_error(&self) -> Option<&str> {
        self.first_free_error.as_deref()
    }

    /// Charge one kernel execution and record it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InfeasibleLaunch`] when the per-thread registers
    /// or per-CTA shared memory fit no CTA on an SM — the constraint that
    /// the paper's Algorithm 2 exists to respect.
    pub fn launch(
        &mut self,
        label: impl Into<String>,
        dims: LaunchDims,
        res: KernelResources,
        q: &KernelQuantities,
    ) -> Result<KernelCost> {
        let label = label.into();
        let (before, cost) = self.charge_kernel(&label, dims, res, q)?;
        self.record_span(SpanKind::Kernel, label, before, cost.total_cycles());
        Ok(cost)
    }

    /// Fault-check, price and charge one kernel execution to the stats and
    /// timeline. Span recording is left to the caller: serial launches
    /// advance the trace clock, streamed launches take their interval from
    /// the stream scheduler.
    fn charge_kernel(
        &mut self,
        label: &str,
        dims: LaunchDims,
        res: KernelResources,
        q: &KernelQuantities,
    ) -> Result<(SimStats, KernelCost)> {
        if self.fault_fires(FaultKind::Launch, label) {
            return Err(SimError::LaunchFault {
                label: label.to_string(),
            });
        }
        let cost =
            kernel_cost(&self.config, dims, res, q).ok_or_else(|| SimError::InfeasibleLaunch {
                detail: format!(
                    "{label}: {} regs/thread, {} B shared/CTA, {} threads/CTA",
                    res.registers_per_thread, res.shared_per_cta, dims.threads_per_cta
                ),
            })?;

        let before = self.stats;
        self.stats.kernel_launches += 1;
        self.stats.launch_cycles += cost.launch_cycles;
        self.stats.global_bytes_read += q.global_bytes_read;
        self.stats.global_bytes_written += q.global_bytes_written;
        self.stats.global_access_cycles += cost.global_cycles;
        self.stats.shared_bytes_read += q.shared_bytes_read;
        self.stats.shared_bytes_written += q.shared_bytes_written;
        self.stats.shared_access_cycles += cost.shared_cycles;
        self.stats.alu_ops += q.alu_ops;
        self.stats.alu_cycles += cost.alu_cycles;
        self.stats.barriers += q.barriers;
        self.stats.barrier_cycles += cost.barrier_cycles;
        self.stats.gpu_cycles += cost.total_cycles();
        debug_assert!(
            self.stats.cycles_consistent(),
            "gpu_cycles drifted from its component cycle counters after kernel {label:?}"
        );

        self.timeline.push(Event::Kernel {
            label: label.to_string(),
            cycles: cost.total_cycles(),
            global_cycles: cost.global_cycles,
            occupancy: cost.occupancy,
            grid_ctas: dims.grid_ctas,
            threads_per_cta: dims.threads_per_cta,
        });
        Ok((before, cost))
    }

    /// Charge a PCIe transfer and record it. Returns the transfer seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TransferFault`] when an injected transient fault
    /// fires; the failed transfer is charged nothing.
    pub fn transfer(&mut self, direction: Direction, bytes: u64) -> Result<f64> {
        let (before, seconds) = self.charge_transfer(direction, bytes)?;
        self.record_span(
            SpanKind::Transfer,
            format!("{direction:?}.{bytes}B"),
            before,
            self.config.seconds_to_cycles(seconds),
        );
        Ok(seconds)
    }

    /// Fault-check, price and charge one PCIe transfer to the stats and
    /// timeline (span recording left to the caller, as with
    /// [`Device::charge_kernel`]).
    fn charge_transfer(&mut self, direction: Direction, bytes: u64) -> Result<(SimStats, f64)> {
        if self.fault_fires(FaultKind::Transfer, &format!("{direction:?}")) {
            return Err(SimError::TransferFault { direction, bytes });
        }
        let seconds = pcie_seconds(&self.config, bytes);
        let before = self.stats;
        match direction {
            Direction::HostToDevice => {
                self.stats.h2d_transfers += 1;
                self.stats.h2d_bytes += bytes;
            }
            Direction::DeviceToHost => {
                self.stats.d2h_transfers += 1;
                self.stats.d2h_bytes += bytes;
            }
        }
        self.stats.pcie_seconds += seconds;
        self.timeline.push(Event::Transfer {
            direction,
            bytes,
            seconds,
        });
        Ok((before, seconds))
    }

    /// Charge simulated wall-clock time spent backing off before a retry.
    pub fn charge_backoff(&mut self, seconds: f64) {
        let before = self.stats;
        self.stats.backoff_seconds += seconds;
        self.timeline.push(Event::Backoff { seconds });
        self.record_span(
            SpanKind::Backoff,
            "backoff".to_string(),
            before,
            self.config.seconds_to_cycles(seconds),
        );
    }

    // ---- streams & events (asynchronous, overlapped execution) ----

    /// Create a new stream. Operations issued to it via
    /// [`Device::launch_on`] / [`Device::transfer_on`] execute in issue
    /// order but overlap with other streams wherever the engines allow.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.create_stream()
    }

    /// The stream scheduler: scheduled operations, per-engine busy
    /// intervals, and the event-graph makespan.
    pub fn streams(&self) -> &StreamModel {
        &self.streams
    }

    /// Launch a kernel asynchronously on `stream`.
    ///
    /// Charges exactly what [`Device::launch`] charges (stats, timeline,
    /// fault injection, reconcilable span), but the span's interval comes
    /// from the stream scheduler and the serial trace clock does not
    /// advance — call [`Device::sync_streams`] to realize the wallclock.
    ///
    /// # Errors
    ///
    /// As [`Device::launch`], plus [`SimError::InvalidStream`] for a stale
    /// stream handle.
    pub fn launch_on(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        dims: LaunchDims,
        res: KernelResources,
        q: &KernelQuantities,
    ) -> Result<KernelCost> {
        let label = label.into();
        self.streams.validate(stream)?;
        let (before, cost) = self.charge_kernel(&label, dims, res, q)?;
        let engine = self.streams.compute_engine(stream);
        let (start, end) = self.streams.schedule(
            stream,
            engine,
            label.clone(),
            cost.total_cycles(),
            self.clock_cycles,
        )?;
        self.record_span_at(SpanKind::Kernel, label, before, start, end, Some(engine));
        Ok(cost)
    }

    /// Issue a PCIe transfer asynchronously on `stream`; it occupies the
    /// dedicated copy engine for its direction, overlapping compute and
    /// the opposite-direction engine. Returns the transfer seconds.
    ///
    /// # Errors
    ///
    /// As [`Device::transfer`], plus [`SimError::InvalidStream`] for a
    /// stale stream handle.
    pub fn transfer_on(
        &mut self,
        stream: StreamId,
        direction: Direction,
        bytes: u64,
    ) -> Result<f64> {
        self.streams.validate(stream)?;
        let (before, seconds) = self.charge_transfer(direction, bytes)?;
        let engine = match direction {
            Direction::HostToDevice => Engine::CopyH2D,
            Direction::DeviceToHost => Engine::CopyD2H,
        };
        let label = format!("{direction:?}.{bytes}B");
        let (start, end) = self.streams.schedule(
            stream,
            engine,
            label.clone(),
            self.config.seconds_to_cycles(seconds),
            self.clock_cycles,
        )?;
        self.record_span_at(SpanKind::Transfer, label, before, start, end, Some(engine));
        Ok(seconds)
    }

    /// Charge an externally-priced block of compute to this device and
    /// schedule it on `stream`'s compute engine for `duration_cycles`.
    ///
    /// Chunked execution prices each chunk on a scratch device and uses
    /// this to mirror the chunk's kernel-side counters into the parent's
    /// stats/trace as one streamed compute span. `delta` must be
    /// compute-only (no transfer or fault counters — those are mirrored
    /// separately as real streamed transfers, and double counting would
    /// break the reconciliation invariant).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for a stale stream handle.
    pub fn compute_on(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        delta: &SimStats,
        duration_cycles: u64,
    ) -> Result<()> {
        let label = label.into();
        self.streams.validate(stream)?;
        debug_assert!(
            delta.h2d_transfers == 0
                && delta.d2h_transfers == 0
                && delta.h2d_bytes == 0
                && delta.d2h_bytes == 0
                && delta.pcie_seconds == 0.0
                && delta.faults_injected == 0
                && delta.backoff_seconds == 0.0,
            "compute_on delta must be compute-only: {delta:?}"
        );
        let before = self.stats;
        self.stats.merge(delta);
        debug_assert!(
            self.stats.cycles_consistent(),
            "mirrored compute delta broke cycle consistency for {label:?}"
        );
        let engine = self.streams.compute_engine(stream);
        let (start, end) = self.streams.schedule(
            stream,
            engine,
            label.clone(),
            duration_cycles,
            self.clock_cycles,
        )?;
        self.record_span_at(SpanKind::Kernel, label, before, start, end, Some(engine));
        Ok(())
    }

    /// Record an event on `stream` (see [`StreamModel::record_event`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for a stale stream handle.
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId> {
        self.streams.record_event(stream)
    }

    /// Make `stream` wait for `event` (see [`StreamModel::wait_event`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for a stale stream or event.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<()> {
        self.streams.wait_event(stream, event)
    }

    /// Block until `event` has completed: the serial trace clock advances to
    /// the event's recorded cycle (it never moves backwards). Returns the
    /// new clock.
    ///
    /// This is the host-side half of a producer/consumer edge: serially
    /// executed work (e.g. a kernel that consumes a streamed upload) calls
    /// this before being charged, so it cannot pretend to predate the data
    /// it reads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStream`] for a stale event handle.
    pub fn sync_event(&mut self, event: EventId) -> Result<u64> {
        let at = self.streams.event_cycle(event)?;
        self.clock_cycles = self.clock_cycles.max(at);
        Ok(self.clock_cycles)
    }

    /// Block until all streamed work has finished: the serial trace clock
    /// advances to the stream makespan (it never moves backwards). Returns
    /// the new clock. Call this before reading wallclock after streamed
    /// work, and on error paths so retries start from a settled clock.
    pub fn sync_streams(&mut self) -> u64 {
        self.clock_cycles = self.clock_cycles.max(self.streams.makespan());
        self.clock_cycles
    }

    /// The cycle at which all work — serial and streamed — has finished:
    /// the serial trace clock joined with the per-engine busy intervals of
    /// the stream scheduler.
    pub fn makespan(&self) -> u64 {
        self.clock_cycles.max(self.streams.makespan())
    }

    /// Seconds of GPU computation so far.
    pub fn gpu_seconds(&self) -> f64 {
        self.config.cycles_to_seconds(self.stats.gpu_cycles)
    }

    /// Seconds of PCIe transfer so far.
    pub fn pcie_secs(&self) -> f64 {
        self.stats.pcie_seconds
    }

    /// GPU + PCIe + backoff seconds (the paper's Figure 21 "overall" metric;
    /// the simulator serializes computation and transfer as the paper's
    /// baseline runtime does, and retry backoff waits on the same clock).
    pub fn total_seconds(&self) -> f64 {
        self.gpu_seconds() + self.pcie_secs() + self.stats.backoff_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn quantities(bytes: u64) -> KernelQuantities {
        KernelQuantities {
            global_bytes_read: bytes,
            ..KernelQuantities::default()
        }
    }

    #[test]
    fn launch_updates_stats_and_timeline() {
        let mut d = device();
        let res = KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 1024,
        };
        d.launch("k1", LaunchDims::new(512, 256), res, &quantities(1 << 20))
            .unwrap();
        assert_eq!(d.stats().kernel_launches, 1);
        assert_eq!(d.stats().global_bytes_read, 1 << 20);
        assert!(d.stats().gpu_cycles > 0);
        assert_eq!(d.timeline().len(), 1);
        assert!(d.gpu_seconds() > 0.0);
    }

    #[test]
    fn infeasible_launch_rejected() {
        let mut d = device();
        let res = KernelResources {
            registers_per_thread: 200,
            shared_per_cta: 0,
        };
        let err = d
            .launch(
                "bad",
                LaunchDims::new(1, 256),
                res,
                &KernelQuantities::default(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InfeasibleLaunch { .. }));
        assert_eq!(d.stats().kernel_launches, 0);
    }

    #[test]
    fn transfer_updates_stats() {
        let mut d = device();
        let t = d.transfer(Direction::HostToDevice, 1 << 30).unwrap();
        assert!(t > 0.1);
        d.transfer(Direction::DeviceToHost, 1 << 20).unwrap();
        assert_eq!(d.stats().h2d_transfers, 1);
        assert_eq!(d.stats().d2h_transfers, 1);
        assert!((d.pcie_secs() - d.stats().pcie_seconds).abs() < 1e-12);
        assert!(d.total_seconds() >= d.pcie_secs());
    }

    #[test]
    fn alloc_free_tracked_in_timeline() {
        let mut d = device();
        let b = d.alloc(1024, "x").unwrap();
        d.free(b).unwrap();
        assert_eq!(d.timeline().len(), 2);
        assert_eq!(d.memory().peak(), 1024);
    }

    #[test]
    fn arena_lifecycle_is_two_spans_and_publishes_metrics() {
        let mut d = device();
        let mut arena = d.create_arena(4096, "plan.arena").unwrap();
        // Sub-allocations are pure accounting: no spans, no tracker churn.
        let a = arena.acquire(1000).unwrap();
        let b = arena.acquire(2000).unwrap();
        arena.release(a).unwrap();
        arena.release(b).unwrap();
        arena.reset();
        let stats = d.release_arena(arena).unwrap();
        assert_eq!(stats.reservation, 4096);
        assert_eq!(stats.high_water, 3000);
        assert_eq!(stats.sub_allocs, 2);
        assert_eq!(stats.resets, 1);
        let allocs = d
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Alloc)
            .count();
        let frees = d
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Free)
            .count();
        assert_eq!((allocs, frees), (1, 1));
        assert_eq!(d.memory().peak(), 4096, "tracker sees only the reservation");
        assert_eq!(d.memory().alloc_count(), 1);
        assert_eq!(d.metrics().gauge("kw_arena_high_water_bytes"), Some(3000.0));
        assert_eq!(d.metrics().counter("kw_arena_suballocs_total"), 2);
        assert_eq!(d.metrics().counter("kw_arena_resets_total"), 1);
    }

    #[test]
    fn absorb_scratch_peak_raises_parent_gauges() {
        let mut d = device();
        let b = d.alloc(100, "x").unwrap();
        d.free(b).unwrap();
        d.absorb_scratch_peak(5000);
        assert_eq!(d.memory().peak(), 5000);
        assert_eq!(d.metrics().gauge("kw_device_mem_peak_bytes"), Some(5000.0));
        // Absorbing a smaller peak is a no-op (high-water semantics).
        d.absorb_scratch_peak(10);
        assert_eq!(d.memory().peak(), 5000);
    }

    #[test]
    fn free_errors_are_counted_and_first_is_retained() {
        let mut d = device();
        assert!(d.first_free_error().is_none());
        d.note_free_error(&SimError::InvalidBuffer { id: 7 });
        d.note_free_error(&SimError::InvalidBuffer { id: 9 });
        assert_eq!(d.metrics().counter("kw_free_errors_total"), 2);
        assert!(d.first_free_error().unwrap().contains('7'));
    }

    #[test]
    fn reset_stats_preserves_memory() {
        let mut d = device();
        let _b = d.alloc(1024, "x").unwrap();
        d.transfer(Direction::HostToDevice, 100).unwrap();
        d.reset_stats();
        assert_eq!(d.stats().pcie_bytes(), 0);
        assert!(d.timeline().is_empty());
        assert_eq!(d.memory().in_use(), 1024);
    }

    #[test]
    fn injected_transfer_fault_surfaces_and_charges_nothing() {
        let mut d = device();
        d.inject_faults(crate::FaultConfig::scripted(vec![crate::ScriptedFault {
            kind: crate::FaultKind::Transfer,
            attempt: 0,
        }]));
        let err = d.transfer(Direction::HostToDevice, 1 << 20).unwrap_err();
        assert!(matches!(err, SimError::TransferFault { bytes, .. } if bytes == 1 << 20));
        assert!(err.is_transient());
        assert_eq!(d.stats().h2d_transfers, 0);
        assert_eq!(d.stats().faults_injected, 1);
        assert!(matches!(
            d.timeline()[0],
            Event::Fault {
                kind: crate::FaultKind::Transfer,
                ..
            }
        ));
        // The retry (attempt 1) succeeds.
        assert!(d.transfer(Direction::HostToDevice, 1 << 20).is_ok());
    }

    #[test]
    fn injected_launch_and_alloc_faults_surface() {
        let mut d = device();
        d.inject_faults(crate::FaultConfig::scripted(vec![
            crate::ScriptedFault {
                kind: crate::FaultKind::Launch,
                attempt: 0,
            },
            crate::ScriptedFault {
                kind: crate::FaultKind::Alloc,
                attempt: 0,
            },
        ]));
        let res = KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 0,
        };
        let err = d
            .launch("k", LaunchDims::new(64, 256), res, &quantities(1024))
            .unwrap_err();
        assert!(matches!(err, SimError::LaunchFault { .. }));
        assert_eq!(d.stats().kernel_launches, 0);
        let err = d.alloc(1024, "buf").unwrap_err();
        assert!(matches!(err, SimError::AllocFault { requested: 1024 }));
        assert_eq!(d.memory().in_use(), 0);
        // Retries of both succeed and charge normally.
        d.launch("k", LaunchDims::new(64, 256), res, &quantities(1024))
            .unwrap();
        d.alloc(1024, "buf").unwrap();
        assert_eq!(d.stats().faults_injected, 2);
    }

    #[test]
    fn backoff_charges_total_seconds() {
        let mut d = device();
        let before = d.total_seconds();
        d.charge_backoff(0.125);
        assert!((d.total_seconds() - before - 0.125).abs() < 1e-12);
        assert!(matches!(d.timeline()[0], Event::Backoff { .. }));
    }

    #[test]
    fn streamed_pipeline_overlaps_and_reconciles() {
        let mut d = device();
        let res = KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 0,
        };
        let mut serialized_cycles = 0u64;
        for i in 0..3 {
            let s = d.create_stream();
            let up = d.transfer_on(s, Direction::HostToDevice, 1 << 24).unwrap();
            let cost = d
                .launch_on(
                    s,
                    format!("k{i}"),
                    LaunchDims::new(4096, 256),
                    res,
                    &quantities(1 << 24),
                )
                .unwrap();
            let down = d.transfer_on(s, Direction::DeviceToHost, 1 << 24).unwrap();
            serialized_cycles += d.config().seconds_to_cycles(up)
                + cost.total_cycles()
                + d.config().seconds_to_cycles(down);
        }
        // Issuing async work is free; sync realizes the makespan.
        assert_eq!(d.clock_cycles(), 0);
        let end = d.sync_streams();
        assert_eq!(end, d.makespan());
        assert!(
            end > 0 && end < serialized_cycles,
            "{end} vs {serialized_cycles}"
        );
        let busiest = *d.streams().engine_busy().values().max().unwrap();
        assert!(end >= busiest);
        // Streamed spans still reconcile with the aggregate counters.
        crate::reconcile(d.spans(), d.stats()).unwrap();
        assert_eq!(d.stats().kernel_launches, 3);
        assert_eq!(d.stats().h2d_transfers, 3);
        assert_eq!(d.spans().len(), 9);
    }

    #[test]
    fn streamed_ops_respect_issue_clock_floor() {
        let mut d = device();
        // Serial work first: the clock has advanced when the stream starts.
        d.transfer(Direction::HostToDevice, 1 << 20).unwrap();
        let floor = d.clock_cycles();
        assert!(floor > 0);
        let s = d.create_stream();
        d.transfer_on(s, Direction::HostToDevice, 1 << 20).unwrap();
        let op = d.streams().ops().last().unwrap().clone();
        assert!(
            op.start_cycle >= floor,
            "async work cannot predate its issue"
        );
    }

    #[test]
    fn streamed_transfer_faults_fire() {
        let mut d = device();
        d.inject_faults(crate::FaultConfig::scripted(vec![crate::ScriptedFault {
            kind: crate::FaultKind::Transfer,
            attempt: 0,
        }]));
        let s = d.create_stream();
        let err = d
            .transfer_on(s, Direction::HostToDevice, 1 << 20)
            .unwrap_err();
        assert!(err.is_transient());
        assert_eq!(d.stats().h2d_transfers, 0);
        assert_eq!(d.stats().faults_injected, 1);
        // Retry on the same stream succeeds.
        assert!(d.transfer_on(s, Direction::HostToDevice, 1 << 20).is_ok());
        crate::reconcile(d.spans(), d.stats()).unwrap();
    }

    #[test]
    fn compute_on_rejects_stale_stream_and_charges_delta() {
        let mut d = device();
        let s = d.create_stream();
        let delta = SimStats {
            kernel_launches: 2,
            gpu_cycles: 1000,
            launch_cycles: 1000,
            ..SimStats::default()
        };
        d.compute_on(s, "chunk0.compute", &delta, 1500).unwrap();
        assert_eq!(d.stats().kernel_launches, 2);
        assert_eq!(d.sync_streams(), 1500);
        crate::reconcile(d.spans(), d.stats()).unwrap();

        d.reset_stats();
        let err = d.compute_on(s, "stale", &delta, 10).unwrap_err();
        assert!(matches!(err, SimError::InvalidStream { .. }));
        assert_eq!(d.stats().kernel_launches, 0, "stale handle charges nothing");
    }

    #[test]
    fn metrics_registry_mirrors_stats_and_resets() {
        let mut d = device();
        let res = KernelResources {
            registers_per_thread: 20,
            shared_per_cta: 0,
        };
        let b = d.alloc(1 << 20, "buf").unwrap();
        d.transfer(Direction::HostToDevice, 1 << 20).unwrap();
        d.launch("k", LaunchDims::new(512, 256), res, &quantities(1 << 20))
            .unwrap();
        let s = d.create_stream();
        d.launch_on(
            s,
            "k2",
            LaunchDims::new(512, 256),
            res,
            &quantities(1 << 20),
        )
        .unwrap();
        let m = d.metrics();
        assert_eq!(m.counter("kw_gpu_cycles_total"), d.stats().gpu_cycles);
        assert_eq!(m.counter("kw_global_bytes_total"), d.stats().global_bytes());
        assert_eq!(m.counter("kw_h2d_bytes_total"), d.stats().h2d_bytes);
        assert_eq!(m.counter("kw_kernel_launches_total"), 2);
        assert_eq!(m.counter("kw_kernel_spans_total"), 2);
        assert_eq!(m.counter("kw_pcie_spans_total"), 1);
        assert_eq!(m.counter("kw_spans_total"), d.spans().len() as u64);
        let h = m.histogram("kw_kernel_cycles").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(
            h.sum(),
            d.stats().gpu_cycles,
            "both kernels charged serially-priced cycles"
        );
        assert_eq!(
            m.gauge("kw_device_mem_in_use_bytes"),
            Some((1 << 20) as f64)
        );
        d.free(b).unwrap();
        assert_eq!(d.metrics().gauge("kw_device_mem_in_use_bytes"), Some(0.0));
        d.reset_stats();
        assert!(d.metrics().is_empty());
    }

    #[test]
    fn fork_scratch_propagates_fault_rates() {
        let mut d = device();
        d.inject_faults(crate::FaultConfig::uniform(5, 1.0));
        let mut scratch = d.fork_scratch();
        assert!(scratch.fault_injector().is_some());
        assert!(scratch.transfer(Direction::HostToDevice, 8).is_err());
        let mut plain = device();
        assert!(plain.fork_scratch().fault_injector().is_none());
    }
}
