//! Structured execution tracing.
//!
//! Every kernel launch, PCIe transfer, allocation event, injected fault and
//! retry backoff recorded by a [`crate::Device`] becomes one [`Span`]: a
//! labelled interval on the device's unified cycle clock carrying the exact
//! [`SimStats`] delta that operation charged, plus the operator provenance
//! the executor pushed via [`crate::Device::push_scope`].
//!
//! Spans make the simulator's aggregate counters *attributable*: the paper
//! argues through end-of-run totals (global-memory cycles of Fig. 18,
//! allocation of Fig. 17, PCIe traffic of Fig. 21), and spans show which
//! woven kernel each cycle and byte belongs to. They are also a standing
//! correctness check: [`reconcile`] asserts that per-span deltas sum back to
//! the aggregate — any cost the device charges outside a span, or charges
//! twice, fails the invariant. Debug builds enforce it after every recorded
//! span.
//!
//! [`TraceSink`] exports a span list as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) and as a per-operator summary table.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::{Engine, SimStats};

/// What kind of device operation a [`Span`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A kernel execution (duration = the kernel's total cycles).
    Kernel,
    /// A PCIe transfer (duration = transfer seconds on the cycle clock).
    Transfer,
    /// A device allocation (instant).
    Alloc,
    /// A device free (instant).
    Free,
    /// An injected fault; the faulted operation was charged nothing, the
    /// fault itself is the record (instant).
    Fault,
    /// Retry backoff charged to the simulated clock (duration).
    Backoff,
}

impl SpanKind {
    /// Short category name (used as the Chrome trace `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::Transfer => "pcie",
            SpanKind::Alloc => "alloc",
            SpanKind::Free => "free",
            SpanKind::Fault => "fault",
            SpanKind::Backoff => "backoff",
        }
    }
}

/// One traced device operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Sequence number on the recording device (0-based).
    pub id: u64,
    /// Operation kind.
    pub kind: SpanKind,
    /// Operation label (kernel label, transfer direction, buffer label…).
    pub label: String,
    /// The `/`-joined provenance scope stack at record time — operator,
    /// fusion set, attempt and mode frames pushed by the executor layers.
    pub provenance: String,
    /// Start position on the device's unified cycle clock.
    pub start_cycle: u64,
    /// End position on the cycle clock (equal to `start_cycle` for instant
    /// events).
    pub end_cycle: u64,
    /// Exactly what this operation charged: the difference between the
    /// device's aggregate [`SimStats`] after and before it.
    pub delta: SimStats,
    /// The hardware engine this operation occupied, when it went through
    /// the stream model (`None` for serial-path and instant events). Used
    /// by the Chrome export to give each engine its own lane, so
    /// copy-compute overlap is visible instead of collapsing into one row.
    pub engine: Option<Engine>,
}

impl Span {
    /// Duration in cycles (zero for instant events).
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Sum the [`SimStats`] deltas of `spans`.
pub fn sum_deltas(spans: &[Span]) -> SimStats {
    let mut sum = SimStats::default();
    for s in spans {
        sum.merge(&s.delta);
    }
    sum
}

/// Check that the per-span deltas of `spans` sum to `aggregate`.
///
/// Integer counters must match exactly; the two `f64` counters
/// (`pcie_seconds`, `backoff_seconds`) within a relative 1e-9.
///
/// # Errors
///
/// Returns a description of the first mismatching counter.
pub fn reconcile(spans: &[Span], aggregate: &SimStats) -> Result<(), String> {
    compare_stats(&sum_deltas(spans), aggregate)
}

/// The comparison behind [`reconcile`], for callers that already hold the
/// summed deltas (the device's debug-build invariant keeps a running sum).
pub(crate) fn compare_stats(sum: &SimStats, aggregate: &SimStats) -> Result<(), String> {
    let ints = [
        (
            "kernel_launches",
            sum.kernel_launches,
            aggregate.kernel_launches,
        ),
        ("launch_cycles", sum.launch_cycles, aggregate.launch_cycles),
        (
            "global_bytes_read",
            sum.global_bytes_read,
            aggregate.global_bytes_read,
        ),
        (
            "global_bytes_written",
            sum.global_bytes_written,
            aggregate.global_bytes_written,
        ),
        (
            "global_access_cycles",
            sum.global_access_cycles,
            aggregate.global_access_cycles,
        ),
        (
            "shared_bytes_read",
            sum.shared_bytes_read,
            aggregate.shared_bytes_read,
        ),
        (
            "shared_bytes_written",
            sum.shared_bytes_written,
            aggregate.shared_bytes_written,
        ),
        (
            "shared_access_cycles",
            sum.shared_access_cycles,
            aggregate.shared_access_cycles,
        ),
        ("alu_ops", sum.alu_ops, aggregate.alu_ops),
        ("alu_cycles", sum.alu_cycles, aggregate.alu_cycles),
        ("barriers", sum.barriers, aggregate.barriers),
        (
            "barrier_cycles",
            sum.barrier_cycles,
            aggregate.barrier_cycles,
        ),
        ("gpu_cycles", sum.gpu_cycles, aggregate.gpu_cycles),
        ("h2d_transfers", sum.h2d_transfers, aggregate.h2d_transfers),
        ("h2d_bytes", sum.h2d_bytes, aggregate.h2d_bytes),
        ("d2h_transfers", sum.d2h_transfers, aggregate.d2h_transfers),
        ("d2h_bytes", sum.d2h_bytes, aggregate.d2h_bytes),
        (
            "faults_injected",
            sum.faults_injected,
            aggregate.faults_injected,
        ),
    ];
    for (name, got, want) in ints {
        if got != want {
            return Err(format!(
                "trace does not reconcile: sum of span deltas has {name}={got}, \
                 aggregate SimStats has {name}={want}"
            ));
        }
    }
    let floats = [
        ("pcie_seconds", sum.pcie_seconds, aggregate.pcie_seconds),
        (
            "backoff_seconds",
            sum.backoff_seconds,
            aggregate.backoff_seconds,
        ),
    ];
    for (name, got, want) in floats {
        let tol = 1e-9 * want.abs().max(1.0);
        if (got - want).abs() > tol {
            return Err(format!(
                "trace does not reconcile: sum of span deltas has {name}={got}, \
                 aggregate SimStats has {name}={want}"
            ));
        }
    }
    Ok(())
}

/// Aggregated cost of all spans sharing one provenance scope.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSummary {
    /// The provenance scope (or `"(unscoped)"`).
    pub operator: String,
    /// Kernel spans under this scope.
    pub kernels: u64,
    /// PCIe transfer spans under this scope.
    pub transfers: u64,
    /// Injected faults under this scope.
    pub faults: u64,
    /// Total GPU cycles charged.
    pub gpu_cycles: u64,
    /// Cycles attributed to global-memory access.
    pub global_access_cycles: u64,
    /// Bytes moved through global memory.
    pub global_bytes: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
}

/// Group `spans` by provenance scope and total each group's costs.
///
/// Rows are ordered by first appearance in the trace, which for a plan
/// execution is operator execution order.
pub fn operator_summary(spans: &[Span]) -> Vec<OperatorSummary> {
    let mut order: Vec<String> = Vec::new();
    let mut rows: BTreeMap<String, OperatorSummary> = BTreeMap::new();
    for s in spans {
        let key = if s.provenance.is_empty() {
            "(unscoped)".to_string()
        } else {
            s.provenance.clone()
        };
        let row = rows.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            OperatorSummary {
                operator: key,
                kernels: 0,
                transfers: 0,
                faults: 0,
                gpu_cycles: 0,
                global_access_cycles: 0,
                global_bytes: 0,
                pcie_bytes: 0,
            }
        });
        match s.kind {
            SpanKind::Kernel => row.kernels += 1,
            SpanKind::Transfer => row.transfers += 1,
            SpanKind::Fault => row.faults += 1,
            _ => {}
        }
        row.gpu_cycles += s.delta.gpu_cycles;
        row.global_access_cycles += s.delta.global_access_cycles;
        row.global_bytes += s.delta.global_bytes();
        row.pcie_bytes += s.delta.pcie_bytes();
    }
    order
        .into_iter()
        .map(|k| rows.remove(&k).expect("inserted"))
        .collect()
}

/// Render [`operator_summary`] rows as an aligned text table.
pub fn summary_table(rows: &[OperatorSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>7} {:>5} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "operator",
        "kernels",
        "xfers",
        "faults",
        "gpu cycles",
        "gmem cycles",
        "gmem bytes",
        "pcie bytes"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<52} {:>7} {:>5} {:>6} {:>14} {:>14} {:>12} {:>12}",
            r.operator,
            r.kernels,
            r.transfers,
            r.faults,
            r.gpu_cycles,
            r.global_access_cycles,
            r.global_bytes,
            r.pcie_bytes
        );
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `spans` as Chrome trace-event JSON, loadable in Perfetto and
/// `chrome://tracing`.
///
/// Timestamps are microseconds on the device's unified cycle clock at
/// `clock_ghz`. Duration spans (kernels, transfers, backoff) become `"X"`
/// complete events; instant events (alloc/free/fault) become `"i"` events.
/// Every event carries its provenance and `SimStats` delta in `args`.
pub fn chrome_trace_json(spans: &[Span], clock_ghz: f64) -> String {
    // Lanes: the serial-path families keep the three fixed rows; every
    // distinct stream-model engine gets its own row above them. Deriving
    // the lane purely from SpanKind used to collapse concurrent ops on
    // different engines into one Perfetto row, hiding the very overlap
    // the stream model exists to show.
    let kind_tid = |k: SpanKind| match k {
        SpanKind::Kernel => 0,
        SpanKind::Transfer | SpanKind::Backoff => 1,
        SpanKind::Alloc | SpanKind::Free | SpanKind::Fault => 2,
    };
    let mut engine_lanes: BTreeMap<Engine, u64> = BTreeMap::new();
    for s in spans {
        if let Some(e) = s.engine {
            if !engine_lanes.contains_key(&e) {
                engine_lanes.insert(e, 3 + engine_lanes.len() as u64);
            }
        }
    }
    let tid = |s: &Span| match s.engine {
        Some(e) => engine_lanes[&e],
        None => kind_tid(s.kind),
    };
    let us = |cycles: u64| cycles as f64 / (clock_ghz * 1e3);

    let mut lanes: Vec<(u64, String)> = vec![
        (0, "compute".to_string()),
        (1, "pcie+backoff".to_string()),
        (2, "memory+faults".to_string()),
    ];
    lanes.extend(
        engine_lanes
            .iter()
            .map(|(e, &t)| (t, format!("engine:{}", e.name()))),
    );
    lanes.sort_by_key(|&(t, _)| t);

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (t, name) in &lanes {
        let _ = writeln!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}}},"
        );
    }
    if spans.is_empty() {
        // No span events follow: drop the last metadata line's trailing
        // comma (",\n") so the array stays well-formed JSON.
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    for (i, s) in spans.iter().enumerate() {
        let d = &s.delta;
        let args = format!(
            "{{\"provenance\":\"{}\",\"cycles\":{},\"global_bytes_read\":{},\
             \"global_bytes_written\":{},\"global_access_cycles\":{},\
             \"shared_access_cycles\":{},\"alu_cycles\":{},\"barrier_cycles\":{},\
             \"launch_cycles\":{},\"h2d_bytes\":{},\"d2h_bytes\":{},\
             \"faults_injected\":{}}}",
            escape_json(&s.provenance),
            s.cycles(),
            d.global_bytes_read,
            d.global_bytes_written,
            d.global_access_cycles,
            d.shared_access_cycles,
            d.alu_cycles,
            d.barrier_cycles,
            d.launch_cycles,
            d.h2d_bytes,
            d.d2h_bytes,
            d.faults_injected,
        );
        if s.start_cycle == s.end_cycle {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{:.4},\"pid\":0,\"tid\":{},\"args\":{}}}",
                escape_json(&s.label),
                s.kind.name(),
                us(s.start_cycle),
                tid(s),
                args
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                 \"ts\":{:.4},\"dur\":{:.4},\"pid\":0,\"tid\":{},\"args\":{}}}",
                escape_json(&s.label),
                s.kind.name(),
                us(s.start_cycle),
                us(s.cycles()),
                tid(s),
                args
            );
        }
        out.push_str(if i + 1 == spans.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON validation (the build environment is offline, so the schema
// check in ci.sh cannot shell out to a JSON tool).
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// `"X"`/`"i"` trace events seen inside the `traceEvents` array.
    events: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (already-valid input: the
                    // caller handed us a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("bad number"))
    }

    /// Parse any JSON value; `in_trace_events` marks object members of the
    /// `traceEvents` array so they are schema-checked as trace events.
    fn parse_value(&mut self, in_trace_events: bool) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.parse_object(in_trace_events),
            b'[' => self.parse_array(false),
            b'"' => self.parse_string().map(|_| ()),
            b't' => self.parse_lit("true"),
            b'f' => self.parse_lit("false"),
            b'n' => self.parse_lit("null"),
            _ => self.parse_number().map(|_| ()),
        }
    }

    fn parse_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn parse_array(&mut self, trace_events: bool) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.parse_value(trace_events)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// Parse an object. When `trace_event` is set, require the trace-event
    /// schema: a string `ph`, a string `name`, and for `"X"`/`"i"` phases a
    /// numeric `ts`.
    fn parse_object(&mut self, trace_event: bool) -> Result<(), String> {
        self.expect(b'{')?;
        let mut ph: Option<String> = None;
        let mut has_name = false;
        let mut has_ts = false;
        let mut trace_events_seen = false;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                match key.as_str() {
                    "traceEvents" if self.peek() == Some(b'[') => {
                        trace_events_seen = true;
                        self.parse_array(true)?;
                    }
                    "ph" if self.peek() == Some(b'"') => ph = Some(self.parse_string()?),
                    "name" if self.peek() == Some(b'"') => {
                        has_name = true;
                        self.parse_string()?;
                    }
                    "ts" => {
                        has_ts = self.peek() != Some(b'"');
                        self.parse_value(false)?;
                    }
                    _ => self.parse_value(false)?,
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        if trace_event {
            let ph = ph.ok_or_else(|| self.err("trace event missing \"ph\""))?;
            if !has_name {
                return Err(self.err("trace event missing \"name\""));
            }
            if matches!(ph.as_str(), "X" | "i") {
                if !has_ts {
                    return Err(self.err("trace event missing numeric \"ts\""));
                }
                self.events += 1;
            }
        }
        let _ = trace_events_seen;
        Ok(())
    }
}

/// Validate that `text` is one well-formed JSON document (any value shape,
/// no schema requirements beyond syntax). The bench harness uses this to
/// gate its machine-readable result files in the offline CI environment.
///
/// # Errors
///
/// Returns a message locating the first syntax violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        events: 0,
    };
    p.parse_value(false)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON document"));
    }
    Ok(())
}

/// Validate that `text` is well-formed Chrome trace-event JSON: a top-level
/// object whose `traceEvents` array members each carry a `ph`, a `name`, and
/// (for durable/instant phases) a numeric `ts`.
///
/// Returns the number of non-metadata trace events.
///
/// # Errors
///
/// Returns a message locating the first syntax or schema violation.
pub fn validate_chrome_json(text: &str) -> Result<usize, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        events: 0,
    };
    p.skip_ws();
    if p.peek() != Some(b'{') {
        return Err(p.err("expected top-level object"));
    }
    p.parse_object(false)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON document"));
    }
    if p.events == 0 {
        return Err("trace contains no events".to_string());
    }
    Ok(p.events)
}

/// Writes traces captured from a [`crate::Device`] to a directory.
///
/// ```no_run
/// use kw_gpu_sim::{Device, DeviceConfig, TraceSink};
/// let dev = Device::new(DeviceConfig::fermi_c2050());
/// let sink = TraceSink::new("traces")?;
/// let path = sink.export("run", &dev)?;
/// println!("open {} in https://ui.perfetto.dev", path.display());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceSink {
    dir: PathBuf,
}

impl TraceSink {
    /// Create a sink rooted at `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<TraceSink> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceSink { dir })
    }

    /// The sink's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Export `device`'s spans as `<name>.trace.json` (Chrome trace-event
    /// JSON) plus `<name>.summary.txt` (the per-operator table), after
    /// verifying the trace reconciles against the device's aggregate stats.
    ///
    /// Returns the path of the JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the trace fails
    /// reconciliation, and propagates filesystem errors.
    pub fn export(&self, name: &str, device: &crate::Device) -> io::Result<PathBuf> {
        self.export_spans(
            name,
            device.spans(),
            device.stats(),
            device.config().clock_ghz,
        )
    }

    /// [`TraceSink::export`] for a captured span log (e.g. the
    /// `PlanReport` snapshot of a device that has since been dropped).
    /// `aggregate` is the stats block the spans must reconcile against.
    ///
    /// # Errors
    ///
    /// Same contract as [`TraceSink::export`].
    pub fn export_spans(
        &self,
        name: &str,
        spans: &[Span],
        aggregate: &SimStats,
        clock_ghz: f64,
    ) -> io::Result<PathBuf> {
        reconcile(spans, aggregate).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let json = chrome_trace_json(spans, clock_ghz);
        let path = self.dir.join(format!("{name}.trace.json"));
        std::fs::write(&path, &json)?;
        let table = summary_table(&operator_summary(spans));
        std::fs::write(self.dir.join(format!("{name}.summary.txt")), table)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, label: &str, prov: &str, start: u64, cycles: u64, d: SimStats) -> Span {
        Span {
            id: 0,
            kind,
            label: label.into(),
            provenance: prov.into(),
            start_cycle: start,
            end_cycle: start + cycles,
            delta: d,
            engine: None,
        }
    }

    fn kernel_delta(cycles: u64, bytes: u64) -> SimStats {
        SimStats {
            kernel_launches: 1,
            gpu_cycles: cycles,
            global_access_cycles: cycles,
            global_bytes_read: bytes,
            ..SimStats::default()
        }
    }

    #[test]
    fn empty_span_list_exports_well_formed_json() {
        // Regression: the metadata lines used to leave a trailing comma
        // when no span events followed, producing syntactically invalid
        // JSON. An empty trace is still *semantically* empty — the
        // validator reports "no events", not a parse error.
        let json = chrome_trace_json(&[], 1.15);
        let err = validate_chrome_json(&json).unwrap_err();
        assert_eq!(err, "trace contains no events", "got: {err}");
    }

    #[test]
    fn reconcile_accepts_matching_and_rejects_drift() {
        let spans = vec![
            span(SpanKind::Kernel, "k0", "step0", 0, 10, kernel_delta(10, 64)),
            span(SpanKind::Kernel, "k1", "step1", 10, 5, kernel_delta(5, 32)),
        ];
        let mut agg = SimStats::default();
        agg.merge(&spans[0].delta);
        agg.merge(&spans[1].delta);
        assert!(reconcile(&spans, &agg).is_ok());

        agg.global_bytes_read += 1;
        let err = reconcile(&spans, &agg).unwrap_err();
        assert!(err.contains("global_bytes_read"), "{err}");
    }

    #[test]
    fn summary_groups_by_provenance_in_first_seen_order() {
        let spans = vec![
            span(
                SpanKind::Kernel,
                "b.compute",
                "step0:b",
                0,
                10,
                kernel_delta(10, 100),
            ),
            span(
                SpanKind::Kernel,
                "a.compute",
                "step1:a",
                10,
                5,
                kernel_delta(5, 50),
            ),
            span(
                SpanKind::Kernel,
                "b.gather",
                "step0:b",
                15,
                1,
                kernel_delta(1, 8),
            ),
            span(SpanKind::Fault, "fault", "", 16, 0, SimStats::default()),
        ];
        let rows = operator_summary(&spans);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].operator, "step0:b");
        assert_eq!(rows[0].kernels, 2);
        assert_eq!(rows[0].global_bytes, 108);
        assert_eq!(rows[1].operator, "step1:a");
        assert_eq!(rows[2].operator, "(unscoped)");
        assert_eq!(rows[2].faults, 1);
        let table = summary_table(&rows);
        assert!(table.contains("step0:b"));
    }

    #[test]
    fn chrome_json_is_valid_and_counts_events() {
        let spans = vec![
            span(
                SpanKind::Kernel,
                "k\"quoted\"",
                "p\\q",
                0,
                10,
                kernel_delta(10, 64),
            ),
            span(SpanKind::Alloc, "buf", "", 10, 0, SimStats::default()),
            span(
                SpanKind::Transfer,
                "HostToDevice",
                "stage-in",
                10,
                7,
                SimStats {
                    h2d_transfers: 1,
                    h2d_bytes: 64,
                    pcie_seconds: 1e-6,
                    ..SimStats::default()
                },
            ),
        ];
        let json = chrome_trace_json(&spans, 1.15);
        assert_eq!(validate_chrome_json(&json).unwrap(), 3);
    }

    #[test]
    fn streamed_spans_get_one_lane_per_engine() {
        // Three concurrent ops on three distinct engines must land on
        // three distinct rows (tids 3+), each with its own thread_name
        // metadata; an engine-less serial span keeps the legacy lane.
        let mut spans = vec![
            span(SpanKind::Kernel, "k", "q0", 0, 10, kernel_delta(10, 64)),
            span(SpanKind::Transfer, "h2d", "q1", 0, 8, SimStats::default()),
            span(SpanKind::Transfer, "d2h", "q2", 0, 6, SimStats::default()),
            span(SpanKind::Kernel, "serial", "", 20, 4, kernel_delta(4, 16)),
        ];
        spans[0].engine = Some(Engine::Compute(0));
        spans[1].engine = Some(Engine::CopyH2D);
        spans[2].engine = Some(Engine::CopyD2H);
        let json = chrome_trace_json(&spans, 1.15);
        validate_chrome_json(&json).unwrap();
        for lane in ["\"tid\":3", "\"tid\":4", "\"tid\":5"] {
            assert!(json.contains(lane), "missing {lane} in:\n{json}");
        }
        for name in ["engine:compute0", "engine:copy.h2d", "engine:copy.d2h"] {
            assert!(json.contains(name), "missing lane metadata {name}");
        }
        // The serial kernel stays on the fixed compute lane.
        assert!(json.contains("\"name\":\"serial\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":"));
        let serial_evt = json
            .lines()
            .find(|l| l.contains("\"name\":\"serial\""))
            .unwrap();
        assert!(serial_evt.contains("\"tid\":0"), "{serial_evt}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_json("").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[]}").is_err());
        // Event without "ph".
        assert!(validate_chrome_json("{\"traceEvents\":[{\"name\":\"x\",\"ts\":1}]}").is_err());
        // Event with a string ts.
        assert!(validate_chrome_json(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":\"1\"}]}"
        )
        .is_err());
        // Trailing garbage.
        assert!(validate_chrome_json(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"dur\":1}]} junk"
        )
        .is_err());
    }

    #[test]
    fn empty_trace_reconciles_with_empty_stats() {
        assert!(reconcile(&[], &SimStats::default()).is_ok());
        assert!(reconcile(&[], &kernel_delta(1, 1)).is_err());
    }
}
