//! A tiny JSON value parser for the bench-regression harness.
//!
//! The trace layer already carries a validating parser
//! ([`validate_json`](crate::validate_json)), but validation is all it
//! does — it never materializes values. The regression gate needs to
//! *compare* two `BENCH_*.json` documents metric-by-metric, so this
//! module parses JSON into a [`JsonValue`] tree. It is deliberately
//! minimal (the workspace carries no serde): numbers become `f64`,
//! objects preserve key order as written, and errors carry a byte
//! offset for debugging hand-rolled writers.

/// A parsed JSON value.
///
/// Objects are represented as ordered `(key, value)` pairs — the
/// documents we parse are written by our own deterministic exporters,
/// and preserving their order keeps diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries in document order, if it is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`JsonValue`] tree.
///
/// Rejects trailing garbage. Errors are human-readable and carry the
/// byte offset where parsing failed.
///
/// ```
/// use kw_gpu_sim::{parse_json, JsonValue};
/// let doc = parse_json("{\"rows\": [{\"qps\": 1.5}]}").unwrap();
/// let rows = doc.get("rows").unwrap().as_array().unwrap();
/// assert_eq!(rows[0].get("qps").unwrap().as_f64(), Some(1.5));
/// assert!(parse_json("{oops}").is_err());
/// ```
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|s| u32::from_str_radix(s, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (documents are valid UTF-8
                    // because they arrive as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\ny\"}, \"d\": true, \"e\": null}",
        )
        .unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("e"), Some(&JsonValue::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "123 456",
            "\"open",
            "{\"a\":}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn roundtrips_registry_export() {
        let mut m = crate::MetricsRegistry::default();
        m.inc("c", 7);
        m.set_gauge("g", 0.125);
        m.observe("h", 42);
        let doc = parse_json(&m.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.125)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("sum").unwrap().as_f64(), Some(42.0));
    }
}
