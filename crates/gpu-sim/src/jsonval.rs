//! A tiny JSON value parser for the bench-regression harness.
//!
//! The trace layer already carries a validating parser
//! ([`validate_json`](crate::validate_json)), but validation is all it
//! does — it never materializes values. The regression gate needs to
//! *compare* two `BENCH_*.json` documents metric-by-metric, so this
//! module parses JSON into a [`JsonValue`] tree. It is deliberately
//! minimal (the workspace carries no serde): numbers become `f64`,
//! objects preserve key order as written, and errors carry a byte
//! offset for debugging hand-rolled writers.

/// Maximum nesting depth [`parse_json`] accepts before reporting an
/// error instead of recursing further. Our exporters nest a handful of
/// levels; anything deeper is a malformed or adversarial document, and
/// bounding the recursion keeps the parser total (no stack overflow on
/// `[[[[…`).
pub const MAX_JSON_DEPTH: usize = 128;

/// A typed [`parse_json`] error: what went wrong and the byte offset
/// where the parser stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl JsonError {
    fn new(offset: usize, detail: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.detail, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Objects are represented as ordered `(key, value)` pairs — the
/// documents we parse are written by our own deterministic exporters,
/// and preserving their order keeps diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries in document order, if it is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`JsonValue`] tree.
///
/// Total over arbitrary input: malformed documents — including ones
/// nested deeper than [`MAX_JSON_DEPTH`] — yield a typed [`JsonError`]
/// carrying the byte offset where parsing failed, never a panic.
/// Rejects trailing garbage.
///
/// ```
/// use kw_gpu_sim::{parse_json, JsonValue};
/// let doc = parse_json("{\"rows\": [{\"qps\": 1.5}]}").unwrap();
/// let rows = doc.get("rows").unwrap().as_array().unwrap();
/// assert_eq!(rows[0].get("qps").unwrap().as_f64(), Some(1.5));
/// assert!(parse_json("{oops}").is_err());
/// ```
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(p.pos, "trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!("expected '{}'", b as char),
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_JSON_DEPTH {
            return Err(JsonError::new(
                self.pos,
                format!("nesting deeper than {MAX_JSON_DEPTH} levels"),
            ));
        }
        self.depth += 1;
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::new(
                self.pos,
                format!("unexpected '{}'", b as char),
            )),
            None => Err(JsonError::new(self.pos, "unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(self.pos, "bad literal"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::new(self.pos, "truncated \\u"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|s| u32::from_str_radix(s, 16).ok())
                                .ok_or_else(|| JsonError::new(self.pos, "bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The document arrived as
                    // &str, so every position is either a boundary or
                    // mid-scalar; `str::get` refuses mid-scalar slices,
                    // which cannot happen here because we only ever
                    // advance by whole scalars or over ASCII bytes.
                    let ch = self
                        .text
                        .get(self.pos..)
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| JsonError::new(self.pos, "bad UTF-8 boundary"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(JsonError::new(self.pos, "unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The scanned slice is ASCII by construction ('-', digits, '.',
        // 'e', 'E', '+'), so it is always valid UTF-8.
        let text = self.text.get(start..self.pos).unwrap_or("");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::new(start, format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\ny\"}, \"d\": true, \"e\": null}",
        )
        .unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("e"), Some(&JsonValue::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "123 456",
            "\"open",
            "{\"a\":}",
            "tru",
            "[1, 2",
            "\"bad \\u12",
            "\"bad \\q\"",
            "-",
            "1e",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse_json("{\"a\": nope}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"), "got: {err}");
        let err = parse_json("[1, 2] junk").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.detail.contains("trailing garbage"));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Far past MAX_JSON_DEPTH: must return an error, not blow the stack.
        let bomb = "[".repeat(100_000);
        let err = parse_json(&bomb).unwrap_err();
        assert!(err.detail.contains("nesting"), "got: {err}");
        // A document at a legal depth still parses.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH - 1),
            "]".repeat(MAX_JSON_DEPTH - 1)
        );
        assert!(parse_json(&deep).is_ok());
    }

    #[test]
    fn multibyte_strings_roundtrip() {
        let doc = parse_json("{\"k\": \"héllo — ∑ ✓\"}").unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some("héllo — ∑ ✓"));
    }

    #[test]
    fn roundtrips_registry_export() {
        let mut m = crate::MetricsRegistry::default();
        m.inc("c", 7);
        m.set_gauge("g", 0.125);
        m.observe("h", 42);
        let doc = parse_json(&m.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(0.125)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h.get("sum").unwrap().as_f64(), Some(42.0));
    }
}
