//! Device-side scratch arena: a bump/freelist sub-allocator carved from
//! one upfront [`MemoryTracker`](crate::MemoryTracker) reservation.
//!
//! The executor's per-step `alloc`/`free` round-trips show up as
//! O(steps × chunks) alloc/free spans in every trace, and each one is a
//! chance for a mid-plan OOM the admission predictor never signed off on.
//! An arena inverts the contract: the plan's *predicted* peak is reserved
//! once up front (one `Alloc` span), every input/staging/scratch/result
//! buffer is a span-free sub-allocation inside that reservation, and the
//! whole thing is returned with one `Free` span. A sub-allocation that does
//! not fit is a loud, typed [`SimError::ArenaOverflow`] — the misprediction
//! surfaces at the exact request that exceeded the envelope instead of as a
//! silent device-level OOM.
//!
//! The allocator is split in two layers:
//!
//! * [`ArenaLayout`] — the pure-accounting bump + first-fit-freelist
//!   policy, usable with an unbounded capacity as a *planner*: the
//!   admission predictor replays the executor's exact acquire/release
//!   schedule through an unbounded layout and reads the high-water mark
//!   off it, so the predicted peak and the executor's real footprint are
//!   the same computation by construction.
//! * [`ScratchArena`] — an [`ArenaLayout`] bound to a real backing
//!   [`BufferId`] on a device (see [`Device::create_arena`] /
//!   [`Device::release_arena`](crate::Device::release_arena)).
//!
//! Offsets are byte-granular: the simulator only accounts bytes, so there
//! is no alignment to model. `reset` rewinds the whole layout between
//! chunk iterations while preserving the high-water mark, which is how one
//! arena serves every chunk of an out-of-core run.
//!
//! [`Device::create_arena`]: crate::Device::create_arena
//!
//! # Examples
//!
//! ```
//! use kw_gpu_sim::ArenaLayout;
//!
//! let mut layout = ArenaLayout::bounded(1024);
//! let a = layout.acquire(512)?;
//! let b = layout.acquire(256)?;
//! layout.release(a)?;
//! // First fit reuses the freed range before growing the extent.
//! let c = layout.acquire(128)?;
//! assert_eq!(layout.high_water(), 768);
//! layout.release(b)?;
//! layout.release(c)?;
//! assert_eq!(layout.in_use(), 0);
//! # Ok::<(), kw_gpu_sim::SimError>(())
//! ```

use std::collections::HashMap;

use crate::error::{Result, SimError};
use crate::memory::BufferId;

/// A sub-allocation inside an arena: a handle, not a device buffer.
///
/// Slices emit no trace spans and never touch the device's
/// [`MemoryTracker`](crate::MemoryTracker) — the arena's single backing
/// reservation already accounts for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaSlice {
    slot: u64,
    bytes: u64,
}

impl ArenaSlice {
    /// Size of this sub-allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Point-in-time snapshot of an arena's accounting, reported by
/// [`Device::release_arena`](crate::Device::release_arena) and surfaced on
/// execution reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Bytes of the single upfront backing reservation.
    pub reservation: u64,
    /// Peak byte extent the layout ever reached (never exceeds
    /// `reservation` for a bounded arena).
    pub high_water: u64,
    /// Total sub-allocations served over the arena's lifetime.
    pub sub_allocs: u64,
    /// `reset()` calls over the arena's lifetime (one per chunk iteration
    /// in out-of-core runs).
    pub resets: u64,
}

/// The bump + first-fit-freelist allocation policy, as pure accounting.
///
/// Used bounded (backing a [`ScratchArena`]) or unbounded (as the
/// admission predictor's planner). The policy is deterministic: replaying
/// the same acquire/release sequence always produces the same offsets and
/// the same high-water mark, which is what lets the predictor and the
/// executor share it.
#[derive(Debug, Clone)]
pub struct ArenaLayout {
    capacity: u64,
    /// Bump cursor: the byte extent of the allocated region.
    cursor: u64,
    /// Freed ranges below the cursor, sorted by offset, adjacent ranges
    /// coalesced.
    free_blocks: Vec<(u64, u64)>,
    /// Live sub-allocations: slot id -> (offset, bytes).
    live: HashMap<u64, (u64, u64)>,
    next_slot: u64,
    in_use: u64,
    high_water: u64,
    sub_allocs: u64,
    resets: u64,
}

impl ArenaLayout {
    /// A layout that refuses to grow past `capacity` bytes.
    pub fn bounded(capacity: u64) -> Self {
        ArenaLayout {
            capacity,
            cursor: 0,
            free_blocks: Vec::new(),
            live: HashMap::new(),
            next_slot: 0,
            in_use: 0,
            high_water: 0,
            sub_allocs: 0,
            resets: 0,
        }
    }

    /// An unbounded planning layout: replay a schedule through it and read
    /// [`ArenaLayout::high_water`] to learn the reservation that schedule
    /// needs.
    pub fn planner() -> Self {
        Self::bounded(u64::MAX)
    }

    /// Sub-allocate `bytes`, reusing the first freed range that fits
    /// before growing the extent.
    ///
    /// # Errors
    ///
    /// [`SimError::ArenaOverflow`] when no freed range fits and growing
    /// the extent would exceed the capacity.
    pub fn acquire(&mut self, bytes: u64) -> Result<ArenaSlice> {
        let offset = if bytes == 0 {
            self.cursor
        } else if let Some(i) = self.free_blocks.iter().position(|&(_, sz)| sz >= bytes) {
            let (off, sz) = self.free_blocks[i];
            if sz == bytes {
                self.free_blocks.remove(i);
            } else {
                self.free_blocks[i] = (off + bytes, sz - bytes);
            }
            off
        } else {
            let off = self.cursor;
            let grown = off.checked_add(bytes).ok_or(SimError::ArenaOverflow {
                requested: bytes,
                free: self.capacity - self.in_use,
                reservation: self.capacity,
            })?;
            if grown > self.capacity {
                return Err(SimError::ArenaOverflow {
                    requested: bytes,
                    free: self.capacity - self.in_use,
                    reservation: self.capacity,
                });
            }
            self.cursor = grown;
            off
        };
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.cursor);
        self.sub_allocs += 1;
        let slot = self.next_slot;
        self.next_slot += 1;
        self.live.insert(slot, (offset, bytes));
        Ok(ArenaSlice { slot, bytes })
    }

    /// Return a sub-allocation to the arena, rolling the bump cursor back
    /// when the freed range (plus any trailing freed neighbours) ends at
    /// the extent, otherwise coalescing it into the freelist.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidBuffer`] when the slice was already released (or
    /// belongs to another arena generation after `reset`).
    pub fn release(&mut self, slice: ArenaSlice) -> Result<()> {
        let (offset, bytes) = self
            .live
            .remove(&slice.slot)
            .ok_or(SimError::InvalidBuffer { id: slice.slot })?;
        self.in_use -= bytes;
        if bytes == 0 {
            return Ok(());
        }
        if offset + bytes == self.cursor {
            self.cursor = offset;
            // Absorb any freed ranges that now end at the extent.
            while let Some(&(off, sz)) = self.free_blocks.last() {
                if off + sz == self.cursor {
                    self.cursor = off;
                    self.free_blocks.pop();
                } else {
                    break;
                }
            }
            return Ok(());
        }
        let i = self.free_blocks.partition_point(|&(off, _)| off < offset);
        self.free_blocks.insert(i, (offset, bytes));
        // Coalesce with the following block, then the preceding one.
        if i + 1 < self.free_blocks.len() {
            let (off, sz) = self.free_blocks[i];
            let (noff, nsz) = self.free_blocks[i + 1];
            if off + sz == noff {
                self.free_blocks[i] = (off, sz + nsz);
                self.free_blocks.remove(i + 1);
            }
        }
        if i > 0 {
            let (poff, psz) = self.free_blocks[i - 1];
            let (off, sz) = self.free_blocks[i];
            if poff + psz == off {
                self.free_blocks[i - 1] = (poff, psz + sz);
                self.free_blocks.remove(i);
            }
        }
        Ok(())
    }

    /// Rewind the whole layout — between chunk iterations — invalidating
    /// all live slices. The high-water mark and lifetime counters persist.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.free_blocks.clear();
        self.live.clear();
        self.in_use = 0;
        self.resets += 1;
    }

    /// Bytes currently sub-allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak byte extent ever reached (what a bounded arena must reserve to
    /// replay the schedule seen so far).
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Capacity bound of this layout (`u64::MAX` for planners).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live sub-allocation count.
    pub fn live_slices(&self) -> usize {
        self.live.len()
    }

    /// Total sub-allocations served.
    pub fn sub_allocs(&self) -> u64 {
        self.sub_allocs
    }

    /// `reset()` calls so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// An [`ArenaLayout`] bound to one backing device reservation.
///
/// Created by [`Device::create_arena`](crate::Device::create_arena) (one
/// `Alloc` span charges the whole reservation against the memory tracker)
/// and returned via
/// [`Device::release_arena`](crate::Device::release_arena) (one `Free`
/// span). Everything in between — `acquire`, `release`, `reset` — is pure
/// accounting with no spans and no tracker traffic, which is what drops a
/// fused plan's alloc/free span count to O(1).
#[derive(Debug)]
pub struct ScratchArena {
    backing: BufferId,
    layout: ArenaLayout,
}

impl ScratchArena {
    /// Bind `layout` to a backing buffer. Internal: use
    /// [`Device::create_arena`](crate::Device::create_arena).
    pub(crate) fn new(backing: BufferId, reservation: u64) -> Self {
        ScratchArena {
            backing,
            layout: ArenaLayout::bounded(reservation),
        }
    }

    /// The backing buffer id (consumed by
    /// [`Device::release_arena`](crate::Device::release_arena)).
    pub(crate) fn backing(&self) -> BufferId {
        self.backing
    }

    /// Sub-allocate `bytes` from the reservation.
    ///
    /// # Errors
    ///
    /// [`SimError::ArenaOverflow`] when the request exceeds what is left
    /// of the reservation — the loud form of an admission misprediction.
    pub fn acquire(&mut self, bytes: u64) -> Result<ArenaSlice> {
        self.layout.acquire(bytes)
    }

    /// Return a sub-allocation.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidBuffer`] on double release.
    pub fn release(&mut self, slice: ArenaSlice) -> Result<()> {
        self.layout.release(slice)
    }

    /// Rewind between chunk iterations; high-water mark persists.
    pub fn reset(&mut self) {
        self.layout.reset();
    }

    /// Bytes of the upfront reservation.
    pub fn reservation(&self) -> u64 {
        self.layout.capacity()
    }

    /// Bytes currently sub-allocated.
    pub fn in_use(&self) -> u64 {
        self.layout.in_use()
    }

    /// Peak byte extent reached so far — always `<= reservation()`.
    pub fn high_water(&self) -> u64 {
        self.layout.high_water()
    }

    /// Snapshot of the arena's accounting.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            reservation: self.layout.capacity(),
            high_water: self.layout.high_water(),
            sub_allocs: self.layout.sub_allocs(),
            resets: self.layout.resets(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_then_freelist_reuse() {
        let mut l = ArenaLayout::bounded(100);
        let a = l.acquire(40).unwrap();
        let b = l.acquire(30).unwrap();
        assert_eq!(l.high_water(), 70);
        l.release(a).unwrap();
        // First fit lands in the freed [0, 40) range, not at the cursor.
        let c = l.acquire(10).unwrap();
        assert_eq!(l.high_water(), 70, "reuse must not grow the extent");
        assert_eq!(l.in_use(), 40);
        l.release(b).unwrap();
        l.release(c).unwrap();
        assert_eq!(l.in_use(), 0);
    }

    #[test]
    fn tail_release_rolls_cursor_back() {
        let mut l = ArenaLayout::bounded(100);
        let a = l.acquire(40).unwrap();
        let b = l.acquire(30).unwrap();
        l.release(b).unwrap();
        // The extent rewinds, so the next acquire fits where b was.
        let c = l.acquire(60).unwrap();
        assert_eq!(l.high_water(), 100);
        l.release(c).unwrap();
        l.release(a).unwrap();
        // Releasing the base absorbs the trailing freelist into the bump
        // region: everything is reusable again.
        let d = l.acquire(100).unwrap();
        assert_eq!(l.high_water(), 100);
        l.release(d).unwrap();
    }

    #[test]
    fn coalescing_merges_adjacent_free_ranges() {
        let mut l = ArenaLayout::bounded(90);
        let a = l.acquire(30).unwrap();
        let b = l.acquire(30).unwrap();
        let c = l.acquire(30).unwrap();
        l.release(a).unwrap();
        l.release(b).unwrap(); // must merge with a's range
        let big = l.acquire(60).unwrap();
        assert_eq!(l.high_water(), 90, "coalesced range must satisfy 60B");
        l.release(big).unwrap();
        l.release(c).unwrap();
    }

    #[test]
    fn overflow_is_typed_and_capacity() {
        let mut l = ArenaLayout::bounded(50);
        let _a = l.acquire(40).unwrap();
        let err = l.acquire(20).unwrap_err();
        assert!(matches!(
            err,
            SimError::ArenaOverflow {
                requested: 20,
                free: 10,
                reservation: 50,
            }
        ));
        assert!(err.is_capacity());
        assert!(!err.is_transient());
    }

    #[test]
    fn double_release_is_invalid_buffer() {
        let mut l = ArenaLayout::bounded(10);
        let a = l.acquire(5).unwrap();
        l.release(a).unwrap();
        assert!(matches!(l.release(a), Err(SimError::InvalidBuffer { .. })));
    }

    #[test]
    fn reset_rewinds_but_high_water_persists() {
        let mut l = ArenaLayout::bounded(100);
        let _a = l.acquire(80).unwrap();
        l.reset();
        assert_eq!(l.in_use(), 0);
        assert_eq!(l.high_water(), 80);
        assert_eq!(l.resets(), 1);
        let b = l.acquire(100).unwrap();
        assert_eq!(l.high_water(), 100);
        l.release(b).unwrap();
    }

    #[test]
    fn zero_byte_acquires_are_free() {
        let mut l = ArenaLayout::bounded(0);
        let a = l.acquire(0).unwrap();
        assert_eq!(l.in_use(), 0);
        assert_eq!(l.high_water(), 0);
        l.release(a).unwrap();
    }

    #[test]
    fn planner_replay_matches_bounded_replay() {
        // The planner's high-water mark is exactly the reservation a
        // bounded layout needs to replay the same schedule.
        let schedule = |l: &mut ArenaLayout| -> Result<u64> {
            let a = l.acquire(64)?;
            let b = l.acquire(32)?;
            l.release(a)?;
            let c = l.acquire(16)?;
            let d = l.acquire(64)?;
            l.release(b)?;
            l.release(c)?;
            l.release(d)?;
            Ok(l.high_water())
        };
        let mut plan = ArenaLayout::planner();
        let predicted = schedule(&mut plan).unwrap();
        let mut real = ArenaLayout::bounded(predicted);
        let measured = schedule(&mut real).unwrap();
        assert_eq!(predicted, measured);
        // One byte less and the same schedule overflows loudly.
        let mut tight = ArenaLayout::bounded(predicted - 1);
        assert!(matches!(
            schedule(&mut tight),
            Err(SimError::ArenaOverflow { .. })
        ));
    }
}
