//! Global-memory allocation tracking.
//!
//! Figure 17 of the paper compares GPU global memory *allocated* with and
//! without kernel fusion; the tracker records current and peak usage and the
//! total bytes ever allocated, and enforces the device capacity (which is
//! what forces the paper's Figure 21 "large inputs" staging behaviour).

use std::collections::HashMap;

use crate::{Result, SimError};

/// Identifier of a device global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) u64);

impl BufferId {
    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Allocation {
    bytes: u64,
    label: String,
}

/// Tracks device global-memory allocations.
///
/// # Examples
///
/// ```
/// use kw_gpu_sim::MemoryTracker;
/// let mut mem = MemoryTracker::new(1 << 20);
/// let buf = mem.alloc(4096, "intermediate")?;
/// assert_eq!(mem.in_use(), 4096);
/// mem.free(buf)?;
/// assert_eq!(mem.in_use(), 0);
/// assert_eq!(mem.peak(), 4096);
/// # Ok::<(), kw_gpu_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryTracker {
    capacity: u64,
    next_id: u64,
    live: HashMap<u64, Allocation>,
    in_use: u64,
    peak: u64,
    total_allocated: u64,
    alloc_count: u64,
}

impl MemoryTracker {
    /// Create a tracker for a device with `capacity` bytes of global memory.
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            ..MemoryTracker::default()
        }
    }

    /// Allocate `bytes`, labelled for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the allocation would exceed
    /// device capacity.
    pub fn alloc(&mut self, bytes: u64, label: impl Into<String>) -> Result<BufferId> {
        let free = self.capacity - self.in_use;
        if bytes > free {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(
            id,
            Allocation {
                bytes,
                label: label.into(),
            },
        );
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.total_allocated += bytes;
        self.alloc_count += 1;
        Ok(BufferId(id))
    }

    /// Free a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for unknown or double-freed ids.
    pub fn free(&mut self, id: BufferId) -> Result<()> {
        match self.live.remove(&id.0) {
            Some(a) => {
                self.in_use -= a.bytes;
                Ok(())
            }
            None => Err(SimError::InvalidBuffer { id: id.0 }),
        }
    }

    /// Size of a live buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for unknown ids.
    pub fn size_of(&self, id: BufferId) -> Result<u64> {
        self.live
            .get(&id.0)
            .map(|a| a.bytes)
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    /// Label of a live buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBuffer`] for unknown ids.
    pub fn label_of(&self, id: BufferId) -> Result<&str> {
        self.live
            .get(&id.0)
            .map(|a| a.label.as_str())
            .ok_or(SimError::InvalidBuffer { id: id.0 })
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of concurrent allocation (the Figure 17 metric).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Fold an externally-observed high-water mark into this tracker's
    /// peak. Chunked execution holds its working set on a forked scratch
    /// device; the parent tracker must still report the true footprint
    /// (see [`crate::Device::absorb_scratch_peak`]).
    pub(crate) fn raise_peak(&mut self, bytes: u64) {
        self.peak = self.peak.max(bytes);
    }

    /// Total bytes ever allocated (ignoring frees).
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = MemoryTracker::new(1000);
        let a = m.alloc(400, "a").unwrap();
        let b = m.alloc(500, "b").unwrap();
        assert_eq!(m.in_use(), 900);
        assert_eq!(m.peak(), 900);
        m.free(a).unwrap();
        assert_eq!(m.in_use(), 500);
        let c = m.alloc(400, "c").unwrap();
        assert_eq!(m.peak(), 900);
        assert_eq!(m.total_allocated(), 1300);
        assert_eq!(m.alloc_count(), 3);
        m.free(b).unwrap();
        m.free(c).unwrap();
        assert_eq!(m.live_buffers(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MemoryTracker::new(100);
        let _a = m.alloc(80, "a").unwrap();
        assert_eq!(
            m.alloc(30, "b").unwrap_err(),
            SimError::OutOfMemory {
                requested: 30,
                free: 20
            }
        );
    }

    #[test]
    fn double_free_detected() {
        let mut m = MemoryTracker::new(100);
        let a = m.alloc(10, "a").unwrap();
        m.free(a).unwrap();
        assert!(m.free(a).is_err());
    }

    #[test]
    fn labels_and_sizes() {
        let mut m = MemoryTracker::new(100);
        let a = m.alloc(10, "intermediate").unwrap();
        assert_eq!(m.size_of(a).unwrap(), 10);
        assert_eq!(m.label_of(a).unwrap(), "intermediate");
    }
}
