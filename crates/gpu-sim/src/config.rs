//! Simulated device configurations.
//!
//! The default configuration models the NVIDIA Tesla C2050 (Fermi) used in
//! the paper's Table 2, with the published SM counts, per-SM resource limits
//! and bandwidths. All cost-model parameters live here so experiments can
//! ablate them.

/// Static description of a simulated GPU.
///
/// # Examples
///
/// ```
/// use kw_gpu_sim::DeviceConfig;
/// let c2050 = DeviceConfig::fermi_c2050();
/// assert_eq!(c2050.sm_count, 14);
/// assert!(c2050.global_bytes_per_cycle() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name of the device.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SIMD width of a warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: u32,
    /// Maximum threads per CTA.
    pub max_threads_per_cta: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Register allocation granularity (registers are allocated to warps in
    /// chunks of this many registers on Fermi).
    pub register_granularity: u32,
    /// Maximum registers addressable per thread.
    pub max_registers_per_thread: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Shared-memory allocation granularity, bytes.
    pub shared_granularity: u32,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Off-chip global memory capacity, bytes.
    pub global_mem_bytes: u64,
    /// Peak global-memory bandwidth, GB/s.
    pub global_bandwidth_gbs: f64,
    /// Aggregate shared-memory bandwidth relative to global (Fermi's on-chip
    /// scratchpad sustains roughly an order of magnitude more than DRAM).
    pub shared_bandwidth_ratio: f64,
    /// Aggregate ALU throughput, operations per cycle across the device.
    pub alu_ops_per_cycle: f64,
    /// Fixed cost of one kernel launch, cycles (driver + dispatch).
    pub kernel_launch_cycles: u64,
    /// Cost of one CTA-wide barrier synchronization, cycles.
    pub barrier_cycles: u64,
    /// Occupancy at which global-memory bandwidth saturates; below this the
    /// achieved bandwidth degrades linearly (latency is no longer hidden).
    pub bandwidth_saturation_occupancy: f64,
    /// PCIe bandwidth, GB/s (each direction).
    pub pcie_bandwidth_gbs: f64,
    /// PCIe per-transfer latency, microseconds.
    pub pcie_latency_us: f64,
    /// Number of compute engines for streamed kernel launches. Fermi has a
    /// single kernel dispatcher, so streamed kernels serialize (1); raising
    /// this models later hardware where kernels from different streams
    /// overlap. The H2D/D2H copy engines are always separate.
    pub compute_engines: u32,
}

impl DeviceConfig {
    /// The NVIDIA Tesla C2050 (Fermi) configuration of the paper's Table 2.
    pub fn fermi_c2050() -> DeviceConfig {
        DeviceConfig {
            name: "NVIDIA Tesla C2050 (simulated)",
            sm_count: 14,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            max_threads_per_cta: 1024,
            registers_per_sm: 32768,
            register_granularity: 64,
            max_registers_per_thread: 63,
            shared_mem_per_sm: 48 * 1024,
            shared_granularity: 128,
            clock_ghz: 1.15,
            global_mem_bytes: 3 * 1024 * 1024 * 1024,
            global_bandwidth_gbs: 144.0,
            shared_bandwidth_ratio: 8.0,
            alu_ops_per_cycle: 448.0,
            kernel_launch_cycles: 6_000,
            barrier_cycles: 8,
            bandwidth_saturation_occupancy: 0.25,
            pcie_bandwidth_gbs: 8.0,
            pcie_latency_us: 10.0,
            compute_engines: 1,
        }
    }

    /// A fused CPU+GPU die of the era the paper discusses in Section 2.3
    /// (Intel Sandy Bridge / AMD Fusion): the GPU shares system DDR3 with
    /// the CPU and "the PCIe bus is removed" — host↔device transfers are
    /// on-die copies at memory speed. Four of fusion's six benefits remain
    /// (all but *Reduction in PCIe Traffic* and *Larger Input Data*).
    pub fn fused_apu() -> DeviceConfig {
        DeviceConfig {
            name: "fused CPU+GPU APU (simulated)",
            sm_count: 5,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            clock_ghz: 0.6,
            global_mem_bytes: 2 * 1024 * 1024 * 1024,
            global_bandwidth_gbs: 25.6, // shared DDR3
            alu_ops_per_cycle: 160.0,
            // "PCIe" = on-die copy through the shared memory controller.
            pcie_bandwidth_gbs: 25.6,
            pcie_latency_us: 0.5,
            ..DeviceConfig::fermi_c2050()
        }
    }

    /// A CPU execution target (the paper's Section 6 "Different Platform":
    /// via an execution-model translator like Ocelot, fused kernels can run
    /// on the CPU, where the smaller-footprint and larger-optimization-scope
    /// benefits still apply). Modeled as a 4-core, 3 GHz part with desktop
    /// DDR3 bandwidth, a large cache standing in for shared memory, and no
    /// accelerator bus.
    pub fn cpu_like() -> DeviceConfig {
        DeviceConfig {
            name: "4-core CPU via Ocelot (simulated)",
            sm_count: 4,
            warp_size: 8, // SIMD lanes
            max_threads_per_sm: 64,
            max_warps_per_sm: 8,
            max_ctas_per_sm: 4,
            max_threads_per_cta: 64,
            registers_per_sm: 1 << 14,
            shared_mem_per_sm: 256 * 1024, // L2 slice as scratchpad
            clock_ghz: 3.0,
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            global_bandwidth_gbs: 21.0,
            shared_bandwidth_ratio: 6.0,
            alu_ops_per_cycle: 32.0,
            kernel_launch_cycles: 600, // a function call, not a driver trip
            pcie_bandwidth_gbs: 21.0,  // "transfers" are memcpys
            pcie_latency_us: 0.2,
            ..DeviceConfig::fermi_c2050()
        }
    }

    /// A small debug device (2 SMs, tiny memory) for tests that want to
    /// exercise capacity limits cheaply.
    pub fn tiny() -> DeviceConfig {
        DeviceConfig {
            name: "tiny test device",
            global_mem_bytes: 1024 * 1024,
            sm_count: 2,
            ..DeviceConfig::fermi_c2050()
        }
    }

    /// Global-memory bytes transferred per core cycle at peak bandwidth.
    pub fn global_bytes_per_cycle(&self) -> f64 {
        self.global_bandwidth_gbs / self.clock_ghz
    }

    /// Shared-memory bytes per cycle (aggregate).
    pub fn shared_bytes_per_cycle(&self) -> f64 {
        self.global_bytes_per_cycle() * self.shared_bandwidth_ratio
    }

    /// Convert core cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Convert seconds to core cycles.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.clock_ghz * 1e9).round() as u64
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::fermi_c2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_parameters() {
        let c = DeviceConfig::fermi_c2050();
        assert_eq!(c.max_warps_per_sm * c.warp_size, c.max_threads_per_sm);
        assert_eq!(c.shared_mem_per_sm, 49152);
        // ~125 bytes per cycle at 144 GB/s / 1.15 GHz.
        assert!((c.global_bytes_per_cycle() - 125.2).abs() < 0.5);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let c = DeviceConfig::fermi_c2050();
        let s = c.cycles_to_seconds(1_150_000_000);
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(c.seconds_to_cycles(1.0), 1_150_000_000);
    }

    #[test]
    fn tiny_is_small() {
        assert!(
            DeviceConfig::tiny().global_mem_bytes < DeviceConfig::fermi_c2050().global_mem_bytes
        );
    }

    #[test]
    fn apu_removes_the_pcie_gap() {
        let gpu = DeviceConfig::fermi_c2050();
        let apu = DeviceConfig::fused_apu();
        // Discrete: order-of-magnitude gap between DRAM and the bus.
        assert!(gpu.global_bandwidth_gbs / gpu.pcie_bandwidth_gbs > 10.0);
        // APU: transfers run at shared-memory speed.
        assert!((apu.global_bandwidth_gbs - apu.pcie_bandwidth_gbs).abs() < 1e-9);
        assert!(apu.global_bandwidth_gbs < gpu.global_bandwidth_gbs);
    }

    #[test]
    fn cpu_target_is_in_papers_band() {
        let gpu = DeviceConfig::fermi_c2050();
        let cpu = DeviceConfig::cpu_like();
        // The paper cites 4x-40x GPU-over-CPU for the baseline; the
        // bandwidth ratio (what memory-bound RA ops track) sits inside it.
        let ratio = gpu.global_bandwidth_gbs / cpu.global_bandwidth_gbs;
        assert!(ratio > 4.0 && ratio < 40.0, "{ratio}");
        assert!(cpu.kernel_launch_cycles < gpu.kernel_launch_cycles);
    }
}
