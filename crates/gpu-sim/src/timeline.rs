//! Execution event timeline.
//!
//! Every kernel launch, PCIe transfer and allocation is recorded in order,
//! which gives experiments a per-operator cost breakdown (e.g. "SORT is 71%
//! of TPC-H Q1" in the paper's Section 5.2).

use crate::Occupancy;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel execution.
    Kernel {
        /// Kernel label (operator/stage name).
        label: String,
        /// Total cycles charged.
        cycles: u64,
        /// Cycles charged to global-memory access.
        global_cycles: u64,
        /// Achieved occupancy.
        occupancy: Occupancy,
        /// CTAs in the grid.
        grid_ctas: u32,
        /// Threads per CTA.
        threads_per_cta: u32,
    },
    /// A PCIe transfer.
    Transfer {
        /// Direction of the transfer.
        direction: crate::Direction,
        /// Bytes moved.
        bytes: u64,
        /// Seconds taken.
        seconds: f64,
    },
    /// A device allocation.
    Alloc {
        /// Buffer label.
        label: String,
        /// Bytes allocated.
        bytes: u64,
    },
    /// A device free.
    Free {
        /// Bytes released.
        bytes: u64,
    },
    /// An injected fault (see [`crate::FaultInjector`]). The faulted
    /// operation was charged nothing; the fault itself is the record.
    Fault {
        /// The operation kind that faulted.
        kind: crate::FaultKind,
        /// What faulted (kernel/buffer label, or transfer direction).
        label: String,
    },
    /// Simulated wall-clock time spent backing off before a retry.
    Backoff {
        /// Seconds charged to the simulated clock.
        seconds: f64,
    },
}

impl Event {
    /// GPU cycles contributed by this event (zero for transfers and
    /// allocation bookkeeping).
    pub fn cycles(&self) -> u64 {
        match self {
            Event::Kernel { cycles, .. } => *cycles,
            _ => 0,
        }
    }

    /// The kernel label, if this event is a kernel.
    pub fn kernel_label(&self) -> Option<&str> {
        match self {
            Event::Kernel { label, .. } => Some(label),
            _ => None,
        }
    }
}

/// Whether `label` matches `needle` under delimiter-aware matching: either
/// the full label equals the needle, or the needle's `.`-separated segments
/// appear as a contiguous run of the label's segments.
///
/// Substring matching is deliberately *not* used: `"join"` must not count
/// `"n5.semijoin.compute"` kernels, which a `contains`-based filter silently
/// did.
///
/// ```
/// use kw_gpu_sim::label_matches;
/// assert!(label_matches("n7.sort.pass3", "sort"));
/// assert!(label_matches("n7.sort.pass3", "n7.sort"));
/// assert!(!label_matches("n5.semijoin.compute", "join"));
/// assert!(!label_matches("n7.sort.pass3", "sort.compute"));
/// ```
pub fn label_matches(label: &str, needle: &str) -> bool {
    if label == needle {
        return true;
    }
    let segs: Vec<&str> = label.split('.').collect();
    let want: Vec<&str> = needle.split('.').filter(|s| !s.is_empty()).collect();
    if want.is_empty() || want.len() > segs.len() {
        return false;
    }
    segs.windows(want.len()).any(|w| w == want.as_slice())
}

/// Sum the cycles of all kernels whose label matches `needle` (see
/// [`label_matches`] — exact segment matching, not substring).
pub fn cycles_for_label(events: &[Event], needle: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.kernel_label().is_some_and(|l| label_matches(l, needle)))
        .map(Event::cycles)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{occupancy, DeviceConfig};

    #[test]
    fn label_filtering() {
        let occ = occupancy(&DeviceConfig::fermi_c2050(), 256, 20, 0);
        let mk = |label: &str, cycles| Event::Kernel {
            label: label.into(),
            cycles,
            global_cycles: 0,
            occupancy: occ,
            grid_ctas: 1,
            threads_per_cta: 256,
        };
        let events = vec![
            mk("sort.partition", 10),
            mk("sort.compute", 20),
            mk("select.compute", 5),
            Event::Free { bytes: 1 },
        ];
        assert_eq!(cycles_for_label(&events, "sort"), 30);
        assert_eq!(cycles_for_label(&events, "select"), 5);
        assert_eq!(events[3].cycles(), 0);
    }

    #[test]
    fn matching_is_segment_exact_not_substring() {
        let occ = occupancy(&DeviceConfig::fermi_c2050(), 256, 20, 0);
        let mk = |label: &str, cycles| Event::Kernel {
            label: label.into(),
            cycles,
            global_cycles: 0,
            occupancy: occ,
            grid_ctas: 1,
            threads_per_cta: 256,
        };
        let events = vec![
            mk("n4.join.compute", 100),
            mk("n5.semijoin.compute", 10),
            mk("n6.antijoin.gather", 1),
        ];
        // "join" previously (substring matching) counted all three.
        assert_eq!(cycles_for_label(&events, "join"), 100);
        assert_eq!(cycles_for_label(&events, "semijoin"), 10);
        // Dotted needles match contiguous segment runs, with or without the
        // legacy surrounding dots.
        assert_eq!(cycles_for_label(&events, "n4.join"), 100);
        assert_eq!(cycles_for_label(&events, ".join."), 100);
        assert_eq!(cycles_for_label(&events, "join.gather"), 0);
        // A needle longer than the label never matches.
        assert!(!label_matches("sort", "n7.sort"));
        assert!(label_matches("sort", "sort"));
    }
}
