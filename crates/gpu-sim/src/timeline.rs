//! Execution event timeline.
//!
//! Every kernel launch, PCIe transfer and allocation is recorded in order,
//! which gives experiments a per-operator cost breakdown (e.g. "SORT is 71%
//! of TPC-H Q1" in the paper's Section 5.2).

use crate::Occupancy;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel execution.
    Kernel {
        /// Kernel label (operator/stage name).
        label: String,
        /// Total cycles charged.
        cycles: u64,
        /// Cycles charged to global-memory access.
        global_cycles: u64,
        /// Achieved occupancy.
        occupancy: Occupancy,
        /// CTAs in the grid.
        grid_ctas: u32,
        /// Threads per CTA.
        threads_per_cta: u32,
    },
    /// A PCIe transfer.
    Transfer {
        /// Direction of the transfer.
        direction: crate::Direction,
        /// Bytes moved.
        bytes: u64,
        /// Seconds taken.
        seconds: f64,
    },
    /// A device allocation.
    Alloc {
        /// Buffer label.
        label: String,
        /// Bytes allocated.
        bytes: u64,
    },
    /// A device free.
    Free {
        /// Bytes released.
        bytes: u64,
    },
    /// An injected fault (see [`crate::FaultInjector`]). The faulted
    /// operation was charged nothing; the fault itself is the record.
    Fault {
        /// The operation kind that faulted.
        kind: crate::FaultKind,
        /// What faulted (kernel/buffer label, or transfer direction).
        label: String,
    },
    /// Simulated wall-clock time spent backing off before a retry.
    Backoff {
        /// Seconds charged to the simulated clock.
        seconds: f64,
    },
}

impl Event {
    /// GPU cycles contributed by this event (zero for transfers and
    /// allocation bookkeeping).
    pub fn cycles(&self) -> u64 {
        match self {
            Event::Kernel { cycles, .. } => *cycles,
            _ => 0,
        }
    }

    /// The kernel label, if this event is a kernel.
    pub fn kernel_label(&self) -> Option<&str> {
        match self {
            Event::Kernel { label, .. } => Some(label),
            _ => None,
        }
    }
}

/// Sum the cycles of all kernels whose label contains `needle`.
pub fn cycles_for_label(events: &[Event], needle: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.kernel_label().is_some_and(|l| l.contains(needle)))
        .map(Event::cycles)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{occupancy, DeviceConfig};

    #[test]
    fn label_filtering() {
        let occ = occupancy(&DeviceConfig::fermi_c2050(), 256, 20, 0);
        let mk = |label: &str, cycles| Event::Kernel {
            label: label.into(),
            cycles,
            global_cycles: 0,
            occupancy: occ,
            grid_ctas: 1,
            threads_per_cta: 256,
        };
        let events = vec![
            mk("sort.partition", 10),
            mk("sort.compute", 20),
            mk("select.compute", 5),
            Event::Free { bytes: 1 },
        ];
        assert_eq!(cycles_for_label(&events, "sort"), 30);
        assert_eq!(cycles_for_label(&events, "select"), 5);
        assert_eq!(events[3].cycles(), 0);
    }
}
