//! Error type for the GPU simulator.

use std::fmt;

/// Errors produced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A global-memory allocation exceeded device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A buffer id was used after free (or never allocated).
    InvalidBuffer {
        /// The offending buffer id.
        id: u64,
    },
    /// A kernel was launched whose per-thread/per-CTA resources fit no CTA.
    InfeasibleLaunch {
        /// Human-readable description of the launch.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested} bytes, {free} free")
            }
            SimError::InvalidBuffer { id } => write!(f, "invalid device buffer id {id}"),
            SimError::InfeasibleLaunch { detail } => {
                write!(f, "kernel launch fits no CTA on an SM: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::InvalidBuffer { id: 3 }.to_string().is_empty());
        assert!(SimError::OutOfMemory { requested: 10, free: 5 }
            .to_string()
            .contains("10"));
    }
}
