//! Error type for the GPU simulator.

use crate::Direction;
use std::fmt;

/// Errors produced by the simulated device.
///
/// The injected-fault variants ([`SimError::TransferFault`],
/// [`SimError::LaunchFault`], [`SimError::AllocFault`]) are **transient**:
/// the same operation may succeed if retried. [`SimError::OutOfMemory`] is a
/// capacity miss — not transient, but recoverable by re-admitting the plan in
/// a cheaper execution mode. The remaining variants are program bugs and are
/// fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A global-memory allocation exceeded device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A buffer id was used after free (or never allocated).
    InvalidBuffer {
        /// The offending buffer id.
        id: u64,
    },
    /// A kernel was launched whose per-thread/per-CTA resources fit no CTA.
    InfeasibleLaunch {
        /// Human-readable description of the launch.
        detail: String,
    },
    /// An injected transient PCIe transfer failure.
    TransferFault {
        /// Direction of the failed transfer.
        direction: Direction,
        /// Bytes that were being moved.
        bytes: u64,
    },
    /// An injected transient kernel-launch failure.
    LaunchFault {
        /// Label of the kernel whose launch failed.
        label: String,
    },
    /// An injected transient allocation failure (the device had room; the
    /// allocation failed for a non-capacity reason and may succeed retried).
    AllocFault {
        /// Bytes requested.
        requested: u64,
    },
    /// A stream or event handle that does not belong to this device's
    /// stream model (stale after `reset_stats`, or from another device).
    InvalidStream {
        /// Human-readable description of the bad handle.
        detail: String,
    },
    /// A scratch-arena sub-allocation exceeded the arena's upfront
    /// reservation: the admission predictor under-estimated the plan's
    /// peak. Like [`SimError::OutOfMemory`] this is a capacity miss —
    /// recoverable by degrading to a cheaper execution mode — but it is
    /// *loud*: the misprediction surfaces here instead of as a silent
    /// mid-plan OOM against the whole device.
    ArenaOverflow {
        /// Bytes requested from the arena.
        requested: u64,
        /// Contiguous-insufficient bytes still unreserved in the arena.
        free: u64,
        /// The arena's total upfront reservation.
        reservation: u64,
    },
}

impl SimError {
    /// Whether retrying the same operation can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::TransferFault { .. }
                | SimError::LaunchFault { .. }
                | SimError::AllocFault { .. }
        )
    }

    /// Whether this is a capacity miss, recoverable by degrading to an
    /// execution mode with a smaller device footprint.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            SimError::OutOfMemory { .. } | SimError::ArenaOverflow { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} bytes, {free} free"
                )
            }
            SimError::InvalidBuffer { id } => write!(f, "invalid device buffer id {id}"),
            SimError::InfeasibleLaunch { detail } => {
                write!(f, "kernel launch fits no CTA on an SM: {detail}")
            }
            SimError::TransferFault { direction, bytes } => {
                write!(
                    f,
                    "transient PCIe fault: {direction:?} transfer of {bytes} bytes failed"
                )
            }
            SimError::LaunchFault { label } => {
                write!(
                    f,
                    "transient launch fault: kernel {label:?} rejected by driver"
                )
            }
            SimError::AllocFault { requested } => {
                write!(f, "transient allocation fault: {requested} bytes")
            }
            SimError::InvalidStream { detail } => {
                write!(f, "invalid stream or event handle: {detail}")
            }
            SimError::ArenaOverflow {
                requested,
                free,
                reservation,
            } => {
                write!(
                    f,
                    "scratch arena overflow: requested {requested} bytes with {free} \
                     free of a {reservation}-byte reservation (admission under-predicted \
                     the peak)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!SimError::InvalidBuffer { id: 3 }.to_string().is_empty());
        assert!(SimError::OutOfMemory {
            requested: 10,
            free: 5
        }
        .to_string()
        .contains("10"));
    }

    #[test]
    fn transient_taxonomy() {
        assert!(SimError::TransferFault {
            direction: Direction::HostToDevice,
            bytes: 8,
        }
        .is_transient());
        assert!(SimError::LaunchFault { label: "k".into() }.is_transient());
        assert!(SimError::AllocFault { requested: 8 }.is_transient());
        let oom = SimError::OutOfMemory {
            requested: 10,
            free: 5,
        };
        assert!(!oom.is_transient());
        assert!(oom.is_capacity());
        assert!(!SimError::InvalidBuffer { id: 1 }.is_transient());
        let bad_stream = SimError::InvalidStream {
            detail: "stream 9".into(),
        };
        assert!(!bad_stream.is_transient() && !bad_stream.is_capacity());
        let overflow = SimError::ArenaOverflow {
            requested: 64,
            free: 8,
            reservation: 32,
        };
        assert!(!overflow.is_transient());
        assert!(overflow.is_capacity());
        assert!(!SimError::InfeasibleLaunch {
            detail: String::new()
        }
        .is_capacity());
    }
}
