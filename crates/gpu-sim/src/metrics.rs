//! Deterministic metrics: counters, gauges, and log-bucketed histograms.
//!
//! The registry is the operational face of the simulator. The
//! [`Device`](crate::Device) publishes every span it records (kernel
//! launches, PCIe transfers, faults, backoff) into one
//! [`MetricsRegistry`], and the kw-core drivers layer their own series on
//! top (plans executed, retries, degradations, batch latency). Every
//! value is derived from the simulated cycle clock or from byte counts —
//! no wallclock ever enters the registry — so two identical seeded runs
//! export byte-identical snapshots. That byte-stability is what lets CI
//! diff benchmark metrics against committed baselines instead of
//! eyeballing them.
//!
//! Two exporters are provided:
//!
//! * [`MetricsRegistry::prometheus_text`] — Prometheus text exposition
//!   (`# TYPE` annotations, cumulative `le`-labelled histogram buckets,
//!   `_sum`/`_count` series), suitable for scraping or for a quick
//!   human read.
//! * [`MetricsRegistry::to_json`] — machine-readable JSON, hand-rolled
//!   like every other serializer in this workspace (no serde), with
//!   per-histogram `p50`/`p95`/`p99` precomputed for downstream tables.
//!
//! Histograms use fixed power-of-two buckets: bucket 0 holds the value
//! `0`, bucket `i` (for `i >= 1`) holds values in `[2^(i-1), 2^i - 1]`.
//! The bucket layout is independent of the data, so merging, diffing and
//! comparing histograms across runs is well-defined. Quantiles are
//! resolved to the *upper bound* of the bucket containing the requested
//! rank — a deterministic over-estimate that is within 2x of the true
//! value, which is plenty for a cycle-accurate simulator whose inputs
//! are themselves models.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::escape_json;

/// A fixed log2-bucketed histogram of `u64` observations (cycle counts,
/// byte counts).
///
/// Bucket 0 holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. The layout never depends on the observed data,
/// so identical runs produce identical histograms bucket-for-bucket.
///
/// ```
/// use kw_gpu_sim::Histogram;
/// let mut h = Histogram::default();
/// for v in [0, 1, 3, 900, 1000] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 1904);
/// // p50 resolves to the upper bound of the bucket holding the median.
/// assert_eq!(h.quantile(0.5), 3);
/// assert!(h.quantile(0.99) >= 1000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` = number of observations in bucket `i`.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

/// Bucket index for a value: 0 for 0, else the value's bit length.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending bucket order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// Deterministic quantile estimate: the inclusive upper bound of the
    /// bucket containing the `ceil(q * count)`-th observation (rank
    /// clamped to `[1, count]`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.counts.len().saturating_sub(1))
    }
}

/// A deterministic registry of named counters, gauges, and histograms.
///
/// Series are stored in `BTreeMap`s, so iteration — and therefore both
/// exporters — is in lexicographic name order regardless of publication
/// order. All mutation is by plain `&mut` access: the simulator is
/// single-threaded and the registry inherits its determinism from the
/// cycle clock that feeds it.
///
/// ```
/// use kw_gpu_sim::MetricsRegistry;
/// let mut m = MetricsRegistry::default();
/// m.inc("kw_kernels_total", 2);
/// m.set_gauge("kw_mem_in_use_bytes", 4096.0);
/// m.observe("kw_kernel_cycles", 900);
/// assert_eq!(m.counter("kw_kernels_total"), 2);
/// let text = m.prometheus_text();
/// assert!(text.contains("kw_kernels_total 2"));
/// kw_gpu_sim::validate_json(&m.to_json()).expect("exporter emits valid JSON");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `by` to the named counter, creating it at zero if absent.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation has been recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True if no series exist.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Drop every series (used by `Device::reset_stats`).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Prometheus text exposition of the whole registry.
    ///
    /// Counters first, then gauges, then histograms, each preceded by a
    /// `# TYPE` line. Histograms emit cumulative `le`-labelled buckets
    /// up to the highest non-empty bucket, a `+Inf` bucket, `_sum`, and
    /// `_count` — the standard Prometheus histogram shape. Output is
    /// byte-stable for identical registries.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", fmt_f64(*v));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// Machine-readable JSON snapshot of the whole registry.
    ///
    /// Shape: `{"counters": {..}, "gauges": {..}, "histograms": {name:
    /// {"count", "sum", "p50", "p95", "p99", "buckets": [{"le",
    /// "count"}, ..]}}}`. Buckets are cumulative, matching the
    /// Prometheus exposition. Byte-stable for identical registries.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), fmt_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                escape_json(name),
                h.count(),
                h.sum(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                cumulative += c;
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"count\": {cumulative}}}",
                    bucket_upper(i)
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// JSON/Prometheus-safe float formatting: Rust's shortest-roundtrip
/// `Display` for finite values, `0` for non-finite (which JSON cannot
/// represent; gauges in this workspace are byte counts and fractions, so
/// a non-finite value is already a bug upstream).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bound_the_max() {
        let mut h = Histogram::default();
        for v in 0..1000u64 {
            h.observe(v * 17);
        }
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 >= 999 * 17 / 2, "p99 way below the tail: {p99}");
        assert!(h.quantile(1.0) >= 999 * 17, "q=1.0 must cover the max");
        assert_eq!(Histogram::default().quantile(0.99), 0);
    }

    #[test]
    fn registry_exports_are_deterministic_and_ordered() {
        let build = |order_flip: bool| {
            let mut m = MetricsRegistry::default();
            let names = if order_flip { ["b", "a"] } else { ["a", "b"] };
            for n in names {
                m.inc(n, 3);
                m.observe(n, 42);
            }
            m.set_gauge("g", 0.25);
            m
        };
        let (m1, m2) = (build(false), build(true));
        assert_eq!(m1.prometheus_text(), m2.prometheus_text());
        assert_eq!(m1.to_json(), m2.to_json());
        assert!(m1.prometheus_text().contains("# TYPE a counter"));
        assert!(m1.prometheus_text().contains("a_bucket{le=\"+Inf\"} 1"));
        crate::validate_json(&m1.to_json()).expect("valid JSON");
    }

    #[test]
    fn histogram_sum_and_count_reconcile() {
        let mut m = MetricsRegistry::default();
        let values = [0u64, 5, 5, 900, 1 << 20];
        for v in values {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
        let bucket_total: u64 = h.buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, h.count(), "bucket counts must sum to count");
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MetricsRegistry::default();
        m.inc("c", 1);
        m.set_gauge("g", 1.0);
        m.observe("h", 1);
        assert!(!m.is_empty());
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.counter("c"), 0);
    }
}
