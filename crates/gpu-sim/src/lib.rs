//! An analytical GPU cost simulator standing in for the NVIDIA Fermi
//! hardware used by the Kernel Weaver paper (MICRO 2012).
//!
//! Every effect the paper measures — global-memory traffic, allocation
//! footprint, kernel-launch counts, occupancy loss from register/shared
//! pressure, PCIe transfer time — is modelled here as a cycle cost. Kernels
//! execute over real data elsewhere (the `kw-kernel-ir` crate) and report
//! their work *quantities*; this crate turns quantities into cycles via a
//! bandwidth / latency-hiding model calibrated to the Tesla C2050 of the
//! paper's Table 2.
//!
//! # Examples
//!
//! ```
//! use kw_gpu_sim::{Device, DeviceConfig, LaunchDims, KernelResources, KernelQuantities};
//!
//! let mut dev = Device::new(DeviceConfig::fermi_c2050());
//! let cost = dev.launch(
//!     "demo",
//!     LaunchDims::new(256, 256),
//!     KernelResources { registers_per_thread: 16, shared_per_cta: 0 },
//!     &KernelQuantities { global_bytes_read: 1 << 24, ..Default::default() },
//! )?;
//! println!("{} cycles at {:.0}% occupancy", cost.total_cycles(),
//!          cost.occupancy.occupancy * 100.0);
//! # Ok::<(), kw_gpu_sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod arena;
mod config;
mod cost;
mod device;
mod error;
mod fault;
mod jsonval;
mod memory;
mod metrics;
mod occupancy;
mod pcie;
mod stats;
mod stream;
mod timeline;
mod trace;

pub use arena::{ArenaLayout, ArenaSlice, ArenaStats, ScratchArena};
pub use config::DeviceConfig;
pub use cost::{kernel_cost, KernelCost, KernelQuantities, KernelResources, LaunchDims};
pub use device::Device;
pub use error::{Result, SimError};
pub use fault::{FaultConfig, FaultInjector, FaultKind, ScriptedFault};
pub use jsonval::{parse_json, JsonError, JsonValue, MAX_JSON_DEPTH};
pub use memory::{BufferId, MemoryTracker};
pub use metrics::{Histogram, MetricsRegistry};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use pcie::{pcie_seconds, Direction};
pub use stats::SimStats;
pub use stream::{Engine, EventId, StreamId, StreamModel, StreamOp};
pub use timeline::{cycles_for_label, label_matches, Event};
pub use trace::{
    chrome_trace_json, operator_summary, reconcile, sum_deltas, summary_table,
    validate_chrome_json, validate_json, OperatorSummary, Span, SpanKind, TraceSink,
};
