//! Execution statistics counters.
//!
//! These counters back the paper's measurements: global-memory access cycles
//! (Fig. 18), allocated memory (Fig. 17, via [`crate::MemoryTracker`]), PCIe
//! traffic and time (Fig. 21), kernel launch counts and barrier counts.

/// Aggregate counters for one simulated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Kernels launched.
    pub kernel_launches: u64,
    /// Cycles spent in kernel-launch overhead.
    pub launch_cycles: u64,
    /// Bytes read from global memory by kernels.
    pub global_bytes_read: u64,
    /// Bytes written to global memory by kernels.
    pub global_bytes_written: u64,
    /// Cycles attributed to global-memory access (the Fig. 18 metric).
    pub global_access_cycles: u64,
    /// Bytes read from shared memory.
    pub shared_bytes_read: u64,
    /// Bytes written to shared memory.
    pub shared_bytes_written: u64,
    /// Cycles attributed to shared-memory access.
    pub shared_access_cycles: u64,
    /// ALU operations executed.
    pub alu_ops: u64,
    /// Cycles attributed to ALU work.
    pub alu_cycles: u64,
    /// CTA-wide barrier synchronizations executed.
    pub barriers: u64,
    /// Cycles attributed to barriers.
    pub barrier_cycles: u64,
    /// Total GPU cycles (sum of all kernel costs).
    pub gpu_cycles: u64,
    /// Host-to-device PCIe transfers.
    pub h2d_transfers: u64,
    /// Host-to-device bytes.
    pub h2d_bytes: u64,
    /// Device-to-host PCIe transfers.
    pub d2h_transfers: u64,
    /// Device-to-host bytes.
    pub d2h_bytes: u64,
    /// Seconds spent on PCIe transfers.
    pub pcie_seconds: f64,
    /// Faults injected by the fault injector (all kinds).
    pub faults_injected: u64,
    /// Seconds spent in retry backoff, charged to the simulated clock.
    pub backoff_seconds: f64,
}

impl SimStats {
    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_bytes_read + self.global_bytes_written
    }

    /// Total PCIe bytes in both directions.
    pub fn pcie_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.kernel_launches += other.kernel_launches;
        self.launch_cycles += other.launch_cycles;
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.global_access_cycles += other.global_access_cycles;
        self.shared_bytes_read += other.shared_bytes_read;
        self.shared_bytes_written += other.shared_bytes_written;
        self.shared_access_cycles += other.shared_access_cycles;
        self.alu_ops += other.alu_ops;
        self.alu_cycles += other.alu_cycles;
        self.barriers += other.barriers;
        self.barrier_cycles += other.barrier_cycles;
        self.gpu_cycles += other.gpu_cycles;
        self.h2d_transfers += other.h2d_transfers;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_transfers += other.d2h_transfers;
        self.d2h_bytes += other.d2h_bytes;
        self.pcie_seconds += other.pcie_seconds;
        self.faults_injected += other.faults_injected;
        self.backoff_seconds += other.backoff_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            kernel_launches: 1,
            global_bytes_read: 10,
            pcie_seconds: 0.5,
            ..SimStats::default()
        };
        let b = SimStats {
            kernel_launches: 2,
            global_bytes_written: 5,
            pcie_seconds: 0.25,
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.kernel_launches, 3);
        assert_eq!(a.global_bytes(), 15);
        assert!((a.pcie_seconds - 0.75).abs() < 1e-12);
    }
}
