//! Execution statistics counters.
//!
//! These counters back the paper's measurements: global-memory access cycles
//! (Fig. 18), allocated memory (Fig. 17, via [`crate::MemoryTracker`]), PCIe
//! traffic and time (Fig. 21), kernel launch counts and barrier counts.

/// Aggregate counters for one simulated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Kernels launched.
    pub kernel_launches: u64,
    /// Cycles spent in kernel-launch overhead.
    pub launch_cycles: u64,
    /// Bytes read from global memory by kernels.
    pub global_bytes_read: u64,
    /// Bytes written to global memory by kernels.
    pub global_bytes_written: u64,
    /// Cycles attributed to global-memory access (the Fig. 18 metric).
    pub global_access_cycles: u64,
    /// Bytes read from shared memory.
    pub shared_bytes_read: u64,
    /// Bytes written to shared memory.
    pub shared_bytes_written: u64,
    /// Cycles attributed to shared-memory access.
    pub shared_access_cycles: u64,
    /// ALU operations executed.
    pub alu_ops: u64,
    /// Cycles attributed to ALU work.
    pub alu_cycles: u64,
    /// CTA-wide barrier synchronizations executed.
    pub barriers: u64,
    /// Cycles attributed to barriers.
    pub barrier_cycles: u64,
    /// Total GPU cycles (sum of all kernel costs).
    pub gpu_cycles: u64,
    /// Host-to-device PCIe transfers.
    pub h2d_transfers: u64,
    /// Host-to-device bytes.
    pub h2d_bytes: u64,
    /// Device-to-host PCIe transfers.
    pub d2h_transfers: u64,
    /// Device-to-host bytes.
    pub d2h_bytes: u64,
    /// Seconds spent on PCIe transfers.
    pub pcie_seconds: f64,
    /// Faults injected by the fault injector (all kinds).
    pub faults_injected: u64,
    /// Seconds spent in retry backoff, charged to the simulated clock.
    pub backoff_seconds: f64,
}

/// Apply `$op` (a method like `saturating_add`/`saturating_sub`) to every
/// `u64` counter pair and plain `$fop` to every `f64` pair.
macro_rules! for_each_counter {
    ($self:ident, $other:ident, $op:ident, $fop:tt) => {
        SimStats {
            kernel_launches: $self.kernel_launches.$op($other.kernel_launches),
            launch_cycles: $self.launch_cycles.$op($other.launch_cycles),
            global_bytes_read: $self.global_bytes_read.$op($other.global_bytes_read),
            global_bytes_written: $self.global_bytes_written.$op($other.global_bytes_written),
            global_access_cycles: $self.global_access_cycles.$op($other.global_access_cycles),
            shared_bytes_read: $self.shared_bytes_read.$op($other.shared_bytes_read),
            shared_bytes_written: $self.shared_bytes_written.$op($other.shared_bytes_written),
            shared_access_cycles: $self.shared_access_cycles.$op($other.shared_access_cycles),
            alu_ops: $self.alu_ops.$op($other.alu_ops),
            alu_cycles: $self.alu_cycles.$op($other.alu_cycles),
            barriers: $self.barriers.$op($other.barriers),
            barrier_cycles: $self.barrier_cycles.$op($other.barrier_cycles),
            gpu_cycles: $self.gpu_cycles.$op($other.gpu_cycles),
            h2d_transfers: $self.h2d_transfers.$op($other.h2d_transfers),
            h2d_bytes: $self.h2d_bytes.$op($other.h2d_bytes),
            d2h_transfers: $self.d2h_transfers.$op($other.d2h_transfers),
            d2h_bytes: $self.d2h_bytes.$op($other.d2h_bytes),
            pcie_seconds: $self.pcie_seconds $fop $other.pcie_seconds,
            faults_injected: $self.faults_injected.$op($other.faults_injected),
            backoff_seconds: $self.backoff_seconds $fop $other.backoff_seconds,
        }
    };
}

impl SimStats {
    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_bytes_read + self.global_bytes_written
    }

    /// Total PCIe bytes in both directions.
    pub fn pcie_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Accumulate another stats block into this one. Counter additions
    /// saturate: long chunked/retry accumulations clamp at `u64::MAX`
    /// instead of silently wrapping (and the drift is then caught by
    /// [`SimStats::cycles_consistent`] in debug builds).
    pub fn merge(&mut self, other: &SimStats) {
        *self = for_each_counter!(self, other, saturating_add, +);
    }

    /// The counter-wise difference `self - earlier` (saturating at zero).
    ///
    /// Counters only grow, so for two snapshots of the same device this is
    /// the cost charged between them — the per-span delta recorded by
    /// [`crate::Device`] tracing.
    pub fn diff(&self, earlier: &SimStats) -> SimStats {
        for_each_counter!(self, earlier, saturating_sub, -)
    }

    /// Whether `gpu_cycles` equals the sum of its component cycle counters
    /// (launch + global + shared + ALU + barrier). Holds for every honestly
    /// accumulated stats block; a saturated or hand-edited block breaks it.
    pub fn cycles_consistent(&self) -> bool {
        let parts = self
            .launch_cycles
            .checked_add(self.global_access_cycles)
            .and_then(|c| c.checked_add(self.shared_access_cycles))
            .and_then(|c| c.checked_add(self.alu_cycles))
            .and_then(|c| c.checked_add(self.barrier_cycles));
        parts == Some(self.gpu_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            kernel_launches: 1,
            global_bytes_read: 10,
            pcie_seconds: 0.5,
            ..SimStats::default()
        };
        let b = SimStats {
            kernel_launches: 2,
            global_bytes_written: 5,
            pcie_seconds: 0.25,
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.kernel_launches, 3);
        assert_eq!(a.global_bytes(), 15);
        assert!((a.pcie_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = SimStats {
            gpu_cycles: u64::MAX - 10,
            alu_ops: u64::MAX,
            ..SimStats::default()
        };
        let b = SimStats {
            gpu_cycles: 100,
            alu_ops: 1,
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.gpu_cycles, u64::MAX);
        assert_eq!(a.alu_ops, u64::MAX);
    }

    #[test]
    fn diff_recovers_merge() {
        let a = SimStats {
            kernel_launches: 3,
            gpu_cycles: 100,
            pcie_seconds: 1.5,
            ..SimStats::default()
        };
        let b = SimStats {
            kernel_launches: 1,
            gpu_cycles: 40,
            pcie_seconds: 0.5,
            ..SimStats::default()
        };
        let d = a.diff(&b);
        assert_eq!(d.kernel_launches, 2);
        assert_eq!(d.gpu_cycles, 60);
        assert!((d.pcie_seconds - 1.0).abs() < 1e-12);
        let mut back = b;
        back.merge(&d);
        assert_eq!(back.kernel_launches, a.kernel_launches);
        assert_eq!(back.gpu_cycles, a.gpu_cycles);
    }

    #[test]
    fn cycles_consistency() {
        assert!(SimStats::default().cycles_consistent());
        let ok = SimStats {
            launch_cycles: 10,
            global_access_cycles: 20,
            shared_access_cycles: 5,
            alu_cycles: 3,
            barrier_cycles: 2,
            gpu_cycles: 40,
            ..SimStats::default()
        };
        assert!(ok.cycles_consistent());
        let drifted = SimStats {
            gpu_cycles: 41,
            ..ok
        };
        assert!(!drifted.cycles_consistent());
    }
}
