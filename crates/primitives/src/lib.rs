//! The relational-algebra primitives library of the Kernel Weaver
//! reproduction.
//!
//! Provides the plan-level operator vocabulary ([`RaOp`]), the paper's
//! dependence classification (Section 4.1: thread / CTA / kernel, in
//! [`DependenceClass`]), and the multi-stage skeleton builders the compiler
//! instantiates — both the unfused library implementations
//! ([`build_unfused`]) and the per-operator compute steps ([`op_step`]) the
//! weaver stitches into fused kernels.
//!
//! # Examples
//!
//! ```
//! use kw_primitives::{consumer_class, build_unfused, DependenceClass, RaOp};
//! use kw_relational::{Predicate, Schema};
//!
//! let select = RaOp::Select { pred: Predicate::True };
//! assert_eq!(consumer_class(&select), DependenceClass::Thread);
//!
//! let join = RaOp::Join { key_len: 1 };
//! assert_eq!(consumer_class(&join), DependenceClass::Cta);
//!
//! let s = Schema::uniform_u32(2);
//! let gpu = build_unfused(&join, &[s.clone(), s], "demo.join")?;
//! assert!(gpu.body.is_streaming());
//! # Ok::<(), kw_primitives::IrBuildError>(())
//! ```

#![warn(missing_docs)]

mod build;
mod dependence;
mod ra_op;

use std::fmt;

pub use build::{build_unfused, op_step, partition_spec};
pub use dependence::{consumer_class, edge_class, is_fusible, producer_class, DependenceClass};
pub use ra_op::RaOp;

/// Error produced when a skeleton cannot be instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrBuildError {
    detail: String,
}

impl IrBuildError {
    /// Create a build error with the given description.
    pub fn new(detail: impl Into<String>) -> IrBuildError {
        IrBuildError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IrBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot build operator skeleton: {}", self.detail)
    }
}

impl std::error::Error for IrBuildError {}
