//! Producer–consumer dependence classification (the paper's Section 4.1,
//! Figure 8).
//!
//! The class of a producer→consumer edge decides where the intermediate
//! lives when the two operators are fused:
//!
//! * **Thread** — each consumer thread only needs its own producer thread's
//!   tuple: intermediates pass through registers, no synchronization.
//! * **Cta** — each consumer CTA needs the whole producer CTA's result:
//!   intermediates pass through shared memory behind a barrier.
//! * **Kernel** — the consumer needs *all* producer threads to finish
//!   (SORT, grouped AGGREGATE): fusion is infeasible, the intermediate
//!   makes a global-memory round trip.

use crate::RaOp;

/// The three dependence categories of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DependenceClass {
    /// Thread-to-thread dependence: fuse through registers.
    Thread,
    /// CTA-level dependence: fuse through shared memory with barriers.
    Cta,
    /// Kernel-level dependence: a global barrier; not fusible.
    Kernel,
}

/// The dependence class an operator imposes on data flowing *into* it —
/// i.e. how much of its producer's output one consumer thread/CTA needs.
pub fn consumer_class(op: &RaOp) -> DependenceClass {
    match op {
        RaOp::Select { .. } | RaOp::Project { .. } | RaOp::Map { .. } => DependenceClass::Thread,
        RaOp::Join { .. }
        | RaOp::Product
        | RaOp::SemiJoin { .. }
        | RaOp::AntiJoin { .. }
        | RaOp::Union
        | RaOp::Intersect
        | RaOp::Difference
        | RaOp::Unique => DependenceClass::Cta,
        RaOp::Sort { .. } | RaOp::Aggregate { .. } => DependenceClass::Kernel,
    }
}

/// The dependence class an operator imposes on data flowing *out* of it —
/// whether its output is available per-thread, per-CTA, or only after the
/// whole kernel completes.
pub fn producer_class(op: &RaOp) -> DependenceClass {
    match op {
        RaOp::Select { .. } | RaOp::Project { .. } | RaOp::Map { .. } => DependenceClass::Thread,
        RaOp::Join { .. }
        | RaOp::Product
        | RaOp::SemiJoin { .. }
        | RaOp::AntiJoin { .. }
        | RaOp::Union
        | RaOp::Intersect
        | RaOp::Difference
        | RaOp::Unique => DependenceClass::Cta,
        // SORT shuffles all data: consumers must wait for the whole kernel.
        RaOp::Sort { .. } | RaOp::Aggregate { .. } => DependenceClass::Kernel,
    }
}

/// The dependence class of the edge `producer → consumer`: the stricter of
/// the producer's output class and the consumer's input class.
pub fn edge_class(producer: &RaOp, consumer: &RaOp) -> DependenceClass {
    producer_class(producer).max(consumer_class(consumer))
}

/// Whether an operator can take part in fusion at all (Algorithm 1 removes
/// kernel-dependent operators from the graph before finding candidates).
pub fn is_fusible(op: &RaOp) -> bool {
    producer_class(op) != DependenceClass::Kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::Predicate;

    #[test]
    fn unary_elementwise_is_thread() {
        let sel = RaOp::Select {
            pred: Predicate::True,
        };
        assert_eq!(consumer_class(&sel), DependenceClass::Thread);
        assert_eq!(producer_class(&sel), DependenceClass::Thread);
    }

    #[test]
    fn binary_is_cta() {
        assert_eq!(
            consumer_class(&RaOp::Join { key_len: 1 }),
            DependenceClass::Cta
        );
        assert_eq!(consumer_class(&RaOp::Intersect), DependenceClass::Cta);
    }

    #[test]
    fn sort_is_kernel_and_not_fusible() {
        let sort = RaOp::Sort { attrs: vec![0] };
        assert_eq!(producer_class(&sort), DependenceClass::Kernel);
        assert!(!is_fusible(&sort));
        assert!(is_fusible(&RaOp::Join { key_len: 1 }));
    }

    #[test]
    fn edge_takes_stricter_class() {
        let sel = RaOp::Select {
            pred: Predicate::True,
        };
        let join = RaOp::Join { key_len: 1 };
        // select -> select: thread; select -> join: CTA; join -> select: CTA.
        assert_eq!(edge_class(&sel, &sel), DependenceClass::Thread);
        assert_eq!(edge_class(&sel, &join), DependenceClass::Cta);
        assert_eq!(edge_class(&join, &sel), DependenceClass::Cta);
        let sort = RaOp::Sort { attrs: vec![0] };
        assert_eq!(edge_class(&sort, &sel), DependenceClass::Kernel);
        assert_eq!(edge_class(&sel, &sort), DependenceClass::Kernel);
    }

    #[test]
    fn class_ordering() {
        assert!(DependenceClass::Thread < DependenceClass::Cta);
        assert!(DependenceClass::Cta < DependenceClass::Kernel);
    }
}
