//! The RA primitives library: canonical multi-stage skeletons.
//!
//! [`build_unfused`] instantiates the library implementation of a single
//! operator — the baseline the paper compares kernel fusion against ("the
//! implementation from the primitive library without fusion"). Each skeleton
//! follows Diamos et al.'s partition / compute / gather structure from
//! Section 3, e.g. SELECT = filter + stream compaction (Figure 7).
//!
//! [`op_step`] emits the single compute step an operator contributes to a
//! fused body; the weaver (in `kw-core`) surrounds it with loads, compacts,
//! barriers and stores according to the dependence classes involved.

use kw_kernel_ir::{GpuOperator, PartitionSpec, SlotDecl, SlotId, Space, Step};
use kw_relational::Schema;

use crate::{IrBuildError, RaOp};

/// Emit the compute step for `op` reading `srcs` and defining `dst`.
///
/// # Errors
///
/// Returns [`IrBuildError`] if `op` is kernel-dependent (SORT/AGGREGATE have
/// no streaming step) or the source count is wrong.
pub fn op_step(op: &RaOp, srcs: &[SlotId], dst: SlotId) -> Result<Step, IrBuildError> {
    if srcs.len() != op.arity() {
        return Err(IrBuildError::new(format!(
            "{} takes {} sources, got {}",
            op.mnemonic(),
            op.arity(),
            srcs.len()
        )));
    }
    Ok(match op {
        RaOp::Select { pred } => Step::Filter {
            src: srcs[0],
            pred: pred.clone(),
            dst,
        },
        RaOp::Project { attrs, key_arity } => Step::Project {
            src: srcs[0],
            attrs: attrs.clone(),
            key_arity: *key_arity,
            dst,
        },
        RaOp::Map { exprs, key_arity } => Step::Compute {
            src: srcs[0],
            exprs: exprs.clone(),
            key_arity: *key_arity,
            dst,
        },
        RaOp::Join { key_len } => Step::Join {
            left: srcs[0],
            right: srcs[1],
            key_len: *key_len,
            dst,
        },
        RaOp::Product => Step::Product {
            left: srcs[0],
            right: srcs[1],
            dst,
        },
        RaOp::SemiJoin { key_len } => Step::SemiJoin {
            left: srcs[0],
            right: srcs[1],
            key_len: *key_len,
            negated: false,
            dst,
        },
        RaOp::AntiJoin { key_len } => Step::SemiJoin {
            left: srcs[0],
            right: srcs[1],
            key_len: *key_len,
            negated: true,
            dst,
        },
        RaOp::Union => Step::SetOp {
            kind: kw_kernel_ir::SetOpKind::Union,
            left: srcs[0],
            right: srcs[1],
            dst,
        },
        RaOp::Intersect => Step::SetOp {
            kind: kw_kernel_ir::SetOpKind::Intersect,
            left: srcs[0],
            right: srcs[1],
            dst,
        },
        RaOp::Difference => Step::SetOp {
            kind: kw_kernel_ir::SetOpKind::Difference,
            left: srcs[0],
            right: srcs[1],
            dst,
        },
        RaOp::Unique => Step::Unique { src: srcs[0], dst },
        RaOp::Sort { .. } | RaOp::Aggregate { .. } => {
            return Err(IrBuildError::new(format!(
                "{} is kernel-dependent and has no streaming step",
                op.mnemonic()
            )))
        }
    })
}

/// The partition policy of the unfused skeleton for `op`.
pub fn partition_spec(op: &RaOp, inputs: &[Schema]) -> PartitionSpec {
    match op {
        RaOp::Select { .. } | RaOp::Project { .. } | RaOp::Map { .. } => PartitionSpec::Even,
        RaOp::Product => PartitionSpec::ReplicateRight,
        RaOp::Join { key_len } | RaOp::SemiJoin { key_len } | RaOp::AntiJoin { key_len } => {
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: *key_len,
            }
        }
        RaOp::Union | RaOp::Intersect | RaOp::Difference | RaOp::Unique => {
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: inputs.first().map_or(1, |s| s.key_arity().max(1)),
            }
        }
        RaOp::Sort { .. } | RaOp::Aggregate { .. } => PartitionSpec::Even,
    }
}

/// Build the unfused primitive-library implementation of `op`.
///
/// # Errors
///
/// Returns [`IrBuildError`] for schema-incompatible inputs.
///
/// # Examples
///
/// ```
/// use kw_primitives::{build_unfused, RaOp};
/// use kw_relational::{CmpOp, Predicate, Schema, Value};
///
/// let op = RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(10)) };
/// let gpu = build_unfused(&op, &[Schema::uniform_u32(4)], "q.select0")?;
/// assert_eq!(gpu.output_count(), 1);
/// # Ok::<(), kw_primitives::IrBuildError>(())
/// ```
pub fn build_unfused(
    op: &RaOp,
    inputs: &[Schema],
    label: impl Into<String>,
) -> Result<GpuOperator, IrBuildError> {
    let label = label.into();
    let input_refs: Vec<&Schema> = inputs.iter().collect();
    op.output_schema(&input_refs)
        .map_err(|e| IrBuildError::new(format!("{label}: {e}")))?;

    match op {
        RaOp::Sort { attrs } => {
            return Ok(GpuOperator::global_sort(
                label,
                inputs[0].clone(),
                attrs.clone(),
            ));
        }
        RaOp::Aggregate { group_by, aggs } => {
            return Ok(GpuOperator::global_aggregate(
                label,
                inputs[0].clone(),
                group_by.clone(),
                aggs.clone(),
            ));
        }
        _ => {}
    }

    let partition = partition_spec(op, inputs);
    let mut slots = Vec::new();
    let mut steps = Vec::new();

    match op {
        RaOp::Select { .. } => {
            slots.push(SlotDecl::new("in", Space::Register));
            slots.push(SlotDecl::new("matched", Space::Register));
            slots.push(SlotDecl::new("dense", Space::Shared));
            steps.push(Step::Load {
                input: 0,
                dst: SlotId(0),
            });
            steps.push(op_step(op, &[SlotId(0)], SlotId(1))?);
            steps.push(Step::Compact {
                src: SlotId(1),
                dst: SlotId(2),
            });
            steps.push(Step::Barrier);
            steps.push(Step::Store {
                src: SlotId(2),
                output: 0,
            });
        }
        RaOp::Project { .. } | RaOp::Map { .. } => {
            // Dense elementwise transforms store straight from registers.
            slots.push(SlotDecl::new("in", Space::Register));
            slots.push(SlotDecl::new("out", Space::Register));
            steps.push(Step::Load {
                input: 0,
                dst: SlotId(0),
            });
            steps.push(op_step(op, &[SlotId(0)], SlotId(1))?);
            steps.push(Step::Store {
                src: SlotId(1),
                output: 0,
            });
        }
        RaOp::Join { .. }
        | RaOp::Product
        | RaOp::SemiJoin { .. }
        | RaOp::AntiJoin { .. }
        | RaOp::Union
        | RaOp::Intersect
        | RaOp::Difference => {
            slots.push(SlotDecl::new("left", Space::Shared));
            slots.push(SlotDecl::new("right", Space::Shared));
            slots.push(SlotDecl::new("out", Space::Shared));
            steps.push(Step::Load {
                input: 0,
                dst: SlotId(0),
            });
            steps.push(Step::Load {
                input: 1,
                dst: SlotId(1),
            });
            steps.push(Step::Barrier);
            steps.push(op_step(op, &[SlotId(0), SlotId(1)], SlotId(2))?);
            steps.push(Step::Barrier);
            steps.push(Step::Store {
                src: SlotId(2),
                output: 0,
            });
        }
        RaOp::Unique => {
            slots.push(SlotDecl::new("in", Space::Shared));
            slots.push(SlotDecl::new("out", Space::Shared));
            steps.push(Step::Load {
                input: 0,
                dst: SlotId(0),
            });
            steps.push(Step::Barrier);
            steps.push(op_step(op, &[SlotId(0)], SlotId(1))?);
            steps.push(Step::Barrier);
            steps.push(Step::Store {
                src: SlotId(1),
                output: 0,
            });
        }
        RaOp::Sort { .. } | RaOp::Aggregate { .. } => unreachable!("handled above"),
    }

    Ok(GpuOperator::streaming(
        label,
        inputs.to_vec(),
        1,
        slots,
        steps,
        partition,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_gpu_sim::{Device, DeviceConfig};
    use kw_kernel_ir::{execute, validate, OptLevel};
    use kw_relational::ops::AggFn;
    use kw_relational::{gen, ops, CmpOp, Predicate, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    #[test]
    fn all_unfused_skeletons_validate() {
        let s4 = Schema::uniform_u32(4);
        let ops: Vec<(RaOp, Vec<Schema>)> = vec![
            (
                RaOp::Select {
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(10)),
                },
                vec![s4.clone()],
            ),
            (
                RaOp::Project {
                    attrs: vec![0, 1],
                    key_arity: 1,
                },
                vec![s4.clone()],
            ),
            (
                RaOp::Map {
                    exprs: vec![kw_relational::Expr::attr(0)],
                    key_arity: 1,
                },
                vec![s4.clone()],
            ),
            (RaOp::Join { key_len: 1 }, vec![s4.clone(), s4.clone()]),
            (RaOp::Product, vec![s4.clone(), s4.clone()]),
            (RaOp::Union, vec![s4.clone(), s4.clone()]),
            (RaOp::Intersect, vec![s4.clone(), s4.clone()]),
            (RaOp::Difference, vec![s4.clone(), s4.clone()]),
            (RaOp::Unique, vec![s4.clone()]),
            (RaOp::Sort { attrs: vec![1] }, vec![s4.clone()]),
            (
                RaOp::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggFn::Count],
                },
                vec![s4.clone()],
            ),
        ];
        for (op, inputs) in ops {
            let gpu = build_unfused(&op, &inputs, op.mnemonic()).unwrap();
            validate(&gpu).unwrap_or_else(|e| panic!("{}: {e}", op.mnemonic()));
        }
    }

    #[test]
    fn every_streaming_primitive_matches_oracle() {
        let a = gen::micro_input(3000, 1);
        let b = gen::micro_input(300, 2);
        let cases: Vec<(RaOp, Vec<&kw_relational::Relation>)> = vec![
            (
                RaOp::Select {
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 3)),
                },
                vec![&a],
            ),
            (
                RaOp::Project {
                    attrs: vec![0, 2],
                    key_arity: 1,
                },
                vec![&a],
            ),
            (RaOp::Join { key_len: 1 }, vec![&a, &b]),
            (RaOp::Product, vec![&b, &b]),
            (RaOp::Union, vec![&a, &b]),
            (RaOp::Intersect, vec![&a, &a]),
            (RaOp::Difference, vec![&a, &b]),
            (RaOp::Unique, vec![&a]),
        ];
        for (op, inputs) in cases {
            let schemas: Vec<Schema> = inputs.iter().map(|r| r.schema().clone()).collect();
            let gpu = build_unfused(&op, &schemas, op.mnemonic()).unwrap();
            let mut dev = device();
            let got = execute(&gpu, &inputs, &mut dev, OptLevel::O3)
                .unwrap_or_else(|e| panic!("{}: {e}", op.mnemonic()));
            let want = match &op {
                RaOp::Select { pred } => ops::select(inputs[0], pred).unwrap(),
                RaOp::Project { attrs, key_arity } => {
                    ops::project(inputs[0], attrs, *key_arity).unwrap()
                }
                RaOp::Join { key_len } => ops::join(inputs[0], inputs[1], *key_len).unwrap(),
                RaOp::Product => ops::product(inputs[0], inputs[1]).unwrap(),
                RaOp::Union => ops::union(inputs[0], inputs[1]).unwrap(),
                RaOp::Intersect => ops::intersect(inputs[0], inputs[1]).unwrap(),
                RaOp::Difference => ops::difference(inputs[0], inputs[1]).unwrap(),
                RaOp::Unique => ops::unique(inputs[0]).unwrap(),
                _ => unreachable!(),
            };
            assert_eq!(got.outputs[0], want, "{} mismatch", op.mnemonic());
        }
    }

    #[test]
    fn kernel_dependent_ops_have_no_step() {
        assert!(op_step(&RaOp::Sort { attrs: vec![0] }, &[SlotId(0)], SlotId(1)).is_err());
        let err = op_step(&RaOp::Join { key_len: 1 }, &[SlotId(0)], SlotId(1)).unwrap_err();
        assert!(err.to_string().contains("sources"));
    }

    #[test]
    fn bad_schema_rejected_at_build() {
        let op = RaOp::Select {
            pred: Predicate::cmp(9, CmpOp::Lt, Value::U32(1)),
        };
        assert!(build_unfused(&op, &[Schema::uniform_u32(2)], "x").is_err());
    }
}
