//! Plan-level relational algebra operators (the paper's Table 1 plus the
//! Section 4.4 arithmetic extension).

use std::fmt;

use kw_relational::ops::AggFn;
use kw_relational::{Expr, Predicate, Result, Schema};

/// A relational algebra operator as it appears in a query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RaOp {
    /// Filter by a predicate.
    Select {
        /// The selection predicate.
        pred: Predicate,
    },
    /// Keep a subset of attributes.
    Project {
        /// Attribute indices to keep, in order.
        attrs: Vec<usize>,
        /// Key arity of the result.
        key_arity: usize,
    },
    /// Per-tuple arithmetic (the paper's §4.4 extension).
    Map {
        /// One expression per output attribute.
        exprs: Vec<Expr>,
        /// Key arity of the result.
        key_arity: usize,
    },
    /// Join on the first `key_len` attributes.
    Join {
        /// Join key length.
        key_len: usize,
    },
    /// Cross product.
    Product,
    /// Semi-join (`EXISTS`): left tuples whose first `key_len` attributes
    /// match some right tuple.
    SemiJoin {
        /// Key prefix length.
        key_len: usize,
    },
    /// Anti-join (`NOT EXISTS`): left tuples whose first `key_len`
    /// attributes match no right tuple.
    AntiJoin {
        /// Key prefix length.
        key_len: usize,
    },
    /// Keyed set union.
    Union,
    /// Keyed set intersection.
    Intersect,
    /// Keyed set difference.
    Difference,
    /// Duplicate elimination.
    Unique,
    /// Global sort on the given attributes (kernel-dependent).
    Sort {
        /// Attributes that become the new leading key.
        attrs: Vec<usize>,
    },
    /// Grouped aggregation (kernel-dependent).
    Aggregate {
        /// Grouping attributes.
        group_by: Vec<usize>,
        /// Aggregates per group.
        aggs: Vec<AggFn>,
    },
}

impl RaOp {
    /// Number of input relations the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            RaOp::Select { .. }
            | RaOp::Project { .. }
            | RaOp::Map { .. }
            | RaOp::Unique
            | RaOp::Sort { .. }
            | RaOp::Aggregate { .. } => 1,
            RaOp::Join { .. }
            | RaOp::Product
            | RaOp::SemiJoin { .. }
            | RaOp::AntiJoin { .. }
            | RaOp::Union
            | RaOp::Intersect
            | RaOp::Difference => 2,
        }
    }

    /// Short mnemonic used in labels.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            RaOp::Select { .. } => "select",
            RaOp::Project { .. } => "project",
            RaOp::Map { .. } => "map",
            RaOp::Join { .. } => "join",
            RaOp::Product => "product",
            RaOp::SemiJoin { .. } => "semijoin",
            RaOp::AntiJoin { .. } => "antijoin",
            RaOp::Union => "union",
            RaOp::Intersect => "intersect",
            RaOp::Difference => "difference",
            RaOp::Unique => "unique",
            RaOp::Sort { .. } => "sort",
            RaOp::Aggregate { .. } => "aggregate",
        }
    }

    /// The output schema given the input schemas.
    ///
    /// # Errors
    ///
    /// Returns a [`kw_relational::RelationalError`] when the operator is
    /// applied to incompatible schemas.
    pub fn output_schema(&self, inputs: &[&Schema]) -> Result<Schema> {
        use kw_relational::RelationalError;
        let need = self.arity();
        if inputs.len() != need {
            return Err(RelationalError::SchemaMismatch {
                detail: format!(
                    "{} takes {need} inputs, got {}",
                    self.mnemonic(),
                    inputs.len()
                ),
            });
        }
        match self {
            RaOp::Select { pred } => {
                pred.validate(inputs[0])?;
                Ok(inputs[0].clone())
            }
            RaOp::Project { attrs, key_arity } => {
                // A streaming PROJECT cannot re-key a relation: keeping the
                // output key-sorted requires the claimed key to be a prefix
                // of the input key (a global reorder needs a SORT node).
                for i in 0..*key_arity {
                    if attrs.get(i) != Some(&i) {
                        return Err(RelationalError::SchemaMismatch {
                            detail: format!(
                                "PROJECT key attribute {i} is not input attribute {i}; \
                                 re-keying requires an explicit SORT"
                            ),
                        });
                    }
                }
                inputs[0].project(attrs, *key_arity)
            }
            RaOp::Map { exprs, key_arity } => {
                if exprs.is_empty() || *key_arity > exprs.len() {
                    return Err(RelationalError::BadKeyArity {
                        key_arity: *key_arity,
                        arity: exprs.len(),
                    });
                }
                // Same rule as PROJECT: key outputs must pass the input key
                // through unchanged.
                for (i, e) in exprs.iter().take(*key_arity).enumerate() {
                    if *e != Expr::Attr(i) {
                        return Err(RelationalError::SchemaMismatch {
                            detail: format!(
                                "MAP key output {i} is not input attribute {i}; \
                                 re-keying requires an explicit SORT"
                            ),
                        });
                    }
                }
                let attrs = exprs
                    .iter()
                    .map(|e| e.result_type(inputs[0]))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Schema::new(attrs, *key_arity))
            }
            RaOp::Join { key_len } => {
                kw_relational::ops::join_schema(inputs[0], inputs[1], *key_len)
            }
            RaOp::Product => {
                let mut attrs = inputs[0].attrs().to_vec();
                attrs.extend_from_slice(inputs[1].attrs());
                Ok(Schema::new(attrs, inputs[0].key_arity()))
            }
            RaOp::SemiJoin { key_len } | RaOp::AntiJoin { key_len } => {
                if *key_len == 0
                    || *key_len > inputs[0].key_arity()
                    || *key_len > inputs[1].key_arity()
                {
                    return Err(RelationalError::BadKeyArity {
                        key_arity: *key_len,
                        arity: inputs[0].key_arity().min(inputs[1].key_arity()),
                    });
                }
                for k in 0..*key_len {
                    if inputs[0].attr(k) != inputs[1].attr(k) {
                        return Err(RelationalError::SchemaMismatch {
                            detail: format!("semi/anti-join key attribute {k} type mismatch"),
                        });
                    }
                }
                Ok(inputs[0].clone())
            }
            RaOp::Union | RaOp::Intersect | RaOp::Difference => {
                if inputs[0] != inputs[1] {
                    return Err(RelationalError::SchemaMismatch {
                        detail: format!("set operation on {} and {}", inputs[0], inputs[1]),
                    });
                }
                Ok(inputs[0].clone())
            }
            RaOp::Unique => Ok(inputs[0].clone()),
            RaOp::Sort { attrs } => {
                let mut order = attrs.clone();
                for a in 0..inputs[0].arity() {
                    if !attrs.contains(&a) {
                        order.push(a);
                    }
                }
                inputs[0].project(&order, attrs.len().max(1).min(order.len()))
            }
            RaOp::Aggregate { group_by, aggs } => {
                // Reuse kernel-ir's inference via a schema-only computation.
                agg_schema(inputs[0], group_by, aggs)
            }
        }
    }
}

fn agg_schema(input: &Schema, group_by: &[usize], aggs: &[AggFn]) -> Result<Schema> {
    use kw_relational::{AttrType, RelationalError};
    let mut attrs = Vec::new();
    for &g in group_by {
        if g >= input.arity() {
            return Err(RelationalError::AttrOutOfBounds {
                attr: g,
                arity: input.arity(),
            });
        }
        attrs.push(input.attr(g));
    }
    for agg in aggs {
        let t = match agg {
            AggFn::Count => AttrType::U64,
            AggFn::Avg(_) => AttrType::F32,
            AggFn::Sum(a) => {
                check_attr(input, *a)?;
                if input.attr(*a) == AttrType::F32 {
                    AttrType::F32
                } else {
                    AttrType::U64
                }
            }
            AggFn::Min(a) | AggFn::Max(a) => {
                check_attr(input, *a)?;
                input.attr(*a)
            }
        };
        attrs.push(t);
    }
    if attrs.is_empty() {
        return Err(RelationalError::BadKeyArity {
            key_arity: 0,
            arity: 0,
        });
    }
    Ok(Schema::new(attrs, group_by.len()))
}

fn check_attr(s: &Schema, a: usize) -> Result<()> {
    if a >= s.arity() {
        return Err(kw_relational::RelationalError::AttrOutOfBounds {
            attr: a,
            arity: s.arity(),
        });
    }
    Ok(())
}

impl fmt::Display for RaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaOp::Select { pred } => write!(f, "SELECT[{pred}]"),
            RaOp::Project { attrs, .. } => write!(f, "PROJECT{attrs:?}"),
            RaOp::Map { exprs, .. } => write!(f, "MAP[{} exprs]", exprs.len()),
            RaOp::Join { key_len } => write!(f, "JOIN[key={key_len}]"),
            RaOp::Product => write!(f, "PRODUCT"),
            RaOp::SemiJoin { key_len } => write!(f, "SEMIJOIN[key={key_len}]"),
            RaOp::AntiJoin { key_len } => write!(f, "ANTIJOIN[key={key_len}]"),
            RaOp::Union => write!(f, "UNION"),
            RaOp::Intersect => write!(f, "INTERSECT"),
            RaOp::Difference => write!(f, "DIFFERENCE"),
            RaOp::Unique => write!(f, "UNIQUE"),
            RaOp::Sort { attrs } => write!(f, "SORT{attrs:?}"),
            RaOp::Aggregate { group_by, .. } => write!(f, "AGGREGATE{group_by:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{CmpOp, Value};

    #[test]
    fn arities() {
        assert_eq!(
            RaOp::Select {
                pred: Predicate::True
            }
            .arity(),
            1
        );
        assert_eq!(RaOp::Join { key_len: 1 }.arity(), 2);
        assert_eq!(RaOp::Union.arity(), 2);
    }

    #[test]
    fn output_schemas() {
        let s = Schema::uniform_u32(4);
        let sel = RaOp::Select {
            pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1)),
        };
        assert_eq!(sel.output_schema(&[&s]).unwrap(), s);

        let proj = RaOp::Project {
            attrs: vec![0, 1],
            key_arity: 1,
        };
        assert_eq!(proj.output_schema(&[&s]).unwrap().arity(), 2);

        let join = RaOp::Join { key_len: 1 };
        assert_eq!(join.output_schema(&[&s, &s]).unwrap().arity(), 7);

        let agg = RaOp::Aggregate {
            group_by: vec![0],
            aggs: vec![AggFn::Count],
        };
        assert_eq!(agg.output_schema(&[&s]).unwrap().arity(), 2);
    }

    #[test]
    fn wrong_input_count_rejected() {
        let s = Schema::uniform_u32(2);
        assert!(RaOp::Product.output_schema(&[&s]).is_err());
        assert!(RaOp::Unique.output_schema(&[&s, &s]).is_err());
    }

    #[test]
    fn display_nonempty() {
        assert!(RaOp::Product.to_string().contains("PRODUCT"));
        assert!(RaOp::Sort { attrs: vec![1] }.to_string().contains('1'));
    }
}
