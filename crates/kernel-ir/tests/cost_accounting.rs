//! Exact cost-accounting regressions: pin the traffic arithmetic that every
//! figure's ratios are built from. If these numbers drift, the reproduced
//! figures drift with them.

use kw_gpu_sim::{Device, DeviceConfig};
use kw_kernel_ir::{execute, GpuOperator, OptLevel, PartitionSpec, SlotDecl, SlotId, Space, Step};
use kw_relational::{CmpOp, Predicate, Relation, Schema, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// A relation of n 16-byte tuples with keys 0..n and attr1 = key % 2.
fn half_relation(n: u64) -> Relation {
    let words: Vec<u64> = (0..n).flat_map(|k| vec![k, k % 2, 7, 9]).collect();
    Relation::from_words(Schema::uniform_u32(4), words).unwrap()
}

fn select_op(schema: Schema) -> GpuOperator {
    GpuOperator::streaming(
        "select",
        vec![schema],
        1,
        vec![
            SlotDecl::new("in", Space::Register),
            SlotDecl::new("f", Space::Register),
            SlotDecl::new("dense", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Filter {
                src: SlotId(0),
                pred: Predicate::cmp(1, CmpOp::Eq, Value::U32(0)),
                dst: SlotId(1),
            },
            Step::Compact {
                src: SlotId(1),
                dst: SlotId(2),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(2),
                output: 0,
            },
        ],
        PartitionSpec::Even,
    )
}

/// The single-write SELECT skeleton: global traffic = read N + write s·N
/// (plus the tiny partition/gather bookkeeping) — the arithmetic behind
/// Figures 4 and 20 matching the paper.
#[test]
fn select_charges_exactly_one_read_and_one_write() {
    let n = 4096u64;
    let input = half_relation(n);
    let op = select_op(input.schema().clone());
    let mut dev = device();
    let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
    assert_eq!(result.outputs[0].len() as u64, n / 2);

    let grid = n / 256; // 256-thread CTAs
    let stats = dev.stats();
    // Reads: partition pivots (grid × 16) + gather sizes (grid × 8) + input.
    assert_eq!(
        stats.global_bytes_read,
        n * 16 + grid * 16 + grid * 8,
        "read accounting"
    );
    // Writes: matched tuples + gather size array.
    assert_eq!(
        stats.global_bytes_written,
        (n / 2) * 16 + grid * 8,
        "write accounting"
    );
    assert_eq!(stats.kernel_launches, 3);
    // Shared traffic: compact writes s·N tuples then the store reads them.
    assert_eq!(stats.shared_bytes_written, (n / 2) * 16);
    assert_eq!(stats.shared_bytes_read, (n / 2) * 16);
    // One barrier per CTA.
    assert_eq!(stats.barriers, grid);
    // ALU: filter (1 op/lane over all lanes) + compact scan (2/lane) +
    // partition/gather bookkeeping.
    assert!(stats.alu_ops >= n * 3);
}

/// Fusing two selects halves the interior traffic exactly: the fused kernel
/// reads N once and writes s²·N once.
#[test]
fn fused_two_selects_traffic_identity() {
    let n = 4096u64;
    let input = half_relation(n);
    let schema = input.schema().clone();

    // Fused: filter(attr1==0) then filter(attr2==7) — second keeps all.
    let fused = GpuOperator::streaming(
        "fused",
        vec![schema],
        1,
        vec![
            SlotDecl::new("in", Space::Register),
            SlotDecl::new("f1", Space::Register),
            SlotDecl::new("f2", Space::Register),
            SlotDecl::new("dense", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Filter {
                src: SlotId(0),
                pred: Predicate::cmp(1, CmpOp::Eq, Value::U32(0)),
                dst: SlotId(1),
            },
            Step::Filter {
                src: SlotId(1),
                pred: Predicate::cmp(2, CmpOp::Eq, Value::U32(7)),
                dst: SlotId(2),
            },
            Step::Compact {
                src: SlotId(2),
                dst: SlotId(3),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(3),
                output: 0,
            },
        ],
        PartitionSpec::Even,
    );
    let mut dev = device();
    let result = execute(&fused, &[&input], &mut dev, OptLevel::O3).unwrap();
    assert_eq!(result.outputs[0].len() as u64, n / 2);

    let grid = n / 256;
    let stats = dev.stats();
    assert_eq!(stats.global_bytes_read, n * 16 + grid * 16 + grid * 8);
    assert_eq!(stats.global_bytes_written, (n / 2) * 16 + grid * 8);
    assert_eq!(stats.kernel_launches, 3, "fusion keeps the 3-stage shape");
}

/// The O0 spill model charges exactly the documented per-element traffic on
/// top of O3.
#[test]
fn o0_spill_accounting() {
    let n = 1024u64;
    let input = half_relation(n);
    let op = select_op(input.schema().clone());

    let mut d3 = device();
    execute(&op, &[&input], &mut d3, OptLevel::O3).unwrap();
    let mut d0 = device();
    execute(&op, &[&input], &mut d0, OptLevel::O0).unwrap();

    let extra_read = d0.stats().global_bytes_read - d3.stats().global_bytes_read;
    let extra_written = d0.stats().global_bytes_written - d3.stats().global_bytes_written;
    // Per-step spills (filter reads n, compact reads s·n at lane width n,
    // store reads s·n) read+write 8 bytes per processed element, plus the
    // register-slot spills of the Load (write n·16) and Filter
    // (read n·16 sparse, write n·16 sparse at O0 lane accounting).
    assert!(extra_read > 0 && extra_written > 0);
    assert_eq!(
        extra_read % 8,
        0,
        "spill traffic is a multiple of the spill word"
    );
    // And the totals are deterministic.
    let mut d0b = device();
    execute(&op, &[&input], &mut d0b, OptLevel::O0).unwrap();
    assert_eq!(d0.stats().global_bytes(), d0b.stats().global_bytes());
}

/// PCIe accounting: transfer time follows the latency + bytes/bandwidth
/// model exactly.
#[test]
fn pcie_accounting() {
    let cfg = DeviceConfig::fermi_c2050();
    let mut dev = Device::new(cfg.clone());
    let bytes = 1u64 << 26; // 64 MiB
    let t = dev
        .transfer(kw_gpu_sim::Direction::HostToDevice, bytes)
        .unwrap();
    let expected = cfg.pcie_latency_us * 1e-6 + bytes as f64 / (cfg.pcie_bandwidth_gbs * 1e9);
    assert!((t - expected).abs() < 1e-12);
    assert_eq!(dev.stats().h2d_bytes, bytes);
}
