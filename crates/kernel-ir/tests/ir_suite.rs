//! Kernel-IR integration suite: mixed-type schemas, multi-attribute keys,
//! grid clamping, the semi-join step, and optimizer edge cases.

use kw_gpu_sim::{Device, DeviceConfig};
use kw_kernel_ir::{
    estimate_resources, execute, infer_schemas, optimize, validate, GpuOperator, OptLevel,
    PartitionSpec, SlotDecl, SlotId, Space, Step, MAX_GRID_CTAS,
};
use kw_relational::{gen, ops, AttrType, CmpOp, Expr, Predicate, Relation, Schema, Value};

fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

fn select_op(schema: Schema, pred: Predicate) -> GpuOperator {
    GpuOperator::streaming(
        "select",
        vec![schema],
        1,
        vec![
            SlotDecl::new("in", Space::Register),
            SlotDecl::new("f", Space::Register),
            SlotDecl::new("dense", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Filter {
                src: SlotId(0),
                pred,
                dst: SlotId(1),
            },
            Step::Compact {
                src: SlotId(1),
                dst: SlotId(2),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(2),
                output: 0,
            },
        ],
        PartitionSpec::Even,
    )
}

#[test]
fn mixed_type_schema_through_pipeline() {
    // (u32 key, f32, u64, bool)
    let schema = Schema::new(
        vec![AttrType::U32, AttrType::F32, AttrType::U64, AttrType::Bool],
        1,
    );
    let rows: Vec<Vec<Value>> = (0..2_000)
        .map(|i| {
            vec![
                Value::U32(i),
                Value::F32(i as f32 * 0.5),
                Value::U64(u64::from(i) << 33),
                Value::Bool(i % 3 == 0),
            ]
        })
        .collect();
    let input = Relation::from_rows(schema.clone(), &rows).unwrap();
    let pred = Predicate::cmp(1, CmpOp::Lt, Value::F32(300.0)).and(Predicate::cmp(
        3,
        CmpOp::Eq,
        Value::Bool(true),
    ));
    let op = select_op(schema, pred.clone());
    let mut dev = device();
    let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
    assert_eq!(result.outputs[0], ops::select(&input, &pred).unwrap());
    assert!(!result.outputs[0].is_empty());
    // u64 attributes cost two registers.
    let inferred = infer_schemas(&op).unwrap();
    let res = estimate_resources(&op, &inferred, OptLevel::O3).unwrap();
    assert!(res.registers_per_thread > 12);
}

#[test]
fn multi_attribute_key_join_in_kernel() {
    let schema = Schema::new(vec![AttrType::U32, AttrType::U32, AttrType::U32], 2);
    let mut r = gen::rng(5);
    use rand::Rng;
    let mk = |r: &mut rand::rngs::StdRng, n: usize| {
        let words: Vec<u64> = (0..n)
            .flat_map(|_| {
                vec![
                    u64::from(r.gen_range(0..40u32)),
                    u64::from(r.gen_range(0..4u32)),
                    u64::from(r.gen::<u32>()),
                ]
            })
            .collect();
        Relation::from_words(schema.clone(), words).unwrap()
    };
    let l = mk(&mut r, 2_000);
    let rt = mk(&mut r, 1_500);
    let op = GpuOperator::streaming(
        "join2",
        vec![schema.clone(), schema.clone()],
        1,
        vec![
            SlotDecl::new("l", Space::Shared),
            SlotDecl::new("r", Space::Shared),
            SlotDecl::new("o", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Load {
                input: 1,
                dst: SlotId(1),
            },
            Step::Barrier,
            Step::Join {
                left: SlotId(0),
                right: SlotId(1),
                key_len: 2,
                dst: SlotId(2),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(2),
                output: 0,
            },
        ],
        PartitionSpec::KeyRange {
            pivot: 0,
            key_len: 2,
        },
    );
    let mut dev = device();
    let result = execute(&op, &[&l, &rt], &mut dev, OptLevel::O3).unwrap();
    assert_eq!(result.outputs[0], ops::join(&l, &rt, 2).unwrap());
}

#[test]
fn semi_join_step_matches_oracle_and_respects_negation() {
    let (l, r) = gen::join_inputs(3_000, 2, 0.5, 9);
    for negated in [false, true] {
        let op = GpuOperator::streaming(
            if negated { "anti" } else { "semi" },
            vec![l.schema().clone(), r.schema().clone()],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 1,
                    dst: SlotId(1),
                },
                Step::Barrier,
                Step::SemiJoin {
                    left: SlotId(0),
                    right: SlotId(1),
                    key_len: 1,
                    negated,
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: 1,
            },
        );
        let mut dev = device();
        let result = execute(&op, &[&l, &r], &mut dev, OptLevel::O3).unwrap();
        let oracle = if negated {
            ops::anti_join(&l, &r, 1).unwrap()
        } else {
            ops::semi_join(&l, &r, 1).unwrap()
        };
        assert_eq!(result.outputs[0], oracle, "negated={negated}");
    }
}

#[test]
fn grid_clamps_at_cuda_limit() {
    // With 32 threads/CTA, 4M tuples would want 131072 CTAs > 65535.
    let input = gen::micro_input(100_000, 3);
    let mut op = select_op(input.schema().clone(), Predicate::True);
    op.threads_per_cta = 1; // force the clamp with a small input
    let mut dev = device();
    let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
    assert_eq!(result.outputs[0], input);
    let grids: Vec<u32> = dev
        .timeline()
        .iter()
        .filter_map(|e| match e {
            kw_gpu_sim::Event::Kernel { grid_ctas, .. } => Some(*grid_ctas),
            _ => None,
        })
        .collect();
    assert!(grids.iter().all(|&g| g <= MAX_GRID_CTAS));
    assert!(grids.contains(&MAX_GRID_CTAS));
}

#[test]
fn optimizer_never_alters_results_on_handwritten_ir() {
    // A body with redundancy the optimizer attacks: duplicate loads,
    // chained filters, a dead projection.
    let input = gen::micro_input(4_000, 8);
    let schema = input.schema().clone();
    let op = GpuOperator::streaming(
        "messy",
        vec![schema.clone()],
        1,
        vec![
            SlotDecl::new("a", Space::Register),
            SlotDecl::new("b", Space::Register),
            SlotDecl::new("f1", Space::Register),
            SlotDecl::new("f2", Space::Register),
            SlotDecl::new("dead", Space::Register),
            SlotDecl::new("dense", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Load {
                input: 0,
                dst: SlotId(1),
            },
            Step::Filter {
                src: SlotId(0),
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                dst: SlotId(2),
            },
            Step::Project {
                src: SlotId(1),
                attrs: vec![0, 1],
                key_arity: 1,
                dst: SlotId(4),
            },
            Step::Filter {
                src: SlotId(2),
                pred: Predicate::cmp(2, CmpOp::Ge, Value::U32(10)),
                dst: SlotId(3),
            },
            Step::Compact {
                src: SlotId(3),
                dst: SlotId(5),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(5),
                output: 0,
            },
        ],
        PartitionSpec::Even,
    );
    let (optimized, stats) = optimize(&op, OptLevel::O3).unwrap();
    assert!(stats.filters_combined >= 1);
    assert!(stats.dead_steps_removed >= 1);
    assert!(stats.steps_deduplicated >= 1);
    validate(&optimized).unwrap();

    let mut d1 = device();
    let raw = execute(&op, &[&input], &mut d1, OptLevel::O3).unwrap();
    let mut d2 = device();
    let opt = execute(&optimized, &[&input], &mut d2, OptLevel::O3).unwrap();
    assert_eq!(raw.outputs[0], opt.outputs[0]);
    // The optimized kernel does strictly less work.
    assert!(d2.stats().alu_ops <= d1.stats().alu_ops);
}

#[test]
fn optimizer_keeps_required_barriers() {
    // select -> join via shared memory: the barrier between the shared def
    // and the join must survive barrier simplification.
    let (l, r) = gen::join_inputs(1_000, 2, 0.5, 11);
    let op = GpuOperator::streaming(
        "sel-join",
        vec![l.schema().clone(), r.schema().clone()],
        1,
        vec![
            SlotDecl::new("lin", Space::Register),
            SlotDecl::new("lsel", Space::Shared),
            SlotDecl::new("rin", Space::Shared),
            SlotDecl::new("out", Space::Shared),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Load {
                input: 1,
                dst: SlotId(2),
            },
            Step::Filter {
                src: SlotId(0),
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
                dst: SlotId(1),
            },
            Step::Barrier,
            Step::Barrier, // redundant: must be removed
            Step::Join {
                left: SlotId(1),
                right: SlotId(2),
                key_len: 1,
                dst: SlotId(3),
            },
            Step::Barrier,
            Step::Store {
                src: SlotId(3),
                output: 0,
            },
        ],
        PartitionSpec::KeyRange {
            pivot: 0,
            key_len: 1,
        },
    );
    let (optimized, stats) = optimize(&op, OptLevel::O3).unwrap();
    assert_eq!(stats.barriers_removed, 1);
    validate(&optimized).unwrap();
    let mut dev = device();
    let result = execute(&optimized, &[&l, &r], &mut dev, OptLevel::O3).unwrap();
    let oracle = ops::join(
        &ops::select(&l, &Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2))).unwrap(),
        &r,
        1,
    )
    .unwrap();
    assert_eq!(result.outputs[0], oracle);
}

#[test]
fn compute_with_constant_folding_runs_folded() {
    let input = gen::micro_input(1_000, 13);
    let op = GpuOperator::streaming(
        "arith",
        vec![input.schema().clone()],
        1,
        vec![
            SlotDecl::new("in", Space::Register),
            SlotDecl::new("c", Space::Register),
        ],
        vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Compute {
                src: SlotId(0),
                exprs: vec![
                    Expr::attr(0),
                    Expr::attr(1)
                        .mul(Expr::lit(3u32).add(Expr::lit(4u32)))
                        .add(Expr::lit(10u32).sub(Expr::lit(10u32))),
                ],
                key_arity: 1,
                dst: SlotId(1),
            },
            Step::Store {
                src: SlotId(1),
                output: 0,
            },
        ],
        PartitionSpec::Even,
    );
    let (optimized, stats) = optimize(&op, OptLevel::O3).unwrap();
    assert!(stats.constants_folded >= 1);
    let mut d1 = device();
    let a = execute(&op, &[&input], &mut d1, OptLevel::O3).unwrap();
    let mut d2 = device();
    let b = execute(&optimized, &[&input], &mut d2, OptLevel::O3).unwrap();
    assert_eq!(a.outputs[0], b.outputs[0]);
    assert!(d2.stats().alu_ops < d1.stats().alu_ops);
}
