//! The kernel optimizer: the paper's "larger optimization scope" benefit.
//!
//! Fusing kernels enlarges the textual scope visible to the compiler; these
//! passes are the IR analogues of what `nvcc -O3` does across a fused body:
//!
//! * **predicate combining** — back-to-back filters become one filter (the
//!   common-computation elimination of Section 2.3);
//! * **common step elimination** — identical loads/steps are deduplicated
//!   (this is what makes input-dependence fusion, pattern (d), profitable);
//! * **constant folding** — arithmetic expressions are simplified;
//! * **dead code elimination** — steps whose results are never consumed
//!   disappear;
//! * **barrier simplification** — redundant synchronizations are dropped.
//!
//! At [`OptLevel::O0`] nothing runs, and (as with real `-O0` PTX) the
//! interpreter additionally spills register intermediates to local memory —
//! which lives in global DRAM — while resource estimation performs no
//! register reuse. That reproduces Figure 19's observation that fused
//! kernels benefit *more* from optimization than unfused ones.

use crate::{infer_schemas, validate, GpuOperator, OperatorBody, Result, Step};

/// Optimization level for code generation and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optimization; register intermediates spill to local memory.
    O0,
    /// Full optimization (the default).
    #[default]
    O3,
}

/// Counters describing what the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Filters merged by predicate combining.
    pub filters_combined: usize,
    /// Steps removed by common-step elimination.
    pub steps_deduplicated: usize,
    /// Steps removed as dead code.
    pub dead_steps_removed: usize,
    /// Compute expressions that shrank under constant folding.
    pub constants_folded: usize,
    /// Barriers removed.
    pub barriers_removed: usize,
}

impl PassStats {
    /// Total IR changes performed.
    pub fn total(&self) -> usize {
        self.filters_combined
            + self.steps_deduplicated
            + self.dead_steps_removed
            + self.constants_folded
            + self.barriers_removed
    }
}

/// Optimize `op` at `level`, returning the transformed operator and pass
/// statistics. At [`OptLevel::O0`] the operator is returned unchanged.
///
/// # Errors
///
/// Returns [`crate::IrError`] if the input (or, as an internal invariant,
/// the output) fails validation.
///
/// # Examples
///
/// ```
/// use kw_kernel_ir::{optimize, GpuOperator, OptLevel};
/// use kw_relational::Schema;
///
/// // Global operators pass through untouched; streaming bodies get the
/// // full pass pipeline (see the module docs for what each pass does).
/// let sort = GpuOperator::global_sort("s", Schema::uniform_u32(2), vec![1]);
/// let (optimized, stats) = optimize(&sort, OptLevel::O3)?;
/// assert_eq!(optimized, sort);
/// assert_eq!(stats.total(), 0);
/// # Ok::<(), kw_kernel_ir::IrError>(())
/// ```
pub fn optimize(op: &GpuOperator, level: OptLevel) -> Result<(GpuOperator, PassStats)> {
    let mut out = op.clone();
    let mut stats = PassStats::default();
    if level == OptLevel::O0 || !op.body.is_streaming() {
        return Ok((out, stats));
    }
    validate(&out)?;

    stats.constants_folded += fold_constants(&mut out)?;
    loop {
        let mut changed = 0;
        changed += combine_filters(&mut out);
        stats.filters_combined += changed;
        let dedup = eliminate_common_steps(&mut out);
        stats.steps_deduplicated += dedup;
        changed += dedup;
        if changed == 0 {
            break;
        }
    }
    stats.dead_steps_removed += eliminate_dead_steps(&mut out);
    stats.barriers_removed += simplify_barriers(&mut out);

    validate(&out)?;
    Ok((out, stats))
}

fn steps_mut(op: &mut GpuOperator) -> &mut Vec<Step> {
    match &mut op.body {
        OperatorBody::Streaming { steps, .. } => steps,
        _ => unreachable!("optimizer passes run on streaming bodies only"),
    }
}

/// Fold constant sub-expressions in every Compute step. Returns the number
/// of expressions that shrank.
pub fn fold_constants(op: &mut GpuOperator) -> Result<usize> {
    let inferred = infer_schemas(op)?;
    let mut folded = 0;
    // Collect source schemas first to avoid borrowing conflicts.
    let src_schemas: Vec<Option<kw_relational::Schema>> = op
        .steps()
        .map(|steps| {
            steps
                .iter()
                .map(|s| match s {
                    Step::Compute { src, .. } => inferred.slots.get(src.0).and_then(|x| x.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    for (i, step) in steps_mut(op).iter_mut().enumerate() {
        if let Step::Compute { exprs, .. } = step {
            if let Some(Some(schema)) = src_schemas.get(i) {
                for e in exprs.iter_mut() {
                    let f = e.fold_constants(schema);
                    if f.alu_ops() < e.alu_ops() {
                        folded += 1;
                        *e = f;
                    }
                }
            }
        }
    }
    Ok(folded)
}

fn use_counts(steps: &[Step], slot_count: usize) -> Vec<usize> {
    let mut counts = vec![0usize; slot_count];
    for s in steps {
        for src in s.sources() {
            counts[src.0] += 1;
        }
    }
    counts
}

fn slot_count(op: &GpuOperator) -> usize {
    op.slots().map(<[_]>::len).unwrap_or(0)
}

/// Merge `filter(filter(x, p1), p2)` into `filter(x, p1 && p2)` when the
/// intermediate has no other consumer. Returns merges performed.
#[allow(clippy::needless_range_loop)] // index-pair scan over a mutating vec
pub fn combine_filters(op: &mut GpuOperator) -> usize {
    let n_slots = slot_count(op);
    let mut merged = 0;
    loop {
        let steps = steps_mut(op);
        let counts = use_counts(steps, n_slots);
        let mut action: Option<(usize, usize)> = None;
        'outer: for j in 0..steps.len() {
            let Step::Filter { src: b, .. } = &steps[j] else {
                continue;
            };
            if counts[b.0] != 1 {
                continue;
            }
            for i in 0..j {
                if let Step::Filter { dst, .. } = &steps[i] {
                    if dst == b {
                        action = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        let Some((i, j)) = action else { break };
        let Step::Filter {
            pred: p2, dst: c, ..
        } = steps[j].clone()
        else {
            unreachable!()
        };
        let Step::Filter {
            src: a, pred: p1, ..
        } = steps[i].clone()
        else {
            unreachable!()
        };
        steps[i] = Step::Filter {
            src: a,
            pred: p1.and(p2),
            dst: c,
        };
        steps.remove(j);
        merged += 1;
    }
    merged
}

/// Deduplicate identical steps (same sources and parameters) whose
/// destinations live in the same space. This removes the duplicate loads of
/// input-dependent fusion. Returns steps removed.
#[allow(clippy::needless_range_loop)] // index-pair scan over a mutating vec
pub fn eliminate_common_steps(op: &mut GpuOperator) -> usize {
    let spaces: Vec<crate::Space> = op
        .slots()
        .map(|s| s.iter().map(|d| d.space).collect())
        .unwrap_or_default();
    let mut removed = 0;
    loop {
        let steps = steps_mut(op);
        let mut action: Option<(usize, usize)> = None;
        'outer: for i in 0..steps.len() {
            let (Some(di), false) = (steps[i].dest(), matches!(steps[i], Step::Barrier)) else {
                continue;
            };
            for j in i + 1..steps.len() {
                let Some(dj) = steps[j].dest() else { continue };
                if di == dj {
                    continue;
                }
                if spaces[di.0] != spaces[dj.0] {
                    continue;
                }
                let mut a = steps[i].clone();
                let mut b = steps[j].clone();
                // Compare with destinations normalized.
                a.map_slots(|s| {
                    if s == di {
                        crate::SlotId(usize::MAX)
                    } else {
                        s
                    }
                });
                b.map_slots(|s| {
                    if s == dj {
                        crate::SlotId(usize::MAX)
                    } else {
                        s
                    }
                });
                if a == b {
                    action = Some(
                        (dj.0, di.0), // rewrite dj -> di
                    );
                    steps.remove(j);
                    removed += 1;
                    break 'outer;
                }
            }
        }
        match action {
            Some((from, to)) => {
                for s in steps_mut(op).iter_mut() {
                    s.map_slots(|x| if x.0 == from { crate::SlotId(to) } else { x });
                }
            }
            None => break,
        }
    }
    removed
}

/// Remove steps whose destination is never consumed. Returns steps removed.
pub fn eliminate_dead_steps(op: &mut GpuOperator) -> usize {
    let n_slots = slot_count(op);
    let mut removed = 0;
    loop {
        let steps = steps_mut(op);
        let counts = use_counts(steps, n_slots);
        let before = steps.len();
        steps.retain(|s| match s.dest() {
            Some(d) => counts[d.0] > 0,
            None => true,
        });
        let r = before - steps.len();
        removed += r;
        if r == 0 {
            break;
        }
    }
    removed
}

/// Drop redundant barriers: consecutive duplicates and barriers with no
/// preceding shared-slot definition. Returns barriers removed.
pub fn simplify_barriers(op: &mut GpuOperator) -> usize {
    let spaces: Vec<crate::Space> = op
        .slots()
        .map(|s| s.iter().map(|d| d.space).collect())
        .unwrap_or_default();
    let steps = steps_mut(op);
    let before = steps.len();
    let mut shared_def_pending = false;
    let mut keep = Vec::with_capacity(steps.len());
    for s in steps.drain(..) {
        match &s {
            Step::Barrier => {
                if shared_def_pending {
                    keep.push(s);
                    shared_def_pending = false;
                }
            }
            _ => {
                if let Some(d) = s.dest() {
                    if spaces.get(d.0) == Some(&crate::Space::Shared) {
                        shared_def_pending = true;
                    }
                }
                keep.push(s);
            }
        }
    }
    *steps = keep;
    before - steps.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, SlotDecl, SlotId, Space};
    use kw_relational::{CmpOp, Expr, Predicate, Schema, Value};

    fn two_filter_op() -> GpuOperator {
        GpuOperator::streaming(
            "fused-selects",
            vec![Schema::uniform_u32(4)],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("f1", Space::Register),
                SlotDecl::new("f2", Space::Register),
                SlotDecl::new("dense", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(100)),
                    dst: SlotId(1),
                },
                Step::Filter {
                    src: SlotId(1),
                    pred: Predicate::cmp(1, CmpOp::Gt, Value::U32(5)),
                    dst: SlotId(2),
                },
                Step::Compact {
                    src: SlotId(2),
                    dst: SlotId(3),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(3),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        )
    }

    #[test]
    fn filters_combine_at_o3() {
        let (out, stats) = optimize(&two_filter_op(), OptLevel::O3).unwrap();
        assert_eq!(stats.filters_combined, 1);
        let filters = out
            .steps()
            .unwrap()
            .iter()
            .filter(|s| matches!(s, Step::Filter { .. }))
            .count();
        assert_eq!(filters, 1);
    }

    #[test]
    fn o0_changes_nothing() {
        let (out, stats) = optimize(&two_filter_op(), OptLevel::O0).unwrap();
        assert_eq!(stats.total(), 0);
        assert_eq!(out, two_filter_op());
    }

    #[test]
    fn duplicate_loads_eliminated() {
        // Input-dependence pattern (d): two selects over the same input.
        let op = GpuOperator::streaming(
            "pattern-d",
            vec![Schema::uniform_u32(4)],
            2,
            vec![
                SlotDecl::new("in_a", Space::Register),
                SlotDecl::new("in_b", Space::Register),
                SlotDecl::new("f1", Space::Register),
                SlotDecl::new("f2", Space::Register),
                SlotDecl::new("d1", Space::Shared),
                SlotDecl::new("d2", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 0,
                    dst: SlotId(1),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(9)),
                    dst: SlotId(2),
                },
                Step::Filter {
                    src: SlotId(1),
                    pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(9)),
                    dst: SlotId(3),
                },
                Step::Compact {
                    src: SlotId(2),
                    dst: SlotId(4),
                },
                Step::Compact {
                    src: SlotId(3),
                    dst: SlotId(5),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(4),
                    output: 0,
                },
                Step::Store {
                    src: SlotId(5),
                    output: 1,
                },
            ],
            PartitionSpec::Even,
        );
        let (out, stats) = optimize(&op, OptLevel::O3).unwrap();
        assert_eq!(stats.steps_deduplicated, 1);
        let loads = out
            .steps()
            .unwrap()
            .iter()
            .filter(|s| matches!(s, Step::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn dead_steps_removed() {
        let mut op = two_filter_op();
        if let OperatorBody::Streaming { slots, steps, .. } = &mut op.body {
            slots.push(SlotDecl::new("dead", Space::Register));
            steps.insert(
                1,
                Step::Project {
                    src: SlotId(0),
                    attrs: vec![0],
                    key_arity: 1,
                    dst: SlotId(4),
                },
            );
        }
        let (out, stats) = optimize(&op, OptLevel::O3).unwrap();
        assert!(stats.dead_steps_removed >= 1);
        assert!(!out
            .steps()
            .unwrap()
            .iter()
            .any(|s| matches!(s, Step::Project { .. })));
    }

    #[test]
    fn constant_folding_counts() {
        let op = GpuOperator::streaming(
            "arith",
            vec![Schema::uniform_u32(2)],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("c", Space::Register),
                SlotDecl::new("d", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Compute {
                    src: SlotId(0),
                    exprs: vec![
                        Expr::attr(0),
                        Expr::attr(1).mul(Expr::lit(2u32).add(Expr::lit(3u32))),
                    ],
                    key_arity: 1,
                    dst: SlotId(1),
                },
                Step::Compact {
                    src: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        );
        let (_, stats) = optimize(&op, OptLevel::O3).unwrap();
        assert_eq!(stats.constants_folded, 1);
    }

    #[test]
    fn optimized_ir_stays_valid_and_equivalent_shape() {
        let (out, _) = optimize(&two_filter_op(), OptLevel::O3).unwrap();
        assert!(validate(&out).is_ok());
        // Output schema unchanged.
        let a = infer_schemas(&two_filter_op()).unwrap().outputs;
        let b = infer_schemas(&out).unwrap().outputs;
        assert_eq!(a, b);
    }
}
