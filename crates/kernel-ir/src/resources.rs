//! Register and shared-memory usage estimation.
//!
//! Mirrors the paper's Section 4.3.3: intermediate data of thread-dependent
//! fusion occupies registers (width = tuple word count), CTA-dependent
//! fusion occupies shared memory (a tile of `threads_per_CTA` tuples plus a
//! size counter), and stage-internal temporaries can reuse registers — so a
//! fused operator's register demand is the *maximum* live set plus the
//! largest per-stage working set, not the sum.
//!
//! At `-O0` the compiler performs no liveness-based reuse (every slot holds
//! its registers for the whole kernel), which is how fusion's larger bodies
//! lose occupancy without optimization (Figure 19's counterpoint).

use kw_gpu_sim::KernelResources;
use kw_relational::{AttrType, Schema};

use crate::{GpuOperator, InferredSchemas, IrError, OperatorBody, OptLevel, Result, Space, Step};

/// Base per-thread registers any kernel consumes (indices, bounds, loop
/// counters).
pub const BASE_REGISTERS: u32 = 10;
/// Bookkeeping bytes per shared slot (size counter + alignment).
pub const SHARED_SLOT_OVERHEAD: u32 = 64;

/// Registers needed to hold one tuple of `schema` in a thread.
pub fn tuple_registers(schema: &Schema) -> u32 {
    schema
        .attrs()
        .iter()
        .map(|a| match a {
            AttrType::U64 => 2,
            _ => 1,
        })
        .sum()
}

/// Transient (stage-internal) registers of one step.
fn step_scratch(step: &Step) -> u32 {
    match step {
        Step::Load { .. } => 2,
        Step::Filter { pred, .. } => 2 + (pred.alu_ops() as u32).min(8),
        Step::Project { .. } => 2,
        Step::Compute { exprs, .. } => {
            2 + exprs
                .iter()
                .map(|e| (e.alu_ops() as u32).min(8))
                .max()
                .unwrap_or(0)
        }
        Step::Join { .. } => 24,
        Step::Product { .. } => 12,
        Step::SemiJoin { .. } => 14,
        Step::SetOp { .. } => 12,
        Step::Unique { .. } => 6,
        Step::Compact { .. } => 4,
        Step::Barrier => 0,
        Step::Store { .. } => 2,
    }
}

/// Estimate the kernel resources of `op`.
///
/// # Errors
///
/// Returns [`IrError::Validation`] if a referenced slot has no schema.
pub fn estimate_resources(
    op: &GpuOperator,
    inferred: &InferredSchemas,
    opt: OptLevel,
) -> Result<KernelResources> {
    let OperatorBody::Streaming { slots, steps, .. } = &op.body else {
        // Global operators (SORT / AGGREGATE phases) run library kernels with
        // fixed, modest resource demands.
        return Ok(KernelResources {
            registers_per_thread: 24,
            shared_per_cta: 4 * 1024,
        });
    };

    // Which slots are actually referenced.
    let mut used = vec![false; slots.len()];
    for step in steps {
        for s in step.sources() {
            used[s.0] = true;
        }
        if let Some(d) = step.dest() {
            used[d.0] = true;
        }
    }

    // Shared memory: a tile of threads_per_cta tuples per used shared slot.
    // At -O3 the allocator reuses tiles whose slots are dead (the paper's
    // §4.3.3: "variables ... are live until they are no longer needed"), so
    // the demand is the maximum *live* set; at -O0 every slot holds its
    // tile for the whole kernel.
    let tile_bytes = |i: usize| -> Result<u64> {
        let schema = inferred
            .slots
            .get(i)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| IrError::validation(format!("shared slot %{i} has no schema")))?;
        Ok(u64::from(op.threads_per_cta) * schema.tuple_bytes() as u64
            + u64::from(SHARED_SLOT_OVERHEAD))
    };
    let shared_slots: Vec<usize> = (0..slots.len())
        .filter(|&i| used[i] && slots[i].space == Space::Shared)
        .collect();
    let shared: u64 = match opt {
        OptLevel::O0 => {
            let mut sum = 0;
            for &i in &shared_slots {
                sum += tile_bytes(i)?;
            }
            sum
        }
        OptLevel::O3 => {
            let mut def = vec![usize::MAX; slots.len()];
            let mut last_use = vec![0usize; slots.len()];
            for (idx, step) in steps.iter().enumerate() {
                if let Some(d) = step.dest() {
                    def[d.0] = def[d.0].min(idx);
                }
                for s in step.sources() {
                    last_use[s.0] = last_use[s.0].max(idx);
                }
            }
            let mut max_live = 0u64;
            for idx in 0..steps.len() {
                let mut live = 0u64;
                for &i in &shared_slots {
                    if def[i] <= idx && last_use[i] >= idx {
                        live += tile_bytes(i)?;
                    }
                }
                max_live = max_live.max(live);
            }
            max_live
        }
    };

    // Registers.
    let width = |i: usize| -> Result<u32> {
        inferred
            .slots
            .get(i)
            .and_then(|s| s.as_ref())
            .map(tuple_registers)
            .ok_or_else(|| IrError::validation(format!("register slot %{i} has no schema")))
    };

    let reg_slots: Vec<usize> = (0..slots.len())
        .filter(|&i| used[i] && slots[i].space == Space::Register)
        .collect();

    let slot_regs = match opt {
        OptLevel::O0 => {
            // No reuse: every register slot is live for the whole kernel.
            let mut sum = 0;
            for &i in &reg_slots {
                sum += width(i)?;
            }
            sum
        }
        OptLevel::O3 => {
            // Liveness-based reuse: maximum concurrently-live register width.
            let mut def = vec![usize::MAX; slots.len()];
            let mut last_use = vec![0usize; slots.len()];
            for (idx, step) in steps.iter().enumerate() {
                if let Some(d) = step.dest() {
                    def[d.0] = def[d.0].min(idx);
                }
                for s in step.sources() {
                    last_use[s.0] = last_use[s.0].max(idx);
                }
            }
            let mut max_live = 0u32;
            for idx in 0..steps.len() {
                let mut live = 0u32;
                for &i in &reg_slots {
                    if def[i] <= idx && last_use[i] >= idx {
                        live += width(i)?;
                    }
                }
                max_live = max_live.max(live);
            }
            max_live
        }
    };

    let scratch = steps.iter().map(step_scratch).max().unwrap_or(0);
    let registers = BASE_REGISTERS + slot_regs + scratch;

    Ok(KernelResources {
        registers_per_thread: registers,
        shared_per_cta: shared.min(u64::from(u32::MAX)) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer_schemas, PartitionSpec, SlotDecl, SlotId};
    use kw_relational::{CmpOp, Predicate, Value};

    fn select_op() -> GpuOperator {
        GpuOperator::streaming(
            "select",
            vec![Schema::uniform_u32(4)],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("f", Space::Register),
                SlotDecl::new("dense", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(7)),
                    dst: SlotId(1),
                },
                Step::Compact {
                    src: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        )
    }

    #[test]
    fn select_resources() {
        let op = select_op();
        let inf = infer_schemas(&op).unwrap();
        let r = estimate_resources(&op, &inf, OptLevel::O3).unwrap();
        // 10 base + 8 live regs (two 4-word tuples overlap at the filter) + 4 scratch.
        assert!(r.registers_per_thread >= 15 && r.registers_per_thread <= 30);
        // One shared tile: 256 threads * 16 B + overhead.
        assert_eq!(r.shared_per_cta, 256 * 16 + SHARED_SLOT_OVERHEAD);
    }

    #[test]
    fn o0_uses_more_registers() {
        let op = select_op();
        let inf = infer_schemas(&op).unwrap();
        let o3 = estimate_resources(&op, &inf, OptLevel::O3).unwrap();
        let o0 = estimate_resources(&op, &inf, OptLevel::O0).unwrap();
        assert!(o0.registers_per_thread >= o3.registers_per_thread);
    }

    #[test]
    fn tuple_register_widths() {
        assert_eq!(tuple_registers(&Schema::uniform_u32(4)), 4);
        let s = Schema::new(vec![AttrType::U64, AttrType::U32], 1);
        assert_eq!(tuple_registers(&s), 3);
    }

    #[test]
    fn global_ops_have_fixed_resources() {
        let op = GpuOperator::global_sort("s", Schema::uniform_u32(2), vec![0]);
        let inf = infer_schemas(&op).unwrap();
        let r = estimate_resources(&op, &inf, OptLevel::O3).unwrap();
        assert!(r.registers_per_thread > 0);
    }

    #[test]
    fn unused_slots_cost_nothing() {
        let mut op = select_op();
        if let OperatorBody::Streaming { slots, .. } = &mut op.body {
            slots.push(SlotDecl::new("unused", Space::Shared));
        }
        let inf = infer_schemas(&op).unwrap();
        let with_unused = estimate_resources(&op, &inf, OptLevel::O3).unwrap();
        let plain = select_op();
        let inf2 = infer_schemas(&plain).unwrap();
        let base = estimate_resources(&plain, &inf2, OptLevel::O3).unwrap();
        assert_eq!(with_unused, base);
    }
}
