//! The step-level kernel IR.
//!
//! A kernel's compute stage is a list of [`Step`]s, each a data-parallel
//! operation executed by every CTA over its partition. Steps read and write
//! *slots* — virtual tuple buffers placed in a memory [`Space`] — which is
//! exactly the paper's variable table: fusing operators concatenates their
//! steps and rewires slots, placing intermediates in registers (thread
//! dependence) or shared memory (CTA dependence) instead of global memory.

use std::fmt;

use kw_relational::{Expr, Predicate};

/// The memory space a slot lives in.
///
/// The dependence classification of the paper maps directly onto spaces:
/// thread-dependent intermediates live in [`Space::Register`],
/// CTA-dependent intermediates in [`Space::Shared`], and kernel-dependent
/// boundaries force [`Space::Global`] round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Per-thread registers (free traffic; subject to divergence).
    Register,
    /// Per-CTA shared memory (on-chip; requires barriers between producer
    /// and consumer steps).
    Shared,
    /// Off-chip global memory.
    Global,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Register => "reg",
            Space::Shared => "shared",
            Space::Global => "global",
        };
        f.write_str(s)
    }
}

/// Identifier of a slot within one [`crate::GpuOperator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub usize);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Declaration of a slot: a named tuple buffer in a memory space.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDecl {
    /// Diagnostic name (e.g. `select0.out`).
    pub name: String,
    /// Memory space of the slot.
    pub space: Space,
}

impl SlotDecl {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, space: Space) -> SlotDecl {
        SlotDecl {
            name: name.into(),
            space,
        }
    }
}

/// Which keyed set operation a [`Step::SetOp`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    /// Keys in either input.
    Union,
    /// Keys in both inputs.
    Intersect,
    /// Keys in left but not right.
    Difference,
}

impl fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SetOpKind::Union => "union",
            SetOpKind::Intersect => "intersect",
            SetOpKind::Difference => "difference",
        };
        f.write_str(s)
    }
}

/// One data-parallel operation of a compute-stage kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Load the CTA's partition of global input `input` into `dst`.
    Load {
        /// Index into the operator's input list.
        input: usize,
        /// Destination slot.
        dst: SlotId,
    },
    /// Keep tuples of `src` satisfying `pred`.
    Filter {
        /// Source slot.
        src: SlotId,
        /// The predicate.
        pred: Predicate,
        /// Destination slot.
        dst: SlotId,
    },
    /// Keep a subset of attributes.
    Project {
        /// Source slot.
        src: SlotId,
        /// Attribute indices to keep, in order.
        attrs: Vec<usize>,
        /// Key arity of the result.
        key_arity: usize,
        /// Destination slot.
        dst: SlotId,
    },
    /// Evaluate arithmetic expressions per tuple (the paper's §4.4
    /// arithmetic extension).
    Compute {
        /// Source slot.
        src: SlotId,
        /// One expression per output attribute.
        exprs: Vec<Expr>,
        /// Key arity of the result.
        key_arity: usize,
        /// Destination slot.
        dst: SlotId,
    },
    /// Merge-join two slots on their first `key_len` attributes.
    Join {
        /// Left source slot.
        left: SlotId,
        /// Right source slot.
        right: SlotId,
        /// Join key length.
        key_len: usize,
        /// Destination slot.
        dst: SlotId,
    },
    /// Cross product of two slots.
    Product {
        /// Left source slot.
        left: SlotId,
        /// Right source slot.
        right: SlotId,
        /// Destination slot.
        dst: SlotId,
    },
    /// Semi- or anti-join: keep left tuples whose key prefix does (or
    /// does not) match the right slot (`EXISTS` / `NOT EXISTS`).
    SemiJoin {
        /// Left source slot.
        left: SlotId,
        /// Right source slot.
        right: SlotId,
        /// Key prefix length.
        key_len: usize,
        /// `true` for anti-join (`NOT EXISTS`).
        negated: bool,
        /// Destination slot.
        dst: SlotId,
    },
    /// Keyed set operation between two slots of identical schema.
    SetOp {
        /// Which set operation.
        kind: SetOpKind,
        /// Left source slot.
        left: SlotId,
        /// Right source slot.
        right: SlotId,
        /// Destination slot.
        dst: SlotId,
    },
    /// Remove duplicate tuples (within the CTA partition).
    Unique {
        /// Source slot.
        src: SlotId,
        /// Destination slot.
        dst: SlotId,
    },
    /// Stream-compact `src` into a dense `dst` (prefix-sum compaction; the
    /// "compact" phase of Figure 7).
    Compact {
        /// Source slot.
        src: SlotId,
        /// Destination slot.
        dst: SlotId,
    },
    /// CTA-wide barrier synchronization.
    Barrier,
    /// Write `src` to global output buffer `output`.
    Store {
        /// Source slot.
        src: SlotId,
        /// Index of the operator output.
        output: usize,
    },
}

impl Step {
    /// The slots this step reads.
    pub fn sources(&self) -> Vec<SlotId> {
        match self {
            Step::Load { .. } | Step::Barrier => vec![],
            Step::Filter { src, .. }
            | Step::Project { src, .. }
            | Step::Compute { src, .. }
            | Step::Unique { src, .. }
            | Step::Compact { src, .. }
            | Step::Store { src, .. } => vec![*src],
            Step::Join { left, right, .. }
            | Step::Product { left, right, .. }
            | Step::SemiJoin { left, right, .. }
            | Step::SetOp { left, right, .. } => vec![*left, *right],
        }
    }

    /// The slot this step defines, if any.
    pub fn dest(&self) -> Option<SlotId> {
        match self {
            Step::Load { dst, .. }
            | Step::Filter { dst, .. }
            | Step::Project { dst, .. }
            | Step::Compute { dst, .. }
            | Step::Join { dst, .. }
            | Step::Product { dst, .. }
            | Step::SemiJoin { dst, .. }
            | Step::SetOp { dst, .. }
            | Step::Unique { dst, .. }
            | Step::Compact { dst, .. } => Some(*dst),
            Step::Barrier | Step::Store { .. } => None,
        }
    }

    /// Rewrite every slot reference through `f`.
    pub fn map_slots(&mut self, mut f: impl FnMut(SlotId) -> SlotId) {
        match self {
            Step::Load { dst, .. } => *dst = f(*dst),
            Step::Filter { src, dst, .. }
            | Step::Project { src, dst, .. }
            | Step::Compute { src, dst, .. }
            | Step::Unique { src, dst, .. }
            | Step::Compact { src, dst, .. } => {
                *src = f(*src);
                *dst = f(*dst);
            }
            Step::Join {
                left, right, dst, ..
            }
            | Step::Product {
                left, right, dst, ..
            }
            | Step::SemiJoin {
                left, right, dst, ..
            }
            | Step::SetOp {
                left, right, dst, ..
            } => {
                *left = f(*left);
                *right = f(*right);
                *dst = f(*dst);
            }
            Step::Store { src, .. } => *src = f(*src),
            Step::Barrier => {}
        }
    }

    /// A short mnemonic for diagnostics and labels.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Step::Load { .. } => "load",
            Step::Filter { .. } => "filter",
            Step::Project { .. } => "project",
            Step::Compute { .. } => "compute",
            Step::Join { .. } => "join",
            Step::Product { .. } => "product",
            Step::SemiJoin { negated: false, .. } => "semijoin",
            Step::SemiJoin { negated: true, .. } => "antijoin",
            Step::SetOp { .. } => "setop",
            Step::Unique { .. } => "unique",
            Step::Compact { .. } => "compact",
            Step::Barrier => "barrier",
            Step::Store { .. } => "store",
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Load { input, dst } => write!(f, "{dst} = load in{input}"),
            Step::Filter { src, pred, dst } => write!(f, "{dst} = filter {src} where {pred}"),
            Step::Project {
                src, attrs, dst, ..
            } => write!(f, "{dst} = project {src} {attrs:?}"),
            Step::Compute {
                src, exprs, dst, ..
            } => {
                write!(f, "{dst} = compute {src} [")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Step::Join {
                left,
                right,
                key_len,
                dst,
            } => write!(f, "{dst} = join {left} {right} key={key_len}"),
            Step::Product { left, right, dst } => write!(f, "{dst} = product {left} {right}"),
            Step::SemiJoin {
                left,
                right,
                key_len,
                negated,
                dst,
            } => {
                let name = if *negated { "antijoin" } else { "semijoin" };
                write!(f, "{dst} = {name} {left} {right} key={key_len}")
            }
            Step::SetOp {
                kind,
                left,
                right,
                dst,
            } => write!(f, "{dst} = {kind} {left} {right}"),
            Step::Unique { src, dst } => write!(f, "{dst} = unique {src}"),
            Step::Compact { src, dst } => write!(f, "{dst} = compact {src}"),
            Step::Barrier => write!(f, "barrier"),
            Step::Store { src, output } => write!(f, "store {src} -> out{output}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_relational::{CmpOp, Value};

    #[test]
    fn sources_and_dest() {
        let s = Step::Join {
            left: SlotId(1),
            right: SlotId(2),
            key_len: 1,
            dst: SlotId(3),
        };
        assert_eq!(s.sources(), vec![SlotId(1), SlotId(2)]);
        assert_eq!(s.dest(), Some(SlotId(3)));
        assert_eq!(Step::Barrier.dest(), None);
        assert!(Step::Barrier.sources().is_empty());
    }

    #[test]
    fn map_slots_rewrites_everything() {
        let mut s = Step::Filter {
            src: SlotId(0),
            pred: Predicate::cmp(0, CmpOp::Eq, Value::U32(1)),
            dst: SlotId(1),
        };
        s.map_slots(|SlotId(i)| SlotId(i + 10));
        assert_eq!(s.sources(), vec![SlotId(10)]);
        assert_eq!(s.dest(), Some(SlotId(11)));
    }

    #[test]
    fn display_nonempty() {
        let s = Step::Store {
            src: SlotId(0),
            output: 0,
        };
        assert_eq!(s.to_string(), "store %0 -> out0");
        assert_eq!(s.mnemonic(), "store");
    }
}
