//! The kernel interpreter: executes operators over real relations while
//! charging the simulated device.
//!
//! Execution follows the paper's three-stage skeleton:
//!
//! 1. **partition** — one kernel computing per-CTA input ranges (even split,
//!    binary-search key ranges, or replicate-right);
//! 2. **compute** — one kernel running the step list per CTA over its
//!    partition, producing real output tuples and accumulating work
//!    quantities (bytes per memory space, ALU ops, barriers);
//! 3. **gather** — one kernel densifying the per-CTA results into the
//!    output relation.
//!
//! Kernel-dependent operators (SORT, grouped AGGREGATE) execute as
//! multi-pass global kernels instead.
//!
//! ## Divergence model
//!
//! Runtime slots carry a *lane count* alongside their tuples: the number of
//! thread lanes occupied. A filter into registers keeps its input's lanes
//! (threads whose tuple failed the predicate idle but stay allocated — the
//! Figure 20 effect), while stream compaction re-densifies lanes at the
//! price of shared-memory traffic and a prefix sum.

use kw_gpu_sim::{Device, KernelQuantities, KernelResources, LaunchDims};
use kw_relational::{ops, Relation};

use crate::{
    estimate_resources, validate, GpuOperator, IrError, OperatorBody, OptLevel, PartitionSpec,
    Result, SetOpKind, Space, Step,
};

/// Maximum CTAs per grid (CUDA's 65535 x-dimension limit).
pub const MAX_GRID_CTAS: u32 = 65_535;

/// Per-element local-memory spill bytes charged (each way) for every step
/// at `-O0`: unoptimized PTX keeps working values in local memory, which
/// resides in global DRAM.
pub const O0_SPILL_BYTES: u64 = 8;

/// Radix-sort passes charged per key attribute by the SORT cost model
/// (eight 4-bit digit passes over a 32-bit key).
pub const SORT_PASSES_PER_ATTR: u64 = 8;

/// Result of executing one operator.
#[derive(Debug)]
pub struct ExecResult {
    /// The produced output relations, in output order.
    pub outputs: Vec<Relation>,
    /// The resources the compute kernel occupied.
    pub resources: KernelResources,
    /// Kernels launched for this operator.
    pub kernels: u64,
}

/// Execute `op` on `device` over `inputs`.
///
/// `opt` controls the `-O0` spill model: at [`OptLevel::O0`] register
/// intermediates are charged as local-memory (global DRAM) traffic and no
/// register reuse is assumed, mirroring unoptimized PTX.
///
/// # Errors
///
/// Returns [`IrError`] for invalid IR, schema-mismatched inputs, or device
/// failures (out of memory, infeasible launch).
pub fn execute(
    op: &GpuOperator,
    inputs: &[&Relation],
    device: &mut Device,
    opt: OptLevel,
) -> Result<ExecResult> {
    let inferred = validate(op)?;
    if inputs.len() != op.inputs.len() {
        return Err(IrError::validation(format!(
            "operator {} expects {} inputs, got {}",
            op.label,
            op.inputs.len(),
            inputs.len()
        )));
    }
    for (i, r) in inputs.iter().enumerate() {
        if r.schema() != &op.inputs[i] {
            return Err(IrError::validation(format!(
                "input {i} schema {} does not match declared {}",
                r.schema(),
                op.inputs[i]
            )));
        }
    }

    match &op.body {
        OperatorBody::Streaming {
            steps, partition, ..
        } => execute_streaming(op, steps, *partition, inputs, &inferred, device, opt),
        OperatorBody::GlobalSort { attrs } => execute_sort(op, attrs, inputs[0], device),
        OperatorBody::GlobalAggregate { group_by, aggs } => {
            execute_aggregate(op, group_by, aggs, inputs[0], device)
        }
    }
}

/// A runtime slot: real tuples plus the occupied lane count.
#[derive(Debug, Clone)]
struct RtSlot {
    rel: Relation,
    lanes: u64,
}

#[allow(clippy::too_many_arguments)]
fn execute_streaming(
    op: &GpuOperator,
    steps: &[Step],
    partition: PartitionSpec,
    inputs: &[&Relation],
    inferred: &crate::InferredSchemas,
    device: &mut Device,
    opt: OptLevel,
) -> Result<ExecResult> {
    let resources = estimate_resources(op, inferred, opt)?;
    let threads = cta_threads(op, device);

    let pivot_index = match partition {
        PartitionSpec::Even | PartitionSpec::ReplicateRight => 0,
        PartitionSpec::KeyRange { pivot, .. } => pivot,
    };
    let n_pivot = inputs.get(pivot_index).map_or(0, |r| r.len());
    let grid = ((n_pivot as u64).div_ceil(u64::from(threads)) as u32).clamp(1, MAX_GRID_CTAS);
    let dims = LaunchDims::new(grid, threads);

    // ---- Partition stage -------------------------------------------------
    let ranges = compute_partitions(partition, inputs, grid)?;
    let mut pq = KernelQuantities::default();
    for r in inputs {
        // The partition kernel reads one pivot tuple per CTA and binary
        // searches each input.
        let key_bytes = r.schema().tuple_bytes() as u64;
        pq.global_bytes_read += u64::from(grid) * key_bytes.min(16);
        pq.alu_ops += u64::from(grid) * ((r.len().max(2) as f64).log2().ceil() as u64);
    }
    device.launch(
        format!("{}.partition", op.label),
        dims,
        KernelResources {
            registers_per_thread: 16,
            shared_per_cta: 0,
        },
        &pq,
    )?;

    // ---- Compute stage ---------------------------------------------------
    let slot_count = op.slots().map(<[_]>::len).unwrap_or(0);
    let mut q = KernelQuantities::default();
    let mut out_words: Vec<Vec<u64>> = vec![Vec::new(); op.outputs];

    for cta in 0..grid as usize {
        let mut slots: Vec<Option<RtSlot>> = vec![None; slot_count];
        for step in steps {
            exec_step(
                op,
                step,
                cta,
                &ranges,
                inputs,
                &mut slots,
                &mut q,
                &mut out_words,
                opt,
            )?;
        }
    }
    device.launch(format!("{}.compute", op.label), dims, resources, &q)?;

    // ---- Gather stage ----------------------------------------------------
    // The compute stage keeps each CTA's results on chip and records their
    // sizes; gather prefix-sums the size array and performs the (single)
    // dense global write — which the Store steps above already charged. The
    // gather kernel itself only touches the per-CTA size array.
    let mut outputs = Vec::with_capacity(op.outputs);
    let mut gq = KernelQuantities::default();
    for (i, words) in out_words.into_iter().enumerate() {
        let schema = inferred.outputs[i]
            .clone()
            .ok_or_else(|| IrError::validation(format!("output {i} never stored")))?;
        gq.global_bytes_read += u64::from(grid) * 8;
        gq.global_bytes_written += u64::from(grid) * 8;
        gq.alu_ops += u64::from(grid); // prefix sum over CTA result sizes
        outputs.push(Relation::from_words(schema, words)?);
    }
    device.launch(
        format!("{}.gather", op.label),
        dims,
        KernelResources {
            registers_per_thread: 12,
            shared_per_cta: 0,
        },
        &gq,
    )?;

    Ok(ExecResult {
        outputs,
        resources,
        kernels: 3,
    })
}

/// Per-CTA input ranges: `ranges[cta][input] = (start, end)`.
fn compute_partitions(
    partition: PartitionSpec,
    inputs: &[&Relation],
    grid: u32,
) -> Result<Vec<Vec<(usize, usize)>>> {
    let grid = grid as usize;
    let mut ranges = vec![vec![(0usize, 0usize); inputs.len()]; grid];
    match partition {
        PartitionSpec::Even => {
            for (i, r) in inputs.iter().enumerate() {
                for (cta, row) in ranges.iter_mut().enumerate() {
                    let s = cta * r.len() / grid;
                    let e = (cta + 1) * r.len() / grid;
                    row[i] = (s, e);
                }
            }
        }
        PartitionSpec::ReplicateRight => {
            for (i, r) in inputs.iter().enumerate() {
                for (cta, row) in ranges.iter_mut().enumerate() {
                    row[i] = if i == 0 {
                        (cta * r.len() / grid, (cta + 1) * r.len() / grid)
                    } else {
                        (0, r.len())
                    };
                }
            }
        }
        PartitionSpec::KeyRange { pivot, key_len } => {
            let pr = inputs[pivot];
            // Boundary keys at even pivot positions, realigned to key-run
            // starts so equal keys never straddle CTAs.
            let mut starts = vec![vec![0usize; inputs.len()]; grid + 1];
            for (cta, row) in starts.iter_mut().enumerate().take(grid).skip(1) {
                let pos = cta * pr.len() / grid;
                if pr.is_empty() {
                    continue;
                }
                let probe: Vec<u64> = pr.tuple(pos.min(pr.len() - 1))[..key_len].to_vec();
                for (i, r) in inputs.iter().enumerate() {
                    row[i] = r.lower_bound(&probe);
                }
            }
            for (i, r) in inputs.iter().enumerate() {
                starts[grid][i] = r.len();
            }
            // Enforce monotonicity (duplicate pivot keys may repeat bounds).
            for i in 0..inputs.len() {
                let mut prev = starts[0][i];
                for row in starts.iter_mut().skip(1) {
                    if row[i] < prev {
                        row[i] = prev;
                    }
                    prev = row[i];
                }
            }
            for cta in 0..grid {
                for i in 0..inputs.len() {
                    ranges[cta][i] = (starts[cta][i], starts[cta + 1][i]);
                }
            }
        }
    }
    Ok(ranges)
}

fn sub_relation(rel: &Relation, range: (usize, usize)) -> Result<Relation> {
    let arity = rel.schema().arity();
    let words = rel.words()[range.0 * arity..range.1 * arity].to_vec();
    Ok(Relation::from_sorted_words(rel.schema().clone(), words)?)
}

#[allow(clippy::too_many_arguments)]
fn exec_step(
    op: &GpuOperator,
    step: &Step,
    cta: usize,
    ranges: &[Vec<(usize, usize)>],
    inputs: &[&Relation],
    slots: &mut [Option<RtSlot>],
    q: &mut KernelQuantities,
    out_words: &mut [Vec<u64>],
    opt: OptLevel,
) -> Result<()> {
    let space = |id: crate::SlotId| op.slot_space(id);
    let get = |slots: &[Option<RtSlot>], id: crate::SlotId| -> Result<RtSlot> {
        slots[id.0]
            .clone()
            .ok_or_else(|| IrError::validation(format!("slot {id} empty at runtime")))
    };

    // -O0 local-memory spills: unoptimized code round-trips each step's
    // working values through local memory (global DRAM).
    if opt == OptLevel::O0 {
        let processed: u64 = step
            .sources()
            .iter()
            .filter_map(|s| slots[s.0].as_ref())
            .map(|s| s.rel.len() as u64)
            .sum();
        q.global_bytes_read += processed * O0_SPILL_BYTES;
        q.global_bytes_written += processed * O0_SPILL_BYTES;
    }

    // Charge a read of `slot` from `sp`; lanes matter for O0 spills.
    let charge_read = |q: &mut KernelQuantities, sp: Space, slot: &RtSlot| {
        let dense = slot.rel.byte_size() as u64;
        let sparse = slot.lanes * slot.rel.schema().tuple_bytes() as u64;
        match sp {
            Space::Register => {
                if opt == OptLevel::O0 {
                    q.global_bytes_read += sparse; // local-memory spill
                }
            }
            Space::Shared => q.shared_bytes_read += dense,
            Space::Global => q.global_bytes_read += dense,
        }
    };
    let charge_write = |q: &mut KernelQuantities, sp: Space, rel: &Relation, lanes: u64| {
        let dense = rel.byte_size() as u64;
        let sparse = lanes * rel.schema().tuple_bytes() as u64;
        match sp {
            Space::Register => {
                if opt == OptLevel::O0 {
                    q.global_bytes_written += sparse.max(dense);
                }
            }
            Space::Shared => q.shared_bytes_written += dense,
            Space::Global => q.global_bytes_written += dense,
        }
    };

    match step {
        Step::Load { input, dst } => {
            let rel = sub_relation(inputs[*input], ranges[cta][*input])?;
            q.global_bytes_read += rel.byte_size() as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Filter { src, pred, dst } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            q.alu_ops += s.lanes * pred.alu_ops();
            let rel = ops::select(&s.rel, pred)?;
            // Register destinations keep sparse lanes (idle threads);
            // CTA-visible destinations are written compacted by the filter.
            let lanes = if space(*dst) == Space::Register {
                s.lanes
            } else {
                rel.len() as u64
            };
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Project {
            src,
            attrs,
            key_arity,
            dst,
        } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            q.alu_ops += s.lanes * attrs.len() as u64;
            let rel = ops::project(&s.rel, attrs, *key_arity)?;
            let lanes = if space(*dst) == Space::Register {
                s.lanes
            } else {
                rel.len() as u64
            };
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Compute {
            src,
            exprs,
            key_arity,
            dst,
        } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            let ops_per_tuple: u64 = exprs.iter().map(|e| e.alu_ops() + 1).sum();
            q.alu_ops += s.lanes * ops_per_tuple;
            let rel = ops::compute(&s.rel, exprs, *key_arity)?;
            let lanes = if space(*dst) == Space::Register {
                s.lanes
            } else {
                rel.len() as u64
            };
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Join {
            left,
            right,
            key_len,
            dst,
        } => {
            let l = get(slots, *left)?;
            let r = get(slots, *right)?;
            charge_read(q, space(*left), &l);
            charge_read(q, space(*right), &r);
            let rel = ops::join(&l.rel, &r.rel, *key_len)?;
            q.alu_ops +=
                (l.rel.len() + r.rel.len()) as u64 * *key_len as u64 + 2 * rel.len() as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Product { left, right, dst } => {
            let l = get(slots, *left)?;
            let r = get(slots, *right)?;
            charge_read(q, space(*left), &l);
            charge_read(q, space(*right), &r);
            let rel = ops::product(&l.rel, &r.rel)?;
            q.alu_ops += l.rel.len() as u64 + rel.len() as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::SemiJoin {
            left,
            right,
            key_len,
            negated,
            dst,
        } => {
            let l = get(slots, *left)?;
            let r = get(slots, *right)?;
            charge_read(q, space(*left), &l);
            charge_read(q, space(*right), &r);
            let rel = if *negated {
                ops::anti_join(&l.rel, &r.rel, *key_len)?
            } else {
                ops::semi_join(&l.rel, &r.rel, *key_len)?
            };
            // One binary search per left tuple over the right partition.
            q.alu_ops += l.rel.len() as u64
                * ((r.rel.len().max(2) as f64).log2().ceil() as u64)
                * *key_len as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::SetOp {
            kind,
            left,
            right,
            dst,
        } => {
            let l = get(slots, *left)?;
            let r = get(slots, *right)?;
            charge_read(q, space(*left), &l);
            charge_read(q, space(*right), &r);
            let rel = match kind {
                SetOpKind::Union => ops::union(&l.rel, &r.rel)?,
                SetOpKind::Intersect => ops::intersect(&l.rel, &r.rel)?,
                SetOpKind::Difference => ops::difference(&l.rel, &r.rel)?,
            };
            q.alu_ops += (l.rel.len() + r.rel.len()) as u64
                * l.rel.schema().key_arity().max(1) as u64
                + rel.len() as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Unique { src, dst } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            let rel = ops::unique(&s.rel)?;
            q.alu_ops += s.rel.len() as u64 * s.rel.schema().arity() as u64;
            let lanes = rel.len() as u64;
            charge_write(q, space(*dst), &rel, lanes);
            slots[dst.0] = Some(RtSlot { rel, lanes });
        }
        Step::Compact { src, dst } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            q.alu_ops += 2 * s.lanes; // prefix-sum scan over allocated lanes
            let lanes = s.rel.len() as u64;
            charge_write(q, space(*dst), &s.rel, lanes);
            slots[dst.0] = Some(RtSlot { rel: s.rel, lanes });
        }
        Step::Barrier => {
            q.barriers += 1;
        }
        Step::Store { src, output } => {
            let s = get(slots, *src)?;
            charge_read(q, space(*src), &s);
            q.global_bytes_written += s.rel.byte_size() as u64;
            out_words[*output].extend_from_slice(s.rel.words());
        }
    }
    Ok(())
}

// ---- Global (kernel-dependent) operators ---------------------------------

fn execute_sort(
    op: &GpuOperator,
    attrs: &[usize],
    input: &Relation,
    device: &mut Device,
) -> Result<ExecResult> {
    let out = ops::sort_on(input, attrs)?;
    let kernels = sort_cost(op, input, attrs.len().max(1) as u64, device)?;
    Ok(ExecResult {
        outputs: vec![out],
        resources: KernelResources {
            registers_per_thread: 24,
            shared_per_cta: 4 * 1024,
        },
        kernels,
    })
}

/// CTA size for `op` on `device`: the operator's preferred size, shrunk to
/// the device's hardware limit. This is an explicit code-generation choice
/// (smaller targets like the CPU-via-Ocelot config allow only 64-thread
/// CTAs); the occupancy calculator itself no longer clamps — it reports an
/// oversized launch as infeasible.
fn cta_threads(op: &GpuOperator, device: &Device) -> u32 {
    op.threads_per_cta
        .max(1)
        .min(device.config().max_threads_per_cta)
}

/// Charge a multi-pass radix sort over `input` and return kernels launched.
fn sort_cost(
    op: &GpuOperator,
    input: &Relation,
    key_attrs: u64,
    device: &mut Device,
) -> Result<u64> {
    let n = input.len() as u64;
    let bytes = input.byte_size() as u64;
    let threads = cta_threads(op, device);
    let grid = (n.div_ceil(u64::from(threads)) as u32).clamp(1, MAX_GRID_CTAS);
    let passes = SORT_PASSES_PER_ATTR * key_attrs;
    let res = KernelResources {
        registers_per_thread: 24,
        shared_per_cta: 4 * 1024,
    };
    for pass in 0..passes {
        let q = KernelQuantities {
            global_bytes_read: bytes,
            global_bytes_written: bytes,
            shared_bytes_read: n * 4,
            shared_bytes_written: n * 4,
            alu_ops: 4 * n,
            barriers: 2,
        };
        device.launch(
            format!("{}.sort.pass{pass}", op.label),
            LaunchDims::new(grid, threads),
            res,
            &q,
        )?;
    }
    Ok(passes)
}

fn execute_aggregate(
    op: &GpuOperator,
    group_by: &[usize],
    aggs: &[kw_relational::ops::AggFn],
    input: &Relation,
    device: &mut Device,
) -> Result<ExecResult> {
    let out = ops::aggregate(input, group_by, aggs)?;
    // Phase 1: sort by the group attributes (kernel-dependent phase).
    let mut kernels = if group_by.is_empty() {
        0
    } else {
        sort_cost(op, input, group_by.len() as u64, device)?
    };
    // Phase 2: segmented reduction.
    let n = input.len() as u64;
    let threads = cta_threads(op, device);
    let grid = (n.div_ceil(u64::from(threads)) as u32).clamp(1, MAX_GRID_CTAS);
    let alu_per_tuple: u64 = aggs.iter().map(|a| a.alu_ops()).sum::<u64>().max(1);
    let q = KernelQuantities {
        global_bytes_read: input.byte_size() as u64,
        global_bytes_written: out.byte_size() as u64,
        shared_bytes_read: n * 8,
        shared_bytes_written: n * 8,
        alu_ops: n * alu_per_tuple,
        barriers: 2,
    };
    device.launch(
        format!("{}.reduce", op.label),
        LaunchDims::new(grid, threads),
        KernelResources {
            registers_per_thread: 28,
            shared_per_cta: 8 * 1024,
        },
        &q,
    )?;
    kernels += 1;
    Ok(ExecResult {
        outputs: vec![out],
        resources: KernelResources {
            registers_per_thread: 28,
            shared_per_cta: 8 * 1024,
        },
        kernels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, SlotDecl, SlotId};
    use kw_gpu_sim::DeviceConfig;
    use kw_relational::ops::AggFn;
    use kw_relational::{gen, CmpOp, Predicate, Schema, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn select_op(schema: Schema, pred: Predicate) -> GpuOperator {
        GpuOperator::streaming(
            "select",
            vec![schema],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("f", Space::Register),
                SlotDecl::new("dense", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred,
                    dst: SlotId(1),
                },
                Step::Compact {
                    src: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        )
    }

    #[test]
    fn select_matches_cpu_oracle() {
        let input = gen::micro_input(10_000, 42);
        let pred = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));
        let op = select_op(input.schema().clone(), pred.clone());
        let mut dev = device();
        let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
        let oracle = ops::select(&input, &pred).unwrap();
        assert_eq!(result.outputs[0], oracle);
        assert_eq!(result.kernels, 3);
        assert_eq!(dev.stats().kernel_launches, 3);
        assert!(dev.stats().global_bytes_read >= input.byte_size() as u64);
    }

    #[test]
    fn join_key_range_matches_cpu_oracle() {
        let (l, r) = gen::join_inputs(5_000, 2, 0.5, 7);
        let op = GpuOperator::streaming(
            "join",
            vec![l.schema().clone(), r.schema().clone()],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 1,
                    dst: SlotId(1),
                },
                Step::Barrier,
                Step::Join {
                    left: SlotId(0),
                    right: SlotId(1),
                    key_len: 1,
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: 1,
            },
        );
        let mut dev = device();
        let result = execute(&op, &[&l, &r], &mut dev, OptLevel::O3).unwrap();
        let oracle = ops::join(&l, &r, 1).unwrap();
        assert_eq!(result.outputs[0], oracle);
        assert!(dev.stats().shared_bytes_written > 0);
        assert!(dev.stats().barriers > 0);
    }

    #[test]
    fn join_with_heavy_duplicates_stays_correct() {
        // Heavy key duplication stresses run-aligned partitioning.
        let schema = Schema::uniform_u32(2);
        let mut r = gen::rng(3);
        use rand::Rng;
        let words: Vec<u64> = (0..4000)
            .flat_map(|_| vec![u64::from(r.gen_range(0..20u32)), u64::from(r.gen::<u32>())])
            .collect();
        let left = Relation::from_words(schema.clone(), words.clone()).unwrap();
        let right = Relation::from_words(schema.clone(), words[..2000].to_vec()).unwrap();
        let op = GpuOperator::streaming(
            "join",
            vec![schema.clone(), schema],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 1,
                    dst: SlotId(1),
                },
                Step::Barrier,
                Step::Join {
                    left: SlotId(0),
                    right: SlotId(1),
                    key_len: 1,
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: 1,
            },
        );
        let mut dev = device();
        let result = execute(&op, &[&left, &right], &mut dev, OptLevel::O3).unwrap();
        let oracle = ops::join(&left, &right, 1).unwrap();
        assert_eq!(result.outputs[0], oracle);
    }

    #[test]
    fn o0_spills_registers_to_global() {
        let input = gen::micro_input(10_000, 11);
        let pred = Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2));
        let op = select_op(input.schema().clone(), pred);

        let mut d3 = device();
        execute(&op, &[&input], &mut d3, OptLevel::O3).unwrap();
        let mut d0 = device();
        execute(&op, &[&input], &mut d0, OptLevel::O0).unwrap();

        assert!(d0.stats().global_bytes() > d3.stats().global_bytes());
        assert!(d0.stats().gpu_cycles > d3.stats().gpu_cycles);
        // Results identical regardless of optimization level.
    }

    #[test]
    fn sort_matches_oracle_and_launches_passes() {
        let input = gen::micro_input(5_000, 9);
        let op = GpuOperator::global_sort("sort", input.schema().clone(), vec![2]);
        let mut dev = device();
        let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
        assert_eq!(result.outputs[0], ops::sort_on(&input, &[2]).unwrap());
        assert_eq!(dev.stats().kernel_launches, SORT_PASSES_PER_ATTR);
    }

    #[test]
    fn aggregate_matches_oracle() {
        let schema = Schema::uniform_u32(2);
        let mut r = gen::rng(5);
        use rand::Rng;
        let words: Vec<u64> = (0..3000)
            .flat_map(|_| {
                vec![
                    u64::from(r.gen_range(0..10u32)),
                    u64::from(r.gen_range(0..100u32)),
                ]
            })
            .collect();
        let input = Relation::from_words(schema.clone(), words).unwrap();
        let op = GpuOperator::global_aggregate(
            "agg",
            schema,
            vec![0],
            vec![AggFn::Sum(1), AggFn::Count],
        );
        let mut dev = device();
        let result = execute(&op, &[&input], &mut dev, OptLevel::O3).unwrap();
        let oracle = ops::aggregate(&input, &[0], &[AggFn::Sum(1), AggFn::Count]).unwrap();
        assert_eq!(result.outputs[0], oracle);
        assert!(dev.stats().kernel_launches > SORT_PASSES_PER_ATTR);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let input = gen::micro_input(100, 1);
        let op = select_op(Schema::uniform_u32(2), Predicate::True);
        let mut dev = device();
        assert!(execute(&op, &[&input], &mut dev, OptLevel::O3).is_err());
    }

    #[test]
    fn empty_input_works() {
        let schema = Schema::uniform_u32(4);
        let empty = Relation::empty(schema.clone());
        let op = select_op(schema, Predicate::True);
        let mut dev = device();
        let result = execute(&op, &[&empty], &mut dev, OptLevel::O3).unwrap();
        assert!(result.outputs[0].is_empty());
    }

    #[test]
    fn replicate_right_product() {
        let l = gen::micro_input(500, 2);
        let r = gen::micro_input(40, 3);
        let op = GpuOperator::streaming(
            "product",
            vec![l.schema().clone(), r.schema().clone()],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 1,
                    dst: SlotId(1),
                },
                Step::Barrier,
                Step::Product {
                    left: SlotId(0),
                    right: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::ReplicateRight,
        );
        let mut dev = device();
        let result = execute(&op, &[&l, &r], &mut dev, OptLevel::O3).unwrap();
        assert_eq!(result.outputs[0], ops::product(&l, &r).unwrap());
    }
}
