//! GPU operator descriptions: the unit the interpreter executes.
//!
//! A [`GpuOperator`] is one (possibly fused) RA operator in the paper's
//! multi-stage form: a *partition* policy, a *compute* body of [`Step`]s
//! over slots, and an implicit *gather* stage that densifies stored
//! outputs. Kernel-dependent operators (SORT, grouped AGGREGATE) are
//! *global* bodies that cannot be expressed as independent CTA streams —
//! which is precisely why the paper cannot fuse across them.

use kw_relational::ops::AggFn;
use kw_relational::Schema;

use crate::{SlotDecl, SlotId, Space, Step};

/// How the inputs are partitioned across CTAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Split every input evenly by tuple index. Valid for elementwise
    /// (thread-dependent) bodies: SELECT, PROJECT, arithmetic.
    Even,
    /// Partition by key ranges: the pivot input is split at key boundaries
    /// and every other input is partitioned by binary search on the shared
    /// key prefix of length `key_len` (Figure 13(a) of the paper).
    KeyRange {
        /// Index of the pivot input.
        pivot: usize,
        /// Length of the shared key prefix.
        key_len: usize,
    },
    /// Every CTA sees input 0 partitioned evenly and the full range of all
    /// other inputs (used by CROSS PRODUCT, whose right side is replicated).
    ReplicateRight,
}

/// The body of a [`GpuOperator`].
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorBody {
    /// A streaming (fusible) body: per-CTA steps over partitioned inputs.
    Streaming {
        /// Slot declarations.
        slots: Vec<SlotDecl>,
        /// The compute-stage step list.
        steps: Vec<Step>,
        /// How inputs are split across CTAs.
        partition: PartitionSpec,
    },
    /// A global SORT on the given attributes (kernel-dependent).
    GlobalSort {
        /// Attributes to sort on (become the new key, see
        /// [`kw_relational::ops::sort_on`]).
        attrs: Vec<usize>,
    },
    /// A global grouped aggregation (kernel-dependent: requires a global
    /// sort phase on the group attributes).
    GlobalAggregate {
        /// Grouping attributes.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggFn>,
    },
}

impl OperatorBody {
    /// Whether this body is a streaming (fusible) body.
    pub fn is_streaming(&self) -> bool {
        matches!(self, OperatorBody::Streaming { .. })
    }
}

/// A complete GPU operator: label, input schemas, body and launch shape.
///
/// # Examples
///
/// Build a SELECT by hand (the `kw-primitives` crate provides canonical
/// builders):
///
/// ```
/// use kw_kernel_ir::{GpuOperator, OperatorBody, PartitionSpec, SlotDecl, SlotId, Space, Step};
/// use kw_relational::{CmpOp, Predicate, Schema, Value};
///
/// let schema = Schema::uniform_u32(4);
/// let op = GpuOperator::streaming(
///     "select",
///     vec![schema],
///     1,
///     vec![
///         SlotDecl::new("in", Space::Register),
///         SlotDecl::new("matched", Space::Register),
///         SlotDecl::new("dense", Space::Shared),
///     ],
///     vec![
///         Step::Load { input: 0, dst: SlotId(0) },
///         Step::Filter {
///             src: SlotId(0),
///             pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(100)),
///             dst: SlotId(1),
///         },
///         Step::Compact { src: SlotId(1), dst: SlotId(2) },
///         Step::Barrier,
///         Step::Store { src: SlotId(2), output: 0 },
///     ],
///     PartitionSpec::Even,
/// );
/// assert_eq!(op.output_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuOperator {
    /// Diagnostic label (used in timeline events).
    pub label: String,
    /// Schemas of the global inputs, in order.
    pub inputs: Vec<Schema>,
    /// Number of global outputs.
    pub outputs: usize,
    /// The operator body.
    pub body: OperatorBody,
    /// Threads per CTA (the paper fixes one launch shape for all fusion
    /// candidates; 256 works best in most cases).
    pub threads_per_cta: u32,
}

/// Default CTA size used across the reproduction.
pub const DEFAULT_THREADS_PER_CTA: u32 = 256;

impl GpuOperator {
    /// Construct a streaming operator.
    pub fn streaming(
        label: impl Into<String>,
        inputs: Vec<Schema>,
        outputs: usize,
        slots: Vec<SlotDecl>,
        steps: Vec<Step>,
        partition: PartitionSpec,
    ) -> GpuOperator {
        GpuOperator {
            label: label.into(),
            inputs,
            outputs,
            body: OperatorBody::Streaming {
                slots,
                steps,
                partition,
            },
            threads_per_cta: DEFAULT_THREADS_PER_CTA,
        }
    }

    /// Construct a global SORT operator.
    pub fn global_sort(label: impl Into<String>, input: Schema, attrs: Vec<usize>) -> GpuOperator {
        GpuOperator {
            label: label.into(),
            inputs: vec![input],
            outputs: 1,
            body: OperatorBody::GlobalSort { attrs },
            threads_per_cta: DEFAULT_THREADS_PER_CTA,
        }
    }

    /// Construct a global grouped-aggregate operator.
    pub fn global_aggregate(
        label: impl Into<String>,
        input: Schema,
        group_by: Vec<usize>,
        aggs: Vec<AggFn>,
    ) -> GpuOperator {
        GpuOperator {
            label: label.into(),
            inputs: vec![input],
            outputs: 1,
            body: OperatorBody::GlobalAggregate { group_by, aggs },
            threads_per_cta: DEFAULT_THREADS_PER_CTA,
        }
    }

    /// Number of global outputs.
    pub fn output_count(&self) -> usize {
        self.outputs
    }

    /// The streaming slots, if this is a streaming body.
    pub fn slots(&self) -> Option<&[SlotDecl]> {
        match &self.body {
            OperatorBody::Streaming { slots, .. } => Some(slots),
            _ => None,
        }
    }

    /// The streaming steps, if this is a streaming body.
    pub fn steps(&self) -> Option<&[Step]> {
        match &self.body {
            OperatorBody::Streaming { steps, .. } => Some(steps),
            _ => None,
        }
    }

    /// The space of slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-streaming body or with a bad slot id;
    /// validated IR never does.
    pub fn slot_space(&self, id: SlotId) -> Space {
        self.slots().expect("streaming body")[id.0].space
    }

    /// Render the body as pseudo-assembly for diagnostics (the analogue of
    /// the paper's Figure 15 generated code listing).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("operator {} ({} inputs)\n", self.label, self.inputs.len());
        match &self.body {
            OperatorBody::Streaming {
                slots,
                steps,
                partition,
            } => {
                let _ = writeln!(s, "  partition: {partition:?}");
                for (i, d) in slots.iter().enumerate() {
                    let _ = writeln!(s, "  slot %{i}: {} [{}]", d.name, d.space);
                }
                for st in steps {
                    let _ = writeln!(s, "  {st}");
                }
            }
            OperatorBody::GlobalSort { attrs } => {
                let _ = writeln!(s, "  global sort on {attrs:?}");
            }
            OperatorBody::GlobalAggregate { group_by, aggs } => {
                let _ = writeln!(s, "  global aggregate by {group_by:?}: {aggs:?}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let s = Schema::uniform_u32(2);
        let op = GpuOperator::global_sort("sort", s.clone(), vec![0]);
        assert!(!op.body.is_streaming());
        assert_eq!(op.output_count(), 1);
        assert!(op.steps().is_none());

        let op = GpuOperator::global_aggregate("agg", s, vec![0], vec![AggFn::Count]);
        assert!(matches!(op.body, OperatorBody::GlobalAggregate { .. }));
    }

    #[test]
    fn disassembly_mentions_steps() {
        let s = Schema::uniform_u32(2);
        let op = GpuOperator::streaming(
            "t",
            vec![s],
            1,
            vec![SlotDecl::new("in", Space::Register)],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Store {
                    src: SlotId(0),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        );
        let d = op.disassemble();
        assert!(d.contains("load"));
        assert!(d.contains("store"));
        assert_eq!(op.slot_space(SlotId(0)), Space::Register);
    }
}
