//! Error type for the kernel IR.

use std::fmt;

/// Errors produced while validating, optimizing or executing kernel IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// The IR is structurally invalid (use before def, bad slot id, missing
    /// barrier, unstored output, ...).
    Validation {
        /// Description of the violation.
        detail: String,
    },
    /// A relational-level error (schema mismatch, bad attribute) surfaced
    /// while inferring schemas or executing steps.
    Relational(kw_relational::RelationalError),
    /// A device-level error (out of memory, infeasible launch).
    Sim(kw_gpu_sim::SimError),
}

impl IrError {
    /// Convenience constructor for validation failures.
    pub fn validation(detail: impl Into<String>) -> IrError {
        IrError::Validation {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Validation { detail } => write!(f, "invalid kernel IR: {detail}"),
            IrError::Relational(e) => write!(f, "relational error in kernel IR: {e}"),
            IrError::Sim(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Validation { .. } => None,
            IrError::Relational(e) => Some(e),
            IrError::Sim(e) => Some(e),
        }
    }
}

impl From<kw_relational::RelationalError> for IrError {
    fn from(e: kw_relational::RelationalError) -> Self {
        IrError::Relational(e)
    }
}

impl From<kw_gpu_sim::SimError> for IrError {
    fn from(e: kw_gpu_sim::SimError) -> Self {
        IrError::Sim(e)
    }
}

/// Convenience alias for kernel-IR results.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = IrError::validation("slot %3 used before definition");
        assert!(e.to_string().contains("%3"));
        assert!(e.source().is_none());
        let e: IrError = kw_gpu_sim::SimError::InvalidBuffer { id: 1 }.into();
        assert!(e.source().is_some());
    }
}
