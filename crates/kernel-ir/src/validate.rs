//! Structural validation of kernel IR.
//!
//! Beyond schema inference, the validator enforces the GPU execution rules
//! the paper's code generator must respect:
//!
//! * CTA-wide steps (JOIN, PRODUCT, SET ops, UNIQUE, COMPACT) cannot read
//!   per-thread registers — their inputs must be CTA-visible (shared or
//!   global), and their results are CTA-visible too;
//! * a step reading a shared slot must be separated from that slot's
//!   producer by a CTA barrier (Figure 13(b): "a CTA barrier synchronization
//!   is needed after the producer operation");
//! * every declared output is stored exactly once;
//! * the partition spec is consistent with the inputs.

use crate::{
    infer_schemas, GpuOperator, InferredSchemas, IrError, OperatorBody, PartitionSpec, Result,
    Space, Step,
};

/// Validate `op`, returning its inferred schemas on success.
///
/// # Errors
///
/// Returns [`IrError::Validation`] or [`IrError::Relational`] describing the
/// first violation found.
pub fn validate(op: &GpuOperator) -> Result<InferredSchemas> {
    let inferred = infer_schemas(op)?;

    let OperatorBody::Streaming {
        slots,
        steps,
        partition,
    } = &op.body
    else {
        return Ok(inferred); // global bodies have no step-level structure
    };

    // Outputs all stored.
    for (i, o) in inferred.outputs.iter().enumerate() {
        if o.is_none() {
            return Err(IrError::validation(format!("output {i} is never stored")));
        }
    }

    // Space rules + barrier discipline.
    let space = |id: crate::SlotId| slots[id.0].space;
    let mut def_index: Vec<Option<usize>> = vec![None; slots.len()];
    let mut barriers_at: Vec<usize> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        if matches!(step, Step::Barrier) {
            barriers_at.push(i);
        }
        // CTA-wide steps cannot source registers.
        let cta_wide = matches!(
            step,
            Step::Join { .. }
                | Step::Product { .. }
                | Step::SemiJoin { .. }
                | Step::SetOp { .. }
                | Step::Unique { .. }
        );
        for src in step.sources() {
            if cta_wide && space(src) == Space::Register {
                return Err(IrError::validation(format!(
                    "step {i} ({}) reads register slot {src}; CTA-wide operations require \
                     shared or global inputs",
                    step.mnemonic()
                )));
            }
            // Shared reads need an intervening barrier after the def.
            if space(src) == Space::Shared {
                let def = def_index[src.0]
                    .ok_or_else(|| IrError::validation(format!("slot {src} read before def")))?;
                let sync = barriers_at.iter().any(|&b| b > def && b < i);
                if !sync {
                    return Err(IrError::validation(format!(
                        "step {i} ({}) reads shared slot {src} without a barrier after its \
                         definition at step {def}",
                        step.mnemonic()
                    )));
                }
            }
        }
        if let Some(dst) = step.dest() {
            def_index[dst.0] = Some(i);
            if cta_wide && space(dst) == Space::Register {
                return Err(IrError::validation(format!(
                    "step {i} ({}) writes CTA-wide result to register slot {dst}",
                    step.mnemonic()
                )));
            }
            if matches!(step, Step::Compact { .. }) && space(dst) == Space::Register {
                return Err(IrError::validation(format!(
                    "step {i} (compact) must write to a CTA-visible slot, not register {dst}"
                )));
            }
        }
    }

    // Partition spec consistency.
    match partition {
        PartitionSpec::Even => {}
        PartitionSpec::KeyRange { pivot, key_len } => {
            if *pivot >= op.inputs.len() {
                return Err(IrError::validation(format!(
                    "key-range pivot {pivot} out of range for {} inputs",
                    op.inputs.len()
                )));
            }
            if *key_len == 0 {
                return Err(IrError::validation("key-range partition with empty key"));
            }
            for (i, s) in op.inputs.iter().enumerate() {
                if s.key_arity() < *key_len {
                    return Err(IrError::validation(format!(
                        "input {i} key arity {} shorter than partition key {key_len}",
                        s.key_arity()
                    )));
                }
                for k in 0..*key_len {
                    if s.attr(k) != op.inputs[*pivot].attr(k) {
                        return Err(IrError::validation(format!(
                            "input {i} partition-key attribute {k} type mismatch"
                        )));
                    }
                }
            }
        }
        PartitionSpec::ReplicateRight => {
            if op.inputs.is_empty() {
                return Err(IrError::validation("replicate-right with no inputs"));
            }
        }
    }

    Ok(inferred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SlotDecl, SlotId};
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn join_op(with_barrier: bool) -> GpuOperator {
        let s = Schema::uniform_u32(2);
        let mut steps = vec![
            Step::Load {
                input: 0,
                dst: SlotId(0),
            },
            Step::Load {
                input: 1,
                dst: SlotId(1),
            },
        ];
        if with_barrier {
            steps.push(Step::Barrier);
        }
        steps.push(Step::Join {
            left: SlotId(0),
            right: SlotId(1),
            key_len: 1,
            dst: SlotId(2),
        });
        steps.push(Step::Barrier);
        steps.push(Step::Store {
            src: SlotId(2),
            output: 0,
        });
        GpuOperator::streaming(
            "join",
            vec![s.clone(), s],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            steps,
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: 1,
            },
        )
    }

    #[test]
    fn valid_join_passes() {
        assert!(validate(&join_op(true)).is_ok());
    }

    #[test]
    fn missing_barrier_rejected() {
        let err = validate(&join_op(false)).unwrap_err();
        assert!(err.to_string().contains("barrier"));
    }

    #[test]
    fn join_from_registers_rejected() {
        let mut op = join_op(true);
        if let OperatorBody::Streaming { slots, .. } = &mut op.body {
            slots[0].space = Space::Register;
        }
        let err = validate(&op).unwrap_err();
        assert!(err.to_string().contains("CTA-wide"));
    }

    #[test]
    fn unstored_output_rejected() {
        let mut op = join_op(true);
        op.outputs = 2;
        let err = validate(&op).unwrap_err();
        assert!(err.to_string().contains("never stored"));
    }

    #[test]
    fn bad_partition_key_rejected() {
        let mut op = join_op(true);
        if let OperatorBody::Streaming { partition, .. } = &mut op.body {
            *partition = PartitionSpec::KeyRange {
                pivot: 5,
                key_len: 1,
            };
        }
        assert!(validate(&op).is_err());
    }

    #[test]
    fn register_pipeline_needs_no_barrier() {
        let s = Schema::uniform_u32(2);
        let op = GpuOperator::streaming(
            "sel",
            vec![s],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("f", Space::Register),
                SlotDecl::new("d", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1)),
                    dst: SlotId(1),
                },
                Step::Compact {
                    src: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        );
        assert!(validate(&op).is_ok());
    }
}
