//! Kernel intermediate representation, optimizer and simulating interpreter
//! for the Kernel Weaver reproduction (MICRO 2012).
//!
//! A [`GpuOperator`] is one (possibly fused) relational-algebra operator in
//! the paper's multi-stage form: partition / compute / gather. The compute
//! stage is a list of [`Step`]s over *slots* in explicit memory [`Space`]s —
//! the IR-level analogue of the CUDA the paper's code generator emits, at
//! the granularity its variable table actually manipulates.
//!
//! The crate provides:
//!
//! * the IR ([`Step`], [`SlotDecl`], [`GpuOperator`], [`PartitionSpec`]),
//! * schema inference and structural [`validate`]-ion (including the
//!   barrier discipline of CTA-dependent fusion),
//! * an optimizer ([`optimize`], [`OptLevel`]) whose passes model what
//!   `nvcc -O3` gains from fusion's larger textual scope,
//! * resource estimation ([`estimate_resources`]) feeding the occupancy
//!   model, and
//! * the interpreter ([`execute`]) that runs operators over real
//!   [`kw_relational::Relation`]s while charging a simulated
//!   [`kw_gpu_sim::Device`].
//!
//! # Examples
//!
//! ```
//! use kw_kernel_ir::{execute, GpuOperator, OptLevel, PartitionSpec, SlotDecl, SlotId, Space, Step};
//! use kw_gpu_sim::{Device, DeviceConfig};
//! use kw_relational::{gen, CmpOp, Predicate, Value};
//!
//! let input = gen::micro_input(1000, 1);
//! let op = GpuOperator::streaming(
//!     "select",
//!     vec![input.schema().clone()],
//!     1,
//!     vec![
//!         SlotDecl::new("in", Space::Register),
//!         SlotDecl::new("matched", Space::Register),
//!         SlotDecl::new("dense", Space::Shared),
//!     ],
//!     vec![
//!         Step::Load { input: 0, dst: SlotId(0) },
//!         Step::Filter {
//!             src: SlotId(0),
//!             pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 30)),
//!             dst: SlotId(1),
//!         },
//!         Step::Compact { src: SlotId(1), dst: SlotId(2) },
//!         Step::Barrier,
//!         Step::Store { src: SlotId(2), output: 0 },
//!     ],
//!     PartitionSpec::Even,
//! );
//! let mut device = Device::new(DeviceConfig::fermi_c2050());
//! let result = execute(&op, &[&input], &mut device, OptLevel::O3)?;
//! assert_eq!(result.kernels, 3); // partition, compute, gather
//! # Ok::<(), kw_kernel_ir::IrError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod infer;
mod interp;
mod operator;
mod opt;
mod resources;
mod step;
mod validate;

pub use error::{IrError, Result};
pub use infer::{aggregate_schema, infer_schemas, sorted_schema, InferredSchemas};
pub use interp::{execute, ExecResult, MAX_GRID_CTAS, SORT_PASSES_PER_ATTR};
pub use operator::{GpuOperator, OperatorBody, PartitionSpec, DEFAULT_THREADS_PER_CTA};
pub use opt::{
    combine_filters, eliminate_common_steps, eliminate_dead_steps, fold_constants, optimize,
    simplify_barriers, OptLevel, PassStats,
};
pub use resources::{estimate_resources, tuple_registers, BASE_REGISTERS, SHARED_SLOT_OVERHEAD};
pub use step::{SetOpKind, SlotDecl, SlotId, Space, Step};
pub use validate::validate;
