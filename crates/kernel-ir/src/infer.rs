//! Schema inference over kernel IR.
//!
//! Walks the step list, deriving the tuple schema held by every slot and the
//! schema of every global output. Inference is the backbone of validation,
//! resource estimation (shared-memory sizing needs tuple widths) and the
//! interpreter.

use kw_relational::ops::AggFn;
use kw_relational::{AttrType, Schema};

use crate::{GpuOperator, IrError, OperatorBody, Result, Step};

/// Inferred schemas for a streaming operator.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredSchemas {
    /// Schema per slot (`None` for never-written slots).
    pub slots: Vec<Option<Schema>>,
    /// Schema per global output.
    pub outputs: Vec<Option<Schema>>,
}

impl InferredSchemas {
    /// Schema of slot `id`.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the slot has no schema (never written).
    pub fn slot(&self, id: crate::SlotId) -> Result<&Schema> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| IrError::validation(format!("slot {id} has no inferred schema")))
    }
}

/// Infer slot and output schemas for `op`.
///
/// # Errors
///
/// Returns [`IrError::Validation`] for structural problems (bad slot or
/// input indices, use before definition, double definition) and
/// [`IrError::Relational`] when a step's schemas are incompatible.
pub fn infer_schemas(op: &GpuOperator) -> Result<InferredSchemas> {
    match &op.body {
        OperatorBody::Streaming { slots, steps, .. } => infer_streaming(op, slots.len(), steps),
        OperatorBody::GlobalSort { attrs } => {
            let input = single_input(op)?;
            let schema = sorted_schema(input, attrs)?;
            Ok(InferredSchemas {
                slots: vec![],
                outputs: vec![Some(schema)],
            })
        }
        OperatorBody::GlobalAggregate { group_by, aggs } => {
            let input = single_input(op)?;
            let schema = aggregate_schema(input, group_by, aggs)?;
            Ok(InferredSchemas {
                slots: vec![],
                outputs: vec![Some(schema)],
            })
        }
    }
}

fn single_input(op: &GpuOperator) -> Result<&Schema> {
    if op.inputs.len() != 1 {
        return Err(IrError::validation(format!(
            "global operator {} must have exactly one input, has {}",
            op.label,
            op.inputs.len()
        )));
    }
    Ok(&op.inputs[0])
}

/// Schema after sorting on `attrs` (they are moved to the front and become
/// the key, mirroring [`kw_relational::ops::sort_on`]).
pub fn sorted_schema(input: &Schema, attrs: &[usize]) -> Result<Schema> {
    let mut order: Vec<usize> = attrs.to_vec();
    for a in 0..input.arity() {
        if !attrs.contains(&a) {
            order.push(a);
        }
    }
    Ok(input.project(&order, attrs.len().max(1).min(order.len()))?)
}

/// Schema of a grouped aggregation result.
pub fn aggregate_schema(input: &Schema, group_by: &[usize], aggs: &[AggFn]) -> Result<Schema> {
    let mut attrs = Vec::with_capacity(group_by.len() + aggs.len());
    for &g in group_by {
        if g >= input.arity() {
            return Err(kw_relational::RelationalError::AttrOutOfBounds {
                attr: g,
                arity: input.arity(),
            }
            .into());
        }
        attrs.push(input.attr(g));
    }
    for agg in aggs {
        attrs.push(agg_result_type(input, *agg)?);
    }
    if attrs.is_empty() {
        return Err(IrError::validation(
            "aggregate with no group attributes and no aggregates",
        ));
    }
    Ok(Schema::new(attrs, group_by.len()))
}

fn agg_result_type(input: &Schema, agg: AggFn) -> Result<AttrType> {
    let check = |a: usize| -> Result<AttrType> {
        if a >= input.arity() {
            return Err(kw_relational::RelationalError::AttrOutOfBounds {
                attr: a,
                arity: input.arity(),
            }
            .into());
        }
        Ok(input.attr(a))
    };
    Ok(match agg {
        AggFn::Count => AttrType::U64,
        AggFn::Avg(a) => {
            check(a)?;
            AttrType::F32
        }
        AggFn::Sum(a) => match check(a)? {
            AttrType::F32 => AttrType::F32,
            _ => AttrType::U64,
        },
        AggFn::Min(a) | AggFn::Max(a) => check(a)?,
    })
}

fn infer_streaming(op: &GpuOperator, slot_count: usize, steps: &[Step]) -> Result<InferredSchemas> {
    let mut slots: Vec<Option<Schema>> = vec![None; slot_count];
    let mut outputs: Vec<Option<Schema>> = vec![None; op.outputs];

    let get = |slots: &[Option<Schema>], id: crate::SlotId| -> Result<Schema> {
        if id.0 >= slot_count {
            return Err(IrError::validation(format!("slot {id} out of range")));
        }
        slots[id.0]
            .clone()
            .ok_or_else(|| IrError::validation(format!("slot {id} used before definition")))
    };
    let set = |slots: &mut Vec<Option<Schema>>, id: crate::SlotId, s: Schema| -> Result<()> {
        if id.0 >= slot_count {
            return Err(IrError::validation(format!("slot {id} out of range")));
        }
        if slots[id.0].is_some() {
            return Err(IrError::validation(format!("slot {id} defined twice")));
        }
        slots[id.0] = Some(s);
        Ok(())
    };

    for step in steps {
        match step {
            Step::Load { input, dst } => {
                let schema = op.inputs.get(*input).cloned().ok_or_else(|| {
                    IrError::validation(format!("load references missing input {input}"))
                })?;
                set(&mut slots, *dst, schema)?;
            }
            Step::Filter { src, pred, dst } => {
                let s = get(&slots, *src)?;
                pred.validate(&s)?;
                set(&mut slots, *dst, s)?;
            }
            Step::Project {
                src,
                attrs,
                key_arity,
                dst,
            } => {
                let s = get(&slots, *src)?;
                let p = s.project(attrs, *key_arity)?;
                set(&mut slots, *dst, p)?;
            }
            Step::Compute {
                src,
                exprs,
                key_arity,
                dst,
            } => {
                let s = get(&slots, *src)?;
                if exprs.is_empty() || *key_arity > exprs.len() {
                    return Err(IrError::validation("compute with invalid output list"));
                }
                let attrs = exprs
                    .iter()
                    .map(|e| e.result_type(&s))
                    .collect::<kw_relational::Result<Vec<_>>>()?;
                set(&mut slots, *dst, Schema::new(attrs, *key_arity))?;
            }
            Step::Join {
                left,
                right,
                key_len,
                dst,
            } => {
                let l = get(&slots, *left)?;
                let r = get(&slots, *right)?;
                let j = kw_relational::ops::join_schema(&l, &r, *key_len)?;
                set(&mut slots, *dst, j)?;
            }
            Step::SemiJoin {
                left,
                right,
                key_len,
                dst,
                ..
            } => {
                let l = get(&slots, *left)?;
                let r = get(&slots, *right)?;
                if *key_len == 0 || *key_len > l.key_arity() || *key_len > r.key_arity() {
                    return Err(kw_relational::RelationalError::BadKeyArity {
                        key_arity: *key_len,
                        arity: l.key_arity().min(r.key_arity()),
                    }
                    .into());
                }
                for k in 0..*key_len {
                    if l.attr(k) != r.attr(k) {
                        return Err(kw_relational::RelationalError::SchemaMismatch {
                            detail: format!("semi-join key attribute {k} type mismatch"),
                        }
                        .into());
                    }
                }
                set(&mut slots, *dst, l)?;
            }
            Step::Product { left, right, dst } => {
                let l = get(&slots, *left)?;
                let r = get(&slots, *right)?;
                let mut attrs = l.attrs().to_vec();
                attrs.extend_from_slice(r.attrs());
                set(&mut slots, *dst, Schema::new(attrs, l.key_arity()))?;
            }
            Step::SetOp {
                left, right, dst, ..
            } => {
                let l = get(&slots, *left)?;
                let r = get(&slots, *right)?;
                if l != r {
                    return Err(kw_relational::RelationalError::SchemaMismatch {
                        detail: format!("set operation on {l} and {r}"),
                    }
                    .into());
                }
                set(&mut slots, *dst, l)?;
            }
            Step::Unique { src, dst } | Step::Compact { src, dst } => {
                let s = get(&slots, *src)?;
                set(&mut slots, *dst, s)?;
            }
            Step::Barrier => {}
            Step::Store { src, output } => {
                let s = get(&slots, *src)?;
                let out = outputs.get_mut(*output).ok_or_else(|| {
                    IrError::validation(format!("store references missing output {output}"))
                })?;
                if out.is_some() {
                    return Err(IrError::validation(format!("output {output} stored twice")));
                }
                *out = Some(s);
            }
        }
    }
    Ok(InferredSchemas { slots, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, SlotDecl, SlotId, Space};
    use kw_relational::{CmpOp, Predicate, Value};

    fn select_op() -> GpuOperator {
        GpuOperator::streaming(
            "select",
            vec![Schema::uniform_u32(4)],
            1,
            vec![
                SlotDecl::new("in", Space::Register),
                SlotDecl::new("f", Space::Register),
                SlotDecl::new("dense", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Filter {
                    src: SlotId(0),
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(7)),
                    dst: SlotId(1),
                },
                Step::Compact {
                    src: SlotId(1),
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::Even,
        )
    }

    #[test]
    fn select_inference() {
        let inf = infer_schemas(&select_op()).unwrap();
        assert_eq!(inf.slots.len(), 3);
        assert!(inf.slots.iter().all(Option::is_some));
        assert_eq!(inf.outputs[0], Some(Schema::uniform_u32(4)));
    }

    #[test]
    fn use_before_def_rejected() {
        let mut op = select_op();
        if let OperatorBody::Streaming { steps, .. } = &mut op.body {
            steps.remove(0); // drop the Load
        }
        assert!(matches!(
            infer_schemas(&op),
            Err(IrError::Validation { .. })
        ));
    }

    #[test]
    fn double_def_rejected() {
        let mut op = select_op();
        if let OperatorBody::Streaming { steps, .. } = &mut op.body {
            steps.insert(
                1,
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
            );
        }
        assert!(infer_schemas(&op).is_err());
    }

    #[test]
    fn join_schema_inferred() {
        let s = Schema::uniform_u32(2);
        let op = GpuOperator::streaming(
            "join",
            vec![s.clone(), s],
            1,
            vec![
                SlotDecl::new("l", Space::Shared),
                SlotDecl::new("r", Space::Shared),
                SlotDecl::new("o", Space::Shared),
            ],
            vec![
                Step::Load {
                    input: 0,
                    dst: SlotId(0),
                },
                Step::Load {
                    input: 1,
                    dst: SlotId(1),
                },
                Step::Barrier,
                Step::Join {
                    left: SlotId(0),
                    right: SlotId(1),
                    key_len: 1,
                    dst: SlotId(2),
                },
                Step::Barrier,
                Step::Store {
                    src: SlotId(2),
                    output: 0,
                },
            ],
            PartitionSpec::KeyRange {
                pivot: 0,
                key_len: 1,
            },
        );
        let inf = infer_schemas(&op).unwrap();
        assert_eq!(inf.outputs[0].as_ref().unwrap().arity(), 3);
    }

    #[test]
    fn global_bodies_infer_outputs() {
        let s = Schema::uniform_u32(3);
        let sort = GpuOperator::global_sort("s", s.clone(), vec![2]);
        let inf = infer_schemas(&sort).unwrap();
        assert_eq!(inf.outputs[0].as_ref().unwrap().key_arity(), 1);

        let agg = GpuOperator::global_aggregate("a", s, vec![0], vec![AggFn::Sum(1), AggFn::Count]);
        let inf = infer_schemas(&agg).unwrap();
        let schema = inf.outputs[0].as_ref().unwrap();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.attr(1), AttrType::U64);
    }

    #[test]
    fn missing_output_left_none() {
        let mut op = select_op();
        op.outputs = 2;
        let inf = infer_schemas(&op).unwrap();
        assert!(inf.outputs[1].is_none());
    }
}
