//! Relational data model and CPU reference operators for the Kernel Weaver
//! reproduction.
//!
//! A [`Relation`] is a densely packed, key-sorted array of fixed-width
//! tuples — the storage format of Diamos et al. that the paper's multi-stage
//! GPU skeletons rely on for binary-search partitioning. This crate provides:
//!
//! * the data model ([`Schema`], [`Relation`], [`Value`], [`AttrType`]),
//! * filter predicates ([`Predicate`]) and arithmetic expressions ([`Expr`]),
//! * CPU reference implementations of every RA operator in [`ops`] (the
//!   correctness oracle for the GPU simulator), and
//! * reproducible random workload generators in [`gen`].
//!
//! # Examples
//!
//! ```
//! use kw_relational::{ops, CmpOp, Predicate, Relation, Schema, Value};
//!
//! let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 2, 20, 3, 30])?;
//! let small = ops::select(&r, &Predicate::cmp(0, CmpOp::Lt, Value::U32(3)))?;
//! let keys = ops::project(&small, &[0], 1)?;
//! assert_eq!(keys.to_rows(), vec![vec![Value::U32(1)], vec![Value::U32(2)]]);
//! # Ok::<(), kw_relational::RelationalError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod expr;
mod predicate;
mod relation;
mod types;

pub mod gen;
pub mod ops;

pub use error::{RelationalError, Result};
pub use expr::Expr;
pub use predicate::{CmpOp, Predicate};
pub use relation::{compare_keys, compare_tuples, Relation};
pub use types::{compare_words, AttrType, Schema, Value};
