//! Arithmetic expressions over tuple attributes.
//!
//! These are the "simple arithmetic operations" of the paper's Section 4.4
//! extension: addition, subtraction, multiplication and division over tuple
//! attributes, e.g. TPC-H Q1's `price * (1 - discount) * (1 + tax)`
//! (micro-benchmark pattern (e)).

use std::fmt;

use crate::{AttrType, RelationalError, Result, Schema, Value};

/// An arithmetic expression evaluated per tuple.
///
/// # Examples
///
/// ```
/// use kw_relational::{Expr, Schema, AttrType, Value};
/// // price * (1 - discount)
/// let e = Expr::attr(0).mul(Expr::lit(Value::F32(1.0)).sub(Expr::attr(1)));
/// let schema = Schema::new(vec![AttrType::F32, AttrType::F32], 0);
/// let tuple = [Value::F32(10.0).encode(), Value::F32(0.25).encode()];
/// assert_eq!(e.eval(&schema, &tuple)?, Value::F32(7.5));
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to attribute `i` of the input tuple.
    Attr(usize),
    /// A literal constant.
    Const(Value),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division. Integer division by zero yields zero (GPU semantics are
    /// undefined; the simulator picks a deterministic result).
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Attribute reference.
    pub fn attr(i: usize) -> Expr {
        Expr::Attr(i)
    }

    /// Literal constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)] // builder API, not operator overloading
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }

    /// The result type of the expression under `schema`.
    ///
    /// Mixed integer/float arithmetic promotes to [`AttrType::F32`];
    /// mixed-width integers promote to [`AttrType::U64`].
    ///
    /// # Errors
    ///
    /// Returns [`RelationalError::AttrOutOfBounds`] for bad attribute
    /// references and [`RelationalError::TypeMismatch`] when a boolean
    /// attribute is used in arithmetic.
    pub fn result_type(&self, schema: &Schema) -> Result<AttrType> {
        match self {
            Expr::Attr(i) => {
                if *i >= schema.arity() {
                    return Err(RelationalError::AttrOutOfBounds {
                        attr: *i,
                        arity: schema.arity(),
                    });
                }
                let ty = schema.attr(*i);
                if !ty.is_numeric() {
                    return Err(RelationalError::TypeMismatch {
                        expected: AttrType::U64,
                        found: ty,
                    });
                }
                Ok(ty)
            }
            Expr::Const(v) => {
                let ty = v.attr_type();
                if !ty.is_numeric() {
                    return Err(RelationalError::TypeMismatch {
                        expected: AttrType::U64,
                        found: ty,
                    });
                }
                Ok(ty)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                Ok(promote(a.result_type(schema)?, b.result_type(schema)?))
            }
        }
    }

    /// Evaluate against the raw words of one tuple.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Expr::result_type`].
    pub fn eval(&self, schema: &Schema, tuple: &[u64]) -> Result<Value> {
        match self {
            Expr::Attr(i) => {
                let ty = self.result_type(schema)?;
                Ok(Value::decode(tuple[*i], ty))
            }
            Expr::Const(v) => Ok(*v),
            Expr::Add(a, b) => binop(schema, tuple, a, b, |x, y| x.wrapping_add(y), |x, y| x + y),
            Expr::Sub(a, b) => binop(schema, tuple, a, b, |x, y| x.wrapping_sub(y), |x, y| x - y),
            Expr::Mul(a, b) => binop(schema, tuple, a, b, |x, y| x.wrapping_mul(y), |x, y| x * y),
            Expr::Div(a, b) => binop(
                schema,
                tuple,
                a,
                b,
                |x, y| x.checked_div(y).unwrap_or(0),
                |x, y| x / y,
            ),
        }
    }

    /// Estimated ALU operations per evaluation (for the GPU cost model).
    pub fn alu_ops(&self) -> u64 {
        match self {
            Expr::Attr(_) | Expr::Const(_) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.alu_ops() + b.alu_ops()
            }
        }
    }

    /// Highest attribute index referenced, if any.
    pub fn max_attr(&self) -> Option<usize> {
        match self {
            Expr::Attr(i) => Some(*i),
            Expr::Const(_) => None,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                match (a.max_attr(), b.max_attr()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
        }
    }

    /// Fold constant sub-expressions; a compiler pass leveraged at `-O3`.
    pub fn fold_constants(&self, schema: &Schema) -> Expr {
        match self {
            Expr::Attr(_) | Expr::Const(_) => self.clone(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let fa = a.fold_constants(schema);
                let fb = b.fold_constants(schema);
                let rebuilt = match self {
                    Expr::Add(..) => fa.clone().add(fb.clone()),
                    Expr::Sub(..) => fa.clone().sub(fb.clone()),
                    Expr::Mul(..) => fa.clone().mul(fb.clone()),
                    Expr::Div(..) => fa.clone().div(fb.clone()),
                    _ => unreachable!(),
                };
                if let (Expr::Const(_), Expr::Const(_)) = (&fa, &fb) {
                    // Constant operands: evaluate with a dummy tuple.
                    if let Ok(v) = rebuilt.eval(schema, &[]) {
                        return Expr::Const(v);
                    }
                }
                rebuilt
            }
        }
    }
}

fn promote(a: AttrType, b: AttrType) -> AttrType {
    use AttrType::*;
    match (a, b) {
        (F32, _) | (_, F32) => F32,
        (U64, _) | (_, U64) => U64,
        _ => U32,
    }
}

fn binop(
    schema: &Schema,
    tuple: &[u64],
    a: &Expr,
    b: &Expr,
    int_op: fn(u64, u64) -> u64,
    float_op: fn(f64, f64) -> f64,
) -> Result<Value> {
    let va = a.eval(schema, tuple)?;
    let vb = b.eval(schema, tuple)?;
    let ty = promote(va.attr_type(), vb.attr_type());
    match ty {
        AttrType::F32 => Ok(Value::F32(float_op(va.as_f64(), vb.as_f64()) as f32)),
        AttrType::U64 => Ok(Value::U64(int_op(int_word(va), int_word(vb)))),
        AttrType::U32 => Ok(Value::U32(int_op(int_word(va), int_word(vb)) as u32)),
        AttrType::Bool => Err(RelationalError::TypeMismatch {
            expected: AttrType::U64,
            found: AttrType::Bool,
        }),
    }
}

fn int_word(v: Value) -> u64 {
    match v {
        Value::U32(x) => u64::from(x),
        Value::U64(x) => x,
        Value::F32(x) => x as u64,
        Value::Bool(x) => u64::from(x),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(i) => write!(f, "a{i}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fschema() -> Schema {
        Schema::new(vec![AttrType::F32, AttrType::F32, AttrType::F32], 0)
    }

    #[test]
    fn q1_style_expression() {
        // price * (1 - discount) * (1 + tax)
        let e = Expr::attr(0)
            .mul(Expr::lit(1.0f32).sub(Expr::attr(1)))
            .mul(Expr::lit(1.0f32).add(Expr::attr(2)));
        let t = [
            Value::F32(100.0).encode(),
            Value::F32(0.1).encode(),
            Value::F32(0.05).encode(),
        ];
        let v = e.eval(&fschema(), &t).unwrap();
        match v {
            Value::F32(x) => assert!((x - 94.5).abs() < 1e-4),
            other => panic!("expected f32, got {other:?}"),
        }
        assert_eq!(e.alu_ops(), 4);
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let s = Schema::new(vec![AttrType::U32], 0);
        let e = Expr::attr(0).add(Expr::lit(1u32));
        assert_eq!(e.eval(&s, &[u32::MAX as u64]).unwrap(), Value::U32(0));
    }

    #[test]
    fn division_by_zero_integer_is_zero() {
        let s = Schema::new(vec![AttrType::U32], 0);
        let e = Expr::attr(0).div(Expr::lit(0u32));
        assert_eq!(e.eval(&s, &[10]).unwrap(), Value::U32(0));
    }

    #[test]
    fn promotion() {
        let s = Schema::new(vec![AttrType::U32, AttrType::F32], 0);
        let e = Expr::attr(0).add(Expr::attr(1));
        assert_eq!(e.result_type(&s).unwrap(), AttrType::F32);
        let s2 = Schema::new(vec![AttrType::U32, AttrType::U64], 0);
        let e2 = Expr::attr(0).add(Expr::attr(1));
        assert_eq!(e2.result_type(&s2).unwrap(), AttrType::U64);
    }

    #[test]
    fn bool_rejected() {
        let s = Schema::new(vec![AttrType::Bool], 0);
        let e = Expr::attr(0).add(Expr::lit(1u32));
        assert!(e.result_type(&s).is_err());
    }

    #[test]
    fn constant_folding() {
        let s = fschema();
        let e = Expr::lit(2.0f32).mul(Expr::lit(3.0f32)).add(Expr::attr(0));
        let folded = e.fold_constants(&s);
        match &folded {
            Expr::Add(a, _) => assert_eq!(**a, Expr::Const(Value::F32(6.0))),
            other => panic!("unexpected fold result {other:?}"),
        }
        assert!(folded.alu_ops() < e.alu_ops());
    }

    #[test]
    fn max_attr_and_display() {
        let e = Expr::attr(3).mul(Expr::attr(1));
        assert_eq!(e.max_attr(), Some(3));
        assert_eq!(e.to_string(), "(a3 * a1)");
    }
}
