//! The [`Relation`] container: a densely packed, key-sorted array of tuples.
//!
//! This mirrors the storage format of Diamos et al. used by the paper: a
//! relation is a dense array of fixed-width tuples maintained in strict weak
//! order on the key attributes, which enables the binary-search partitioning
//! used by the multi-stage GPU skeletons.

use std::cmp::Ordering;
use std::fmt;

use crate::{compare_words, RelationalError, Result, Schema, Value};

/// A relation: a schema plus a densely packed, key-sorted tuple array.
///
/// Tuples are stored row-major, one `u64` word per attribute. The invariant
/// maintained by every constructor and operator is that tuples are sorted by
/// their key attributes under the total order of [`compare_words`].
///
/// # Examples
///
/// ```
/// use kw_relational::{Relation, Schema, AttrType, Value};
/// let schema = Schema::new(vec![AttrType::U32, AttrType::U32], 1);
/// let rel = Relation::from_rows(
///     schema,
///     &[vec![Value::U32(3), Value::U32(30)], vec![Value::U32(1), Value::U32(10)]],
/// )?;
/// assert_eq!(rel.len(), 2);
/// // Stored sorted by key:
/// assert_eq!(rel.value(0, 0), Value::U32(1));
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    data: Vec<u64>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            data: Vec::new(),
        }
    }

    /// Build a relation from raw words, sorting by key.
    ///
    /// # Errors
    ///
    /// Returns [`RelationalError::MalformedData`] if `data.len()` is not a
    /// multiple of the schema arity.
    pub fn from_words(schema: Schema, mut data: Vec<u64>) -> Result<Relation> {
        let arity = schema.arity();
        if !data.len().is_multiple_of(arity) {
            return Err(RelationalError::MalformedData {
                words: data.len(),
                arity,
            });
        }
        sort_words(&schema, &mut data);
        Ok(Relation { schema, data })
    }

    /// Build a relation from raw words that are already key-sorted.
    ///
    /// # Errors
    ///
    /// Returns [`RelationalError::MalformedData`] on a word-count mismatch
    /// and [`RelationalError::NotSorted`] if the data violates key order.
    pub fn from_sorted_words(schema: Schema, data: Vec<u64>) -> Result<Relation> {
        let arity = schema.arity();
        if !data.len().is_multiple_of(arity) {
            return Err(RelationalError::MalformedData {
                words: data.len(),
                arity,
            });
        }
        let rel = Relation { schema, data };
        if let Some(index) = rel.first_unsorted() {
            return Err(RelationalError::NotSorted { index });
        }
        Ok(rel)
    }

    /// Build a relation from typed rows, sorting by key.
    ///
    /// # Errors
    ///
    /// Returns [`RelationalError::MalformedData`] if a row's length differs
    /// from the schema arity, and [`RelationalError::TypeMismatch`] if a
    /// value's type differs from the schema's attribute type.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Result<Relation> {
        let arity = schema.arity();
        let mut data = Vec::with_capacity(rows.len() * arity);
        for row in rows {
            if row.len() != arity {
                return Err(RelationalError::MalformedData {
                    words: row.len(),
                    arity,
                });
            }
            for (i, v) in row.iter().enumerate() {
                if v.attr_type() != schema.attr(i) {
                    return Err(RelationalError::TypeMismatch {
                        expected: schema.attr(i),
                        found: v.attr_type(),
                    });
                }
                data.push(v.encode());
            }
        }
        Relation::from_words(schema, data)
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.data.is_empty() {
            0
        } else {
            self.data.len() / self.schema.arity()
        }
    }

    /// Whether the relation contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total packed size on the device, in bytes.
    pub fn byte_size(&self) -> usize {
        self.len() * self.schema.tuple_bytes()
    }

    /// Raw word storage (row-major).
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// The raw words of tuple `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn tuple(&self, i: usize) -> &[u64] {
        let a = self.schema.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// The decoded value of attribute `attr` of tuple `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `attr` is out of bounds.
    pub fn value(&self, i: usize, attr: usize) -> Value {
        Value::decode(self.tuple(i)[attr], self.schema.attr(attr))
    }

    /// Iterate over tuples as raw word slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.data.chunks_exact(self.schema.arity().max(1))
    }

    /// Compare the keys of two raw tuples under this relation's schema.
    pub fn compare_keys(&self, a: &[u64], b: &[u64]) -> Ordering {
        compare_keys(&self.schema, a, b)
    }

    /// Index of the first tuple whose key is `>=` the key of `probe`
    /// (lower bound by binary search). `probe` needs only `key_arity` words.
    pub fn lower_bound(&self, probe: &[u64]) -> usize {
        self.bound(probe, true)
    }

    /// Index of the first tuple whose key is `>` the key of `probe`
    /// (upper bound by binary search).
    pub fn upper_bound(&self, probe: &[u64]) -> usize {
        self.bound(probe, false)
    }

    fn bound(&self, probe: &[u64], lower: bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let ord = compare_key_to_probe(&self.schema, self.tuple(mid), probe);
            let go_right = if lower {
                ord == Ordering::Less
            } else {
                ord != Ordering::Greater
            };
            if go_right {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First index (if any) violating key sort order.
    fn first_unsorted(&self) -> Option<usize> {
        (1..self.len()).find(|&i| {
            compare_keys(&self.schema, self.tuple(i - 1), self.tuple(i)) == Ordering::Greater
        })
    }

    /// Whether the key-sorted invariant holds (always true for relations
    /// produced by this crate; exposed for tests and debugging).
    pub fn is_sorted(&self) -> bool {
        self.first_unsorted().is_none()
    }

    /// Collect the rows as decoded values (convenience for tests).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|i| (0..self.schema.arity()).map(|a| self.value(i, a)).collect())
            .collect()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation{} [{} tuples]", self.schema, self.len())?;
        let show = self.len().min(8);
        for i in 0..show {
            write!(f, "\n  (")?;
            for a in 0..self.schema.arity() {
                if a > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.value(i, a))?;
            }
            write!(f, ")")?;
        }
        if self.len() > show {
            write!(f, "\n  ... {} more", self.len() - show)?;
        }
        Ok(())
    }
}

/// Compare the key attributes of two raw tuples under `schema`.
pub fn compare_keys(schema: &Schema, a: &[u64], b: &[u64]) -> Ordering {
    for k in 0..schema.key_arity() {
        let ord = compare_words(a[k], b[k], schema.attr(k));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare the full tuples (all attributes) of two raw tuples.
pub fn compare_tuples(schema: &Schema, a: &[u64], b: &[u64]) -> Ordering {
    for k in 0..schema.arity() {
        let ord = compare_words(a[k], b[k], schema.attr(k));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compare a tuple's key against a probe key that may be shorter than the
/// full key (prefix comparison over `probe.len()` attributes).
fn compare_key_to_probe(schema: &Schema, tuple: &[u64], probe: &[u64]) -> Ordering {
    let n = probe.len().min(schema.key_arity());
    for k in 0..n {
        let ord = compare_words(tuple[k], probe[k], schema.attr(k));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort raw tuple words in place by key, then by the remaining attributes to
/// make operator outputs deterministic.
pub(crate) fn sort_words(schema: &Schema, data: &mut Vec<u64>) {
    let arity = schema.arity();
    if arity == 0 || data.is_empty() {
        return;
    }
    let mut tuples: Vec<&[u64]> = data.chunks_exact(arity).collect();
    tuples.sort_by(|a, b| compare_tuples(schema, a, b));
    let sorted: Vec<u64> = tuples.into_iter().flatten().copied().collect();
    *data = sorted;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema2() -> Schema {
        Schema::new(vec![AttrType::U32, AttrType::U32], 1)
    }

    #[test]
    fn sorts_on_construction() {
        let r = Relation::from_words(schema2(), vec![5, 50, 1, 10, 3, 30]).unwrap();
        assert!(r.is_sorted());
        assert_eq!(r.tuple(0), &[1, 10]);
        assert_eq!(r.tuple(2), &[5, 50]);
    }

    #[test]
    fn from_sorted_rejects_unsorted() {
        let err = Relation::from_sorted_words(schema2(), vec![5, 50, 1, 10]).unwrap_err();
        assert_eq!(err, RelationalError::NotSorted { index: 1 });
    }

    #[test]
    fn malformed_data_rejected() {
        assert!(matches!(
            Relation::from_words(schema2(), vec![1, 2, 3]),
            Err(RelationalError::MalformedData { .. })
        ));
    }

    #[test]
    fn from_rows_type_checks() {
        let rows = vec![vec![Value::U32(1), Value::F32(1.0)]];
        assert!(matches!(
            Relation::from_rows(schema2(), &rows),
            Err(RelationalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn bounds() {
        let r = Relation::from_words(schema2(), vec![1, 0, 3, 0, 3, 1, 7, 0]).unwrap();
        assert_eq!(r.lower_bound(&[3]), 1);
        assert_eq!(r.upper_bound(&[3]), 3);
        assert_eq!(r.lower_bound(&[0]), 0);
        assert_eq!(r.lower_bound(&[8]), 4);
    }

    #[test]
    fn byte_size_uses_packed_widths() {
        let s = Schema::new(vec![AttrType::U32, AttrType::Bool], 1);
        let r = Relation::from_words(s, vec![1, 1, 2, 0]).unwrap();
        assert_eq!(r.byte_size(), 2 * 5);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(schema2());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.is_sorted());
        assert_eq!(r.lower_bound(&[1]), 0);
    }

    #[test]
    fn debug_nonempty() {
        let r = Relation::empty(schema2());
        assert!(!format!("{r:?}").is_empty());
    }
}
