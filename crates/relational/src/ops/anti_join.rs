//! ANTI-JOIN: keep left tuples whose key has no match on the right.
//!
//! The relational form of `NOT EXISTS` (TPC-H Q21's third `lineitem`
//! correlate); unlike [`super::difference`] the two sides only need to
//! agree on the join-key prefix, not on their full schemas.

use std::cmp::Ordering;

use crate::{compare_words, Relation, RelationalError, Result};

/// Tuples of `left` whose first `key_len` attributes match no tuple of
/// `right`.
///
/// # Errors
///
/// Returns [`RelationalError::BadKeyArity`] if `key_len` is zero or exceeds
/// either key arity, and [`RelationalError::SchemaMismatch`] if the key
/// prefix types differ.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let x = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 2, 20, 3, 30])?;
/// let y = Relation::from_words(Schema::uniform_u32(1), vec![2])?;
/// let out = ops::anti_join(&x, &y, 1)?;
/// assert_eq!(out.len(), 2); // keys 1 and 3 survive
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn anti_join(left: &Relation, right: &Relation, key_len: usize) -> Result<Relation> {
    check_keys(left, right, key_len)?;
    let mut out = Vec::new();
    for t in left.iter() {
        if !has_match(right, &t[..key_len], left, key_len) {
            out.extend_from_slice(t);
        }
    }
    Relation::from_sorted_words(left.schema().clone(), out)
}

/// SEMI-JOIN: tuples of `left` whose key prefix *does* match `right`
/// (`EXISTS`), keeping each left tuple at most once.
///
/// # Errors
///
/// Same conditions as [`anti_join`].
pub fn semi_join(left: &Relation, right: &Relation, key_len: usize) -> Result<Relation> {
    check_keys(left, right, key_len)?;
    let mut out = Vec::new();
    for t in left.iter() {
        if has_match(right, &t[..key_len], left, key_len) {
            out.extend_from_slice(t);
        }
    }
    Relation::from_sorted_words(left.schema().clone(), out)
}

fn check_keys(left: &Relation, right: &Relation, key_len: usize) -> Result<()> {
    if key_len == 0 || key_len > left.schema().key_arity() || key_len > right.schema().key_arity() {
        return Err(RelationalError::BadKeyArity {
            key_arity: key_len,
            arity: left.schema().key_arity().min(right.schema().key_arity()),
        });
    }
    for k in 0..key_len {
        if left.schema().attr(k) != right.schema().attr(k) {
            return Err(RelationalError::SchemaMismatch {
                detail: format!(
                    "anti/semi-join key attribute {k} has type {} on the left but {} on the right",
                    left.schema().attr(k),
                    right.schema().attr(k)
                ),
            });
        }
    }
    Ok(())
}

fn has_match(right: &Relation, probe: &[u64], left: &Relation, key_len: usize) -> bool {
    let lo = right.lower_bound(probe);
    if lo >= right.len() {
        return false;
    }
    let cand = right.tuple(lo);
    (0..key_len).all(|k| compare_words(cand[k], probe[k], left.schema().attr(k)) == Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn rel2(words: Vec<u64>) -> Relation {
        Relation::from_words(Schema::uniform_u32(2), words).unwrap()
    }

    #[test]
    fn anti_join_filters_matching_keys() {
        let l = rel2(vec![1, 10, 2, 20, 2, 21, 3, 30]);
        let r = rel2(vec![2, 99]);
        let out = anti_join(&l, &r, 1).unwrap();
        assert_eq!(out.words(), &[1, 10, 3, 30]);
    }

    #[test]
    fn semi_join_keeps_matching_keys_with_duplicates() {
        let l = rel2(vec![1, 10, 2, 20, 2, 21, 3, 30]);
        let r = rel2(vec![2, 99, 2, 98]);
        let out = semi_join(&l, &r, 1).unwrap();
        assert_eq!(out.words(), &[2, 20, 2, 21]);
    }

    #[test]
    fn anti_and_semi_partition_left() {
        let l = rel2(vec![1, 0, 2, 0, 3, 0, 4, 0]);
        let r = rel2(vec![2, 0, 4, 0, 9, 0]);
        let anti = anti_join(&l, &r, 1).unwrap();
        let semi = semi_join(&l, &r, 1).unwrap();
        assert_eq!(anti.len() + semi.len(), l.len());
    }

    #[test]
    fn differing_value_schemas_allowed() {
        let l = rel2(vec![1, 10, 2, 20]);
        let r = Relation::from_words(Schema::uniform_u32(3), vec![2, 0, 0]).unwrap();
        let out = anti_join(&l, &r, 1).unwrap();
        assert_eq!(out.words(), &[1, 10]);
    }

    #[test]
    fn key_type_mismatch_rejected() {
        let l = rel2(vec![1, 10]);
        let r = Relation::from_words(Schema::new(vec![crate::AttrType::U64], 1), vec![1]).unwrap();
        assert!(anti_join(&l, &r, 1).is_err());
        assert!(semi_join(&l, &r, 1).is_err());
    }

    #[test]
    fn empty_right_is_identity_for_anti() {
        let l = rel2(vec![1, 10]);
        let r = Relation::empty(l.schema().clone());
        assert_eq!(anti_join(&l, &r, 1).unwrap(), l);
        assert!(semi_join(&l, &r, 1).unwrap().is_empty());
    }

    #[test]
    fn bad_key_len_rejected() {
        let l = rel2(vec![1, 10]);
        assert!(anti_join(&l, &l, 0).is_err());
        assert!(anti_join(&l, &l, 2).is_err());
    }
}
