//! JOIN: intersect on key attributes, cross-product of value attributes.

use std::cmp::Ordering;

use crate::{compare_words, Relation, RelationalError, Result, Schema};

/// Join `left` and `right` on their first `key_len` attributes.
///
/// As in the paper's Table 1, JOIN "intersects on the key attribute and
/// cross-products the value attributes": the output tuple is the shared key
/// followed by the non-key attributes of the left then right tuple.
///
/// Both inputs are key-sorted, so this is a merge join — the same structure
/// the GPU skeleton exploits per CTA partition.
///
/// # Errors
///
/// Returns [`RelationalError::BadKeyArity`] if `key_len` is zero or exceeds
/// either input's key arity, and [`RelationalError::SchemaMismatch`] if the
/// key attribute types differ.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let x = Relation::from_words(Schema::uniform_u32(2), vec![2, 100, 3, 101, 4, 102])?;
/// let y = Relation::from_words(Schema::uniform_u32(2), vec![2, 200, 3, 201, 3, 202])?;
/// let out = ops::join(&x, &y, 1)?;
/// // (2,100,200), (3,101,201), (3,101,202)
/// assert_eq!(out.len(), 3);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn join(left: &Relation, right: &Relation, key_len: usize) -> Result<Relation> {
    let schema = join_schema(left.schema(), right.schema(), key_len)?;
    let la = left.schema().arity();
    let ra = right.schema().arity();
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < left.len() && j < right.len() {
        let lt = left.tuple(i);
        let rt = right.tuple(j);
        match compare_key_prefix(left.schema(), lt, rt, key_len) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find the runs of equal keys on both sides, emit the cross
                // product of their value attributes.
                let i_end = run_end(left, i, key_len);
                let j_end = run_end(right, j, key_len);
                for li in i..i_end {
                    for rj in j..j_end {
                        let lt = left.tuple(li);
                        let rt = right.tuple(rj);
                        out.extend_from_slice(&lt[..key_len]);
                        out.extend_from_slice(&lt[key_len..la]);
                        out.extend_from_slice(&rt[key_len..ra]);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_words(schema, out)
}

/// The output schema of a join on the first `key_len` attributes.
///
/// # Errors
///
/// Same conditions as [`join`].
pub fn join_schema(left: &Schema, right: &Schema, key_len: usize) -> Result<Schema> {
    if key_len == 0 || key_len > left.key_arity() || key_len > right.key_arity() {
        return Err(RelationalError::BadKeyArity {
            key_arity: key_len,
            arity: left.key_arity().min(right.key_arity()),
        });
    }
    for k in 0..key_len {
        if left.attr(k) != right.attr(k) {
            return Err(RelationalError::SchemaMismatch {
                detail: format!(
                    "join key attribute {k} has type {} on the left but {} on the right",
                    left.attr(k),
                    right.attr(k)
                ),
            });
        }
    }
    let mut attrs = Vec::with_capacity(left.arity() + right.arity() - key_len);
    attrs.extend_from_slice(&left.attrs()[..key_len]);
    attrs.extend_from_slice(&left.attrs()[key_len..]);
    attrs.extend_from_slice(&right.attrs()[key_len..]);
    Ok(Schema::new(attrs, key_len))
}

fn compare_key_prefix(schema: &Schema, a: &[u64], b: &[u64], key_len: usize) -> Ordering {
    for k in 0..key_len {
        let ord = compare_words(a[k], b[k], schema.attr(k));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn run_end(rel: &Relation, start: usize, key_len: usize) -> usize {
    let mut end = start + 1;
    while end < rel.len()
        && compare_key_prefix(rel.schema(), rel.tuple(start), rel.tuple(end), key_len)
            == Ordering::Equal
    {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    #[test]
    fn paper_example() {
        // x = {(2,b),(3,a),(4,a)}, y = {(2,f),(3,c),(3,d)}
        // JOIN x y -> {(2,b,f),(3,a,c),(3,a,d)}
        let x = Relation::from_words(Schema::uniform_u32(2), vec![2, 11, 3, 10, 4, 10]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(2), vec![2, 15, 3, 12, 3, 13]).unwrap();
        let out = join(&x, &y, 1).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.tuple(0), &[2, 11, 15]);
        assert_eq!(out.tuple(1), &[3, 10, 12]);
        assert_eq!(out.tuple(2), &[3, 10, 13]);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let x = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 1, 11]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(2), vec![1, 20, 1, 21]).unwrap();
        let out = join(&x, &y, 1).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn disjoint_keys_empty() {
        let x = Relation::from_words(Schema::uniform_u32(1), vec![1, 2]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(1), vec![3, 4]).unwrap();
        assert!(join(&x, &y, 1).unwrap().is_empty());
    }

    #[test]
    fn multi_attr_key() {
        let s = Schema::new(vec![AttrType::U32, AttrType::U32, AttrType::U32], 2);
        let x = Relation::from_words(s.clone(), vec![1, 1, 10, 1, 2, 11]).unwrap();
        let y = Relation::from_words(s, vec![1, 1, 20, 1, 3, 21]).unwrap();
        let out = join(&x, &y, 2).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuple(0), &[1, 1, 10, 20]);
    }

    #[test]
    fn key_type_mismatch_rejected() {
        let x = Relation::from_words(Schema::new(vec![AttrType::U64], 1), vec![1]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(matches!(
            join(&x, &y, 1),
            Err(RelationalError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn bad_key_len_rejected() {
        let x = Relation::from_words(Schema::uniform_u32(2), vec![1, 2]).unwrap();
        assert!(join(&x, &x, 0).is_err());
        assert!(join(&x, &x, 2).is_err()); // key arity is 1
    }

    #[test]
    fn output_schema_shape() {
        let s = join_schema(&Schema::uniform_u32(3), &Schema::uniform_u32(2), 1).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.key_arity(), 1);
    }
}
