//! PROJECT: keep a subset of attributes.

use crate::{Relation, Result};

/// Project `input` onto the attribute indices `attrs` (in the given order);
/// the first `key_arity` output attributes become the new key.
///
/// The result is re-sorted because projection may destroy key order (e.g.
/// when the original key attributes are dropped).
///
/// # Errors
///
/// Returns [`crate::RelationalError::AttrOutOfBounds`] or
/// [`crate::RelationalError::BadKeyArity`] for invalid projections.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema, AttrType};
/// let s = Schema::new(vec![AttrType::U32, AttrType::Bool, AttrType::U32], 1);
/// let r = Relation::from_words(s, vec![2, 0, 20, 3, 1, 30])?;
/// let out = ops::project(&r, &[0, 2], 1)?;
/// assert_eq!(out.schema().arity(), 2);
/// assert_eq!(out.tuple(0), &[2, 20]);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn project(input: &Relation, attrs: &[usize], key_arity: usize) -> Result<Relation> {
    let schema = input.schema().project(attrs, key_arity)?;
    let mut out = Vec::with_capacity(input.len() * attrs.len());
    for t in input.iter() {
        for &a in attrs {
            out.push(t[a]);
        }
    }
    Relation::from_words(schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema};

    #[test]
    fn drops_attributes() {
        let s = Schema::new(vec![AttrType::U32, AttrType::U32, AttrType::U32], 1);
        let r = Relation::from_words(s, vec![1, 9, 10, 2, 8, 20]).unwrap();
        let out = project(&r, &[0, 2], 1).unwrap();
        assert_eq!(out.to_rows().len(), 2);
        assert_eq!(out.tuple(0), &[1, 10]);
        assert_eq!(out.tuple(1), &[2, 20]);
    }

    #[test]
    fn resorts_when_key_dropped() {
        let s = Schema::new(vec![AttrType::U32, AttrType::U32], 1);
        let r = Relation::from_words(s, vec![1, 9, 2, 3]).unwrap();
        let out = project(&r, &[1], 1).unwrap();
        assert!(out.is_sorted());
        assert_eq!(out.tuple(0), &[3]);
    }

    #[test]
    fn can_duplicate_and_reorder() {
        let s = Schema::new(vec![AttrType::U32, AttrType::U32], 1);
        let r = Relation::from_words(s, vec![1, 9]).unwrap();
        let out = project(&r, &[1, 1, 0], 1).unwrap();
        assert_eq!(out.tuple(0), &[9, 9, 1]);
    }

    #[test]
    fn bad_attr_rejected() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(project(&r, &[4], 1).is_err());
        assert!(project(&r, &[], 0).is_err());
    }
}
