//! SET UNION / INTERSECTION / DIFFERENCE, keyed as in the paper's Table 1.
//!
//! All three operate on the *key* attributes: e.g. UNION keeps tuples whose
//! keys appear in at least one input, preferring the left tuple's value
//! attributes when a key appears in both.

use std::cmp::Ordering;

use crate::relation::compare_keys;
use crate::{Relation, RelationalError, Result};

fn check_schemas(left: &Relation, right: &Relation) -> Result<()> {
    if left.schema() != right.schema() {
        return Err(RelationalError::SchemaMismatch {
            detail: format!(
                "set operations require identical schemas, got {} and {}",
                left.schema(),
                right.schema()
            ),
        });
    }
    Ok(())
}

/// Tuples whose keys are present in at least one input (left-preferred on
/// key collisions), deduplicated by key.
///
/// # Errors
///
/// Returns [`RelationalError::SchemaMismatch`] unless both schemas are equal.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let x = Relation::from_words(Schema::uniform_u32(2), vec![2, 11, 3, 10, 4, 10])?;
/// let y = Relation::from_words(Schema::uniform_u32(2), vec![0, 10, 2, 11])?;
/// let out = ops::union(&x, &y)?;
/// assert_eq!(out.len(), 4); // keys 0,2,3,4
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn union(left: &Relation, right: &Relation) -> Result<Relation> {
    check_schemas(left, right)?;
    let schema = left.schema().clone();
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < left.len() || j < right.len() {
        let take_left = if i >= left.len() {
            false
        } else if j >= right.len() {
            true
        } else {
            compare_keys(&schema, left.tuple(i), right.tuple(j)) != Ordering::Greater
        };
        let t = if take_left {
            left.tuple(i)
        } else {
            right.tuple(j)
        };
        // Deduplicate by key against the last emitted tuple.
        let dup = out
            .len()
            .checked_sub(schema.arity())
            .map(|s| compare_keys(&schema, &out[s..], t) == Ordering::Equal)
            .unwrap_or(false);
        if !dup {
            out.extend_from_slice(t);
        }
        if take_left {
            i += 1;
        } else {
            j += 1;
        }
    }
    Relation::from_sorted_words(schema, out)
}

/// Tuples of `left` whose keys are also present in `right`, deduplicated by
/// key (the paper's example keeps a single tuple per matching key).
///
/// # Errors
///
/// Returns [`RelationalError::SchemaMismatch`] unless both schemas are equal.
pub fn intersect(left: &Relation, right: &Relation) -> Result<Relation> {
    check_schemas(left, right)?;
    filter_by_membership(left, right, true)
}

/// Tuples of `left` whose keys are absent from `right`.
///
/// # Errors
///
/// Returns [`RelationalError::SchemaMismatch`] unless both schemas are equal.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation> {
    check_schemas(left, right)?;
    filter_by_membership(left, right, false)
}

fn filter_by_membership(left: &Relation, right: &Relation, keep_present: bool) -> Result<Relation> {
    let schema = left.schema().clone();
    let mut out = Vec::new();
    for t in left.iter() {
        let lo = right.lower_bound(&t[..schema.key_arity()]);
        let present =
            lo < right.len() && compare_keys(&schema, right.tuple(lo), t) == Ordering::Equal;
        if present == keep_present {
            let dup = keep_present
                && out
                    .len()
                    .checked_sub(schema.arity())
                    .map(|s| compare_keys(&schema, &out[s..], t) == Ordering::Equal)
                    .unwrap_or(false);
            if !dup {
                out.extend_from_slice(t);
            }
        }
    }
    Relation::from_sorted_words(schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn rel(words: Vec<u64>) -> Relation {
        Relation::from_words(Schema::uniform_u32(2), words).unwrap()
    }

    #[test]
    fn paper_union_example() {
        // x = {(2,b),(3,a),(4,a)}, y = {(0,a),(2,b)} -> {(0,a),(2,b),(3,a),(4,a)}
        let x = rel(vec![2, 11, 3, 10, 4, 10]);
        let y = rel(vec![0, 10, 2, 11]);
        let out = union(&x, &y).unwrap();
        assert_eq!(out.words(), &[0, 10, 2, 11, 3, 10, 4, 10]);
    }

    #[test]
    fn paper_intersect_example() {
        // x = {(2,b),(3,a),(4,a)}, y = {(0,a),(2,b)} -> {(2,b)}
        let x = rel(vec![2, 11, 3, 10, 4, 10]);
        let y = rel(vec![0, 10, 2, 11]);
        let out = intersect(&x, &y).unwrap();
        assert_eq!(out.words(), &[2, 11]);
    }

    #[test]
    fn paper_difference_example() {
        // x = {(2,b),(3,a),(4,a)}, y = {(3,a),(4,a)} -> {(2,b)}
        let x = rel(vec![2, 11, 3, 10, 4, 10]);
        let y = rel(vec![3, 10, 4, 10]);
        let out = difference(&x, &y).unwrap();
        assert_eq!(out.words(), &[2, 11]);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let x = rel(vec![1, 1]);
        let y = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(union(&x, &y).is_err());
        assert!(intersect(&x, &y).is_err());
        assert!(difference(&x, &y).is_err());
    }

    #[test]
    fn union_with_empty() {
        let x = rel(vec![1, 1]);
        let e = Relation::empty(x.schema().clone());
        assert_eq!(union(&x, &e).unwrap(), x);
        assert_eq!(union(&e, &x).unwrap(), x);
    }

    #[test]
    fn intersect_dedups_by_key() {
        let x = rel(vec![1, 10, 1, 11]);
        let y = rel(vec![1, 99]);
        let out = intersect(&x, &y).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn difference_keeps_duplicates_of_survivors() {
        let x = rel(vec![1, 10, 1, 11, 2, 12]);
        let y = rel(vec![2, 0]);
        let out = difference(&x, &y).unwrap();
        assert_eq!(out.len(), 2);
    }
}
