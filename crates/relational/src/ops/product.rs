//! CROSS PRODUCT: all ordered combinations of tuples from two relations.

use crate::{Relation, Result, Schema};

/// The cross product of `left` and `right`.
///
/// The output schema is the concatenation of both input schemas and keeps
/// the left relation's key arity (the result is re-sorted on it).
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let x = Relation::from_words(Schema::uniform_u32(2), vec![3, 10, 4, 10])?;
/// let y = Relation::from_words(Schema::uniform_u32(1), vec![3])?;
/// let out = ops::product(&x, &y)?;
/// assert_eq!(out.len(), 2);
/// assert_eq!(out.tuple(0), &[3, 10, 3]);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn product(left: &Relation, right: &Relation) -> Result<Relation> {
    let mut attrs = left.schema().attrs().to_vec();
    attrs.extend_from_slice(right.schema().attrs());
    let schema = Schema::new(attrs, left.schema().key_arity());
    let mut out = Vec::with_capacity(left.len() * right.len() * schema.arity());
    for lt in left.iter() {
        for rt in right.iter() {
            out.extend_from_slice(lt);
            out.extend_from_slice(rt);
        }
    }
    Relation::from_words(schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_is_product() {
        let x = Relation::from_words(Schema::uniform_u32(1), vec![1, 2, 3]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(1), vec![7, 8]).unwrap();
        let out = product(&x, &y).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn empty_side_gives_empty() {
        let x = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        let y = Relation::empty(Schema::uniform_u32(1));
        assert!(product(&x, &y).unwrap().is_empty());
        assert!(product(&y, &x).unwrap().is_empty());
    }

    #[test]
    fn output_sorted() {
        let x = Relation::from_words(Schema::uniform_u32(1), vec![2, 1]).unwrap();
        let y = Relation::from_words(Schema::uniform_u32(1), vec![9, 8]).unwrap();
        let out = product(&x, &y).unwrap();
        assert!(out.is_sorted());
        assert_eq!(out.tuple(0), &[1, 8]);
    }
}
