//! SELECT: filter tuples by a predicate.

use crate::{Predicate, Relation, Result};

/// Keep the tuples of `input` satisfying `pred`.
///
/// The output preserves the input's schema and sort order.
///
/// # Errors
///
/// Propagates predicate validation errors ([`crate::RelationalError`]).
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema, AttrType, Predicate, CmpOp, Value};
/// let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 2, 20, 3, 30])?;
/// let out = ops::select(&r, &Predicate::cmp(0, CmpOp::Ge, Value::U32(2)))?;
/// assert_eq!(out.len(), 2);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn select(input: &Relation, pred: &Predicate) -> Result<Relation> {
    pred.validate(input.schema())?;
    let mut out = Vec::new();
    for t in input.iter() {
        if pred.eval(input.schema(), t)? {
            out.extend_from_slice(t);
        }
    }
    // Filtering preserves order, so the result is already sorted.
    Relation::from_sorted_words(input.schema().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Schema, Value};

    #[test]
    fn filters_and_preserves_order() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![4, 1, 1, 2, 3, 3, 2, 4]).unwrap();
        let out = select(&r, &Predicate::cmp(0, CmpOp::Le, Value::U32(3))).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.is_sorted());
        assert_eq!(out.tuple(0), &[1, 2]);
    }

    #[test]
    fn empty_result() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1, 2, 3]).unwrap();
        let out = select(&r, &Predicate::False).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn select_true_is_identity() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![5, 0, 1, 1]).unwrap();
        let out = select(&r, &Predicate::True).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn invalid_predicate_rejected() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(select(&r, &Predicate::cmp(9, CmpOp::Eq, Value::U32(0))).is_err());
    }
}
