//! AGGREGATE: grouped reduction (SUM / AVG / MIN / MAX / COUNT).
//!
//! TPC-H Q1 is the paper's "arithmetic centric" query: it groups `lineitem`
//! by two flag attributes and computes sums and averages. Aggregation over
//! groups requires a globally sorted order on the group attributes, so like
//! SORT it introduces a *kernel dependence* in the plan graph.

use std::cmp::Ordering;

use crate::relation::compare_keys;
use crate::{ops::sort_on, AttrType, Relation, RelationalError, Result, Schema, Value};

/// An aggregation function over one attribute of each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Number of tuples in the group (the attribute index is ignored but
    /// kept for uniformity).
    Count,
    /// Sum of the attribute (u32 promotes to u64; f32 stays f32).
    Sum(usize),
    /// Arithmetic mean of the attribute, as f32.
    Avg(usize),
    /// Minimum of the attribute.
    Min(usize),
    /// Maximum of the attribute.
    Max(usize),
}

impl AggFn {
    fn attr(self) -> Option<usize> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(a) | AggFn::Avg(a) | AggFn::Min(a) | AggFn::Max(a) => Some(a),
        }
    }

    fn result_type(self, schema: &Schema) -> Result<AttrType> {
        match self {
            AggFn::Count => Ok(AttrType::U64),
            AggFn::Avg(_) => Ok(AttrType::F32),
            AggFn::Sum(a) => {
                let ty = check_numeric(schema, a)?;
                Ok(match ty {
                    AttrType::F32 => AttrType::F32,
                    _ => AttrType::U64,
                })
            }
            AggFn::Min(a) | AggFn::Max(a) => check_numeric(schema, a),
        }
    }

    /// ALU operations contributed per input tuple (for the GPU cost model).
    pub fn alu_ops(self) -> u64 {
        match self {
            AggFn::Count => 1,
            AggFn::Sum(_) | AggFn::Min(_) | AggFn::Max(_) => 1,
            AggFn::Avg(_) => 2,
        }
    }
}

fn check_numeric(schema: &Schema, attr: usize) -> Result<AttrType> {
    if attr >= schema.arity() {
        return Err(RelationalError::AttrOutOfBounds {
            attr,
            arity: schema.arity(),
        });
    }
    let ty = schema.attr(attr);
    if !ty.is_numeric() {
        return Err(RelationalError::TypeMismatch {
            expected: AttrType::U64,
            found: ty,
        });
    }
    Ok(ty)
}

/// Group `input` by the attributes `group_by` and compute `aggs` per group.
///
/// Output schema: the group attributes (as the key) followed by one
/// attribute per aggregate. Groups appear in sorted order.
///
/// # Errors
///
/// Returns attribute/type errors from [`crate::RelationalError`] if a group
/// or aggregate attribute is invalid.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, ops::AggFn, Relation, Schema};
/// let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 1, 20, 2, 5])?;
/// let out = ops::aggregate(&r, &[0], &[AggFn::Sum(1), AggFn::Count])?;
/// assert_eq!(out.len(), 2);
/// assert_eq!(out.tuple(0), &[1, 30, 2]);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn aggregate(input: &Relation, group_by: &[usize], aggs: &[AggFn]) -> Result<Relation> {
    for agg in aggs {
        if let Some(a) = agg.attr() {
            check_numeric(input.schema(), a)?;
        }
    }
    // Sort so that group attributes lead; aggregate over runs.
    let sorted = if group_by.is_empty() {
        input.clone()
    } else {
        sort_on(input, group_by)?
    };
    // After sort_on, attribute i of `sorted` maps back: group attrs occupy
    // positions 0..group_by.len(); remaining attrs follow in original order.
    let remap = build_remap(input.schema().arity(), group_by);

    let mut out_attrs: Vec<AttrType> = group_by.iter().map(|&a| input.schema().attr(a)).collect();
    for agg in aggs {
        out_attrs.push(agg.result_type(input.schema())?);
    }
    if out_attrs.is_empty() {
        return Err(RelationalError::BadKeyArity {
            key_arity: 0,
            arity: 0,
        });
    }
    let out_schema = Schema::new(
        out_attrs,
        group_by.len().max(if aggs.is_empty() { 1 } else { 0 }),
    );

    let g = group_by.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        // Find the end of this group (run of equal leading g attributes).
        let mut end = i + 1;
        while end < sorted.len() && same_group(&sorted, i, end, g) {
            end += 1;
        }
        out.extend_from_slice(&sorted.tuple(i)[..g]);
        for agg in aggs {
            out.push(eval_agg(&sorted, i, end, *agg, &remap, input.schema()));
        }
        i = end;
    }
    Relation::from_words(out_schema, out)
}

fn build_remap(arity: usize, group_by: &[usize]) -> Vec<usize> {
    // remap[original_attr] = position in sorted relation.
    let mut remap = vec![usize::MAX; arity];
    for (pos, &a) in group_by.iter().enumerate() {
        remap[a] = pos;
    }
    let mut next = group_by.len();
    for (a, slot) in remap.iter_mut().enumerate() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
            let _ = a;
        }
    }
    remap
}

fn same_group(rel: &Relation, a: usize, b: usize, g: usize) -> bool {
    if g == 0 {
        return true;
    }
    // After sort_on the group attributes are exactly the key prefix.
    compare_keys(rel.schema(), rel.tuple(a), rel.tuple(b)) == Ordering::Equal
}

fn eval_agg(
    rel: &Relation,
    start: usize,
    end: usize,
    agg: AggFn,
    remap: &[usize],
    orig_schema: &Schema,
) -> u64 {
    match agg {
        AggFn::Count => (end - start) as u64,
        AggFn::Sum(a) => {
            let col = remap[a];
            match orig_schema.attr(a) {
                AttrType::F32 => {
                    let s: f64 = (start..end)
                        .map(|i| f64::from(f32::from_bits(rel.tuple(i)[col] as u32)))
                        .sum();
                    Value::F32(s as f32).encode()
                }
                _ => (start..end).fold(0u64, |acc, i| acc.wrapping_add(rel.tuple(i)[col])),
            }
        }
        AggFn::Avg(a) => {
            let col = remap[a];
            let n = (end - start) as f64;
            let s: f64 = (start..end)
                .map(|i| match orig_schema.attr(a) {
                    AttrType::F32 => f64::from(f32::from_bits(rel.tuple(i)[col] as u32)),
                    _ => rel.tuple(i)[col] as f64,
                })
                .sum();
            Value::F32((s / n) as f32).encode()
        }
        AggFn::Min(a) | AggFn::Max(a) => {
            let col = remap[a];
            let ty = orig_schema.attr(a);
            let mut best = rel.tuple(start)[col];
            for i in start + 1..end {
                let w = rel.tuple(i)[col];
                let ord = crate::compare_words(w, best, ty);
                let better = if matches!(agg, AggFn::Min(_)) {
                    ord == Ordering::Less
                } else {
                    ord == Ordering::Greater
                };
                if better {
                    best = w;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_sum_count() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 1, 20, 2, 5, 2, 6, 2, 7])
            .unwrap();
        let out = aggregate(&r, &[0], &[AggFn::Sum(1), AggFn::Count]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuple(0), &[1, 30, 2]);
        assert_eq!(out.tuple(1), &[2, 18, 3]);
    }

    #[test]
    fn min_max() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 9, 1, 3, 1, 7]).unwrap();
        let out = aggregate(&r, &[0], &[AggFn::Min(1), AggFn::Max(1)]).unwrap();
        assert_eq!(out.tuple(0), &[1, 3, 9]);
    }

    #[test]
    fn avg_is_f32() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 1, 1, 2]).unwrap();
        let out = aggregate(&r, &[0], &[AggFn::Avg(1)]).unwrap();
        assert_eq!(out.value(0, 1), Value::F32(1.5));
    }

    #[test]
    fn float_sum() {
        let s = Schema::new(vec![AttrType::U32, AttrType::F32], 1);
        let r = Relation::from_rows(
            s,
            &[
                vec![Value::U32(1), Value::F32(0.5)],
                vec![Value::U32(1), Value::F32(0.25)],
            ],
        )
        .unwrap();
        let out = aggregate(&r, &[0], &[AggFn::Sum(1)]).unwrap();
        assert_eq!(out.value(0, 1), Value::F32(0.75));
    }

    #[test]
    fn global_aggregate_without_group() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1, 2, 3]).unwrap();
        let out = aggregate(&r, &[], &[AggFn::Sum(0), AggFn::Count]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuple(0), &[6, 3]);
    }

    #[test]
    fn group_by_non_key_attr() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 5, 2, 5, 3, 6]).unwrap();
        let out = aggregate(&r, &[1], &[AggFn::Count]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuple(0), &[5, 2]);
        assert_eq!(out.tuple(1), &[6, 1]);
    }

    #[test]
    fn bad_attr_rejected() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(aggregate(&r, &[0], &[AggFn::Sum(7)]).is_err());
    }
}
