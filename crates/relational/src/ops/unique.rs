//! UNIQUE: remove duplicate tuples from a sorted relation.

use std::cmp::Ordering;

use crate::relation::compare_tuples;
use crate::{Relation, Result};

/// Remove exact duplicate tuples, keeping the first occurrence.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let r = Relation::from_words(Schema::uniform_u32(1), vec![1, 1, 2, 3, 3])?;
/// assert_eq!(ops::unique(&r)?.len(), 3);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn unique(input: &Relation) -> Result<Relation> {
    let schema = input.schema().clone();
    let arity = schema.arity();
    let mut out: Vec<u64> = Vec::new();
    for t in input.iter() {
        let dup = out
            .len()
            .checked_sub(arity)
            .map(|s| compare_tuples(&schema, &out[s..], t) == Ordering::Equal)
            .unwrap_or(false);
        if !dup {
            out.extend_from_slice(t);
        }
    }
    Relation::from_sorted_words(schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    #[test]
    fn removes_exact_duplicates_only() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 1, 10, 1, 11]).unwrap();
        let out = unique(&r).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn idempotent() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1, 1, 2]).unwrap();
        let once = unique(&r).unwrap();
        let twice = unique(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_input() {
        let r = Relation::empty(Schema::uniform_u32(1));
        assert!(unique(&r).unwrap().is_empty());
    }
}
