//! SORT: reorder a relation so that a chosen attribute list becomes the key.
//!
//! In the paper SORT is the canonical *kernel-dependent* operator: it acts
//! as a global barrier in the dependence graph and can never be fused with
//! its producers or consumers.

use crate::{ops::project, Relation, Result};

/// Sort `input` on the attribute indices `attrs`, producing a relation whose
/// schema is permuted so `attrs` come first and form the new key; the
/// remaining attributes follow in their original order.
///
/// # Errors
///
/// Returns [`crate::RelationalError::AttrOutOfBounds`] for invalid indices.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Relation, Schema};
/// let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 9, 2, 3])?;
/// let out = ops::sort_on(&r, &[1])?;
/// assert_eq!(out.tuple(0), &[3, 2]); // sorted on former attr 1
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn sort_on(input: &Relation, attrs: &[usize]) -> Result<Relation> {
    let mut order: Vec<usize> = attrs.to_vec();
    for a in 0..input.schema().arity() {
        if !attrs.contains(&a) {
            order.push(a);
        }
    }
    project(input, &order, attrs.len().max(1).min(order.len()))
}

/// Re-sort a relation on its existing key (logically the identity for the
/// always-sorted [`Relation`] representation; exists so SORT plan nodes have
/// a reference semantics).
pub fn sort_identity(input: &Relation) -> Relation {
    input.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    #[test]
    fn sorts_on_new_key() {
        let r = Relation::from_words(Schema::uniform_u32(3), vec![1, 5, 9, 2, 4, 8]).unwrap();
        let out = sort_on(&r, &[1]).unwrap();
        assert_eq!(out.schema().key_arity(), 1);
        assert_eq!(out.tuple(0), &[4, 2, 8]);
        assert_eq!(out.tuple(1), &[5, 1, 9]);
    }

    #[test]
    fn multi_attr_sort() {
        let r = Relation::from_words(Schema::uniform_u32(3), vec![1, 2, 9, 2, 2, 1]).unwrap();
        let out = sort_on(&r, &[1, 2]).unwrap();
        assert_eq!(out.schema().key_arity(), 2);
        assert_eq!(out.tuple(0), &[2, 1, 2]);
    }

    #[test]
    fn bad_attr_rejected() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(sort_on(&r, &[3]).is_err());
    }
}
