//! CPU reference implementations of every relational algebra operator.
//!
//! These are the correctness oracle for the GPU simulator: every fused or
//! unfused kernel execution must produce bit-identical relations to these
//! functions. They are also the "CPU baseline" end of the paper's CPU/GPU
//! comparisons.

mod aggregate;
mod anti_join;
mod join;
mod map;
mod product;
mod project;
mod select;
mod set_ops;
mod sort;
mod unique;

pub use aggregate::{aggregate, AggFn};
pub use anti_join::{anti_join, semi_join};
pub use join::{join, join_schema};
pub use map::compute;
pub use product::product;
pub use project::project;
pub use select::select;
pub use set_ops::{difference, intersect, union};
pub use sort::{sort_identity, sort_on};
pub use unique::unique;
