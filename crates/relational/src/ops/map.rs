//! COMPUTE (arithmetic MAP): evaluate expressions per tuple.
//!
//! This implements the paper's Section 4.4 arithmetic extension: simple
//! per-tuple arithmetic such as TPC-H's `price * (1-discount) * (1+tax)`
//! (micro-benchmark pattern (e)). Each output attribute is an [`Expr`];
//! `Expr::Attr(i)` passes an input attribute through unchanged.

use crate::{Expr, Relation, RelationalError, Result, Schema};

/// Produce a relation whose attributes are `outputs` evaluated per tuple of
/// `input`; the first `key_arity` outputs form the new key.
///
/// # Errors
///
/// Returns expression type/bounds errors, or
/// [`RelationalError::BadKeyArity`] if `key_arity` exceeds the output arity
/// or `outputs` is empty.
///
/// # Examples
///
/// ```
/// use kw_relational::{ops, Expr, Relation, Schema};
/// let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 2, 20])?;
/// let out = ops::compute(&r, &[Expr::attr(0), Expr::attr(1).mul(Expr::lit(2u32))], 1)?;
/// assert_eq!(out.tuple(0), &[1, 20]);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
pub fn compute(input: &Relation, outputs: &[Expr], key_arity: usize) -> Result<Relation> {
    if outputs.is_empty() || key_arity > outputs.len() {
        return Err(RelationalError::BadKeyArity {
            key_arity,
            arity: outputs.len(),
        });
    }
    let attrs = outputs
        .iter()
        .map(|e| e.result_type(input.schema()))
        .collect::<Result<Vec<_>>>()?;
    let schema = Schema::new(attrs, key_arity);
    let mut data = Vec::with_capacity(input.len() * outputs.len());
    for t in input.iter() {
        for e in outputs {
            data.push(e.eval(input.schema(), t)?.encode());
        }
    }
    Relation::from_words(schema, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Value};

    #[test]
    fn arithmetic_pipeline() {
        let s = Schema::new(vec![AttrType::F32, AttrType::F32, AttrType::F32], 0);
        let r = Relation::from_rows(
            s,
            &[vec![Value::F32(100.0), Value::F32(0.1), Value::F32(0.05)]],
        )
        .unwrap();
        let e = Expr::attr(0)
            .mul(Expr::lit(1.0f32).sub(Expr::attr(1)))
            .mul(Expr::lit(1.0f32).add(Expr::attr(2)));
        let out = compute(&r, &[e], 0).unwrap();
        match out.value(0, 0) {
            Value::F32(x) => assert!((x - 94.5).abs() < 1e-4),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn passthrough_preserves_data() {
        let r = Relation::from_words(Schema::uniform_u32(2), vec![1, 10, 2, 20]).unwrap();
        let out = compute(&r, &[Expr::attr(0), Expr::attr(1)], 1).unwrap();
        assert_eq!(out.words(), r.words());
    }

    #[test]
    fn empty_outputs_rejected() {
        let r = Relation::from_words(Schema::uniform_u32(1), vec![1]).unwrap();
        assert!(compute(&r, &[], 0).is_err());
        assert!(compute(&r, &[Expr::attr(0)], 2).is_err());
    }

    #[test]
    fn type_error_propagates() {
        let s = Schema::new(vec![AttrType::Bool], 0);
        let r = Relation::from_rows(s, &[vec![Value::Bool(true)]]).unwrap();
        assert!(compute(&r, &[Expr::attr(0).add(Expr::lit(1u32))], 0).is_err());
    }
}
