//! Error type for the relational data model.

use std::fmt;

/// Errors produced by relational data-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// An attribute index referenced a position past the end of the schema.
    AttrOutOfBounds {
        /// The offending attribute index.
        attr: usize,
        /// The arity of the schema it was applied to.
        arity: usize,
    },
    /// A key arity was requested that does not fit the schema.
    BadKeyArity {
        /// The requested key arity.
        key_arity: usize,
        /// The arity of the schema.
        arity: usize,
    },
    /// Two relations were combined whose schemas are incompatible for the
    /// requested operation.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Raw tuple data did not match the schema (wrong word count).
    MalformedData {
        /// Number of raw words supplied.
        words: usize,
        /// Tuple arity expected by the schema.
        arity: usize,
    },
    /// A relation constructor requiring sorted input observed out-of-order
    /// tuples.
    NotSorted {
        /// Index of the first out-of-order tuple.
        index: usize,
    },
    /// A typed value did not match the attribute type it was compared to or
    /// stored into.
    TypeMismatch {
        /// What was expected.
        expected: crate::AttrType,
        /// What was found.
        found: crate::AttrType,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::AttrOutOfBounds { attr, arity } => {
                write!(f, "attribute index {attr} out of bounds for arity {arity}")
            }
            RelationalError::BadKeyArity { key_arity, arity } => {
                write!(f, "key arity {key_arity} invalid for arity {arity}")
            }
            RelationalError::SchemaMismatch { detail } => {
                write!(f, "schema mismatch: {detail}")
            }
            RelationalError::MalformedData { words, arity } => {
                write!(
                    f,
                    "raw data of {words} words is not a multiple of arity {arity}"
                )
            }
            RelationalError::NotSorted { index } => {
                write!(f, "tuple at index {index} violates key sort order")
            }
            RelationalError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = RelationalError::NotSorted { index: 3 };
        assert!(!e.to_string().is_empty());
        let e = RelationalError::SchemaMismatch {
            detail: "arity".into(),
        };
        assert!(e.to_string().contains("arity"));
    }
}
