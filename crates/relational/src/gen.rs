//! Random relation generators for tests and benchmarks.
//!
//! The paper's micro-benchmarks feed "randomly generated 32-bit integers";
//! these helpers reproduce that, including generators with a controlled
//! selectivity for the Figure 20 sweep and join inputs with a controlled
//! match rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AttrType, Relation, Schema, Value};

/// Deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A relation of `n` tuples with uniformly random attribute values.
///
/// Keys are drawn from `0..key_range` so duplicate density is controllable;
/// non-key attributes are uniform over the full attribute domain.
pub fn random_relation(schema: &Schema, n: usize, key_range: u64, rng: &mut impl Rng) -> Relation {
    let mut words = Vec::with_capacity(n * schema.arity());
    for _ in 0..n {
        for (i, &ty) in schema.attrs().iter().enumerate() {
            let w = if i < schema.key_arity() {
                random_word_in(ty, key_range.max(1), rng)
            } else {
                random_word(ty, rng)
            };
            words.push(w);
        }
    }
    Relation::from_words(schema.clone(), words).expect("generated data matches schema")
}

/// The paper's default micro-benchmark input: `n` tuples of four `u32`
/// attributes (16 bytes/tuple), single-attribute key.
pub fn micro_input(n: usize, seed: u64) -> Relation {
    let schema = Schema::uniform_u32(4);
    random_relation(&schema, n, u64::from(u32::MAX), &mut rng(seed))
}

/// An input for SELECT whose attribute 1 matches `Predicate::cmp(1, Lt,
/// threshold_for(selectivity))` with probability `selectivity`.
///
/// Attribute 1 is uniform in `0..SELECTIVITY_DOMAIN`; combine with
/// [`selectivity_threshold`] to build the predicate.
pub fn selectivity_input(n: usize, arity: usize, seed: u64) -> Relation {
    let schema = Schema::uniform_u32(arity.max(2));
    let mut r = rng(seed);
    let mut words = Vec::with_capacity(n * schema.arity());
    for _ in 0..n {
        for i in 0..schema.arity() {
            if i == 1 {
                words.push(u64::from(r.gen_range(0..SELECTIVITY_DOMAIN)));
            } else {
                words.push(u64::from(r.gen::<u32>()));
            }
        }
    }
    Relation::from_words(schema, words).expect("generated data matches schema")
}

/// Domain used by [`selectivity_input`] for the filtered attribute.
pub const SELECTIVITY_DOMAIN: u32 = 1 << 20;

/// The `Lt` threshold on attribute 1 that yields the given selectivity over
/// [`selectivity_input`] data.
pub fn selectivity_threshold(selectivity: f64) -> Value {
    let t = (f64::from(SELECTIVITY_DOMAIN) * selectivity.clamp(0.0, 1.0)).round() as u32;
    Value::U32(t)
}

/// A pair of join inputs of `n` tuples each where a fraction `match_rate` of
/// left keys also appear on the right. Keys are unique per side.
pub fn join_inputs(n: usize, arity: usize, match_rate: f64, seed: u64) -> (Relation, Relation) {
    let schema = Schema::uniform_u32(arity.max(2));
    let mut r = rng(seed);
    let matched = ((n as f64) * match_rate.clamp(0.0, 1.0)).round() as usize;

    let mut left = Vec::with_capacity(n * schema.arity());
    let mut right = Vec::with_capacity(n * schema.arity());
    for k in 0..n {
        // Left keys: even numbers. Right keys: even for matched, odd beyond.
        let lkey = (k as u64) * 2;
        let rkey = if k < matched {
            lkey
        } else {
            (k as u64) * 2 + 1
        };
        left.push(lkey);
        right.push(rkey);
        for _ in 1..schema.arity() {
            left.push(u64::from(r.gen::<u32>()));
        }
        for _ in 1..schema.arity() {
            right.push(u64::from(r.gen::<u32>()));
        }
    }
    let l = Relation::from_words(schema.clone(), left).expect("left join input");
    let r = Relation::from_words(schema, right).expect("right join input");
    (l, r)
}

fn random_word(ty: AttrType, rng: &mut impl Rng) -> u64 {
    match ty {
        AttrType::U32 => u64::from(rng.gen::<u32>()),
        AttrType::U64 => rng.gen::<u64>(),
        AttrType::F32 => u64::from(rng.gen::<f32>().to_bits()),
        AttrType::Bool => u64::from(rng.gen::<bool>()),
    }
}

fn random_word_in(ty: AttrType, range: u64, rng: &mut impl Rng) -> u64 {
    match ty {
        AttrType::U32 => rng.gen_range(0..range.min(u64::from(u32::MAX))),
        AttrType::U64 => rng.gen_range(0..range),
        AttrType::F32 => u64::from((rng.gen::<f32>() * range as f32).to_bits()),
        AttrType::Bool => u64::from(rng.gen::<bool>()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, CmpOp, Predicate};

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(micro_input(100, 7), micro_input(100, 7));
        assert_ne!(micro_input(100, 7), micro_input(100, 8));
    }

    #[test]
    fn micro_input_shape() {
        let r = micro_input(50, 1);
        assert_eq!(r.len(), 50);
        assert_eq!(r.schema().tuple_bytes(), 16);
        assert!(r.is_sorted());
    }

    #[test]
    fn selectivity_is_respected() {
        let n = 20_000;
        let r = selectivity_input(n, 4, 3);
        for s in [0.1, 0.5, 0.9] {
            let p = Predicate::cmp(1, CmpOp::Lt, selectivity_threshold(s));
            let out = ops::select(&r, &p).unwrap();
            let actual = out.len() as f64 / n as f64;
            assert!((actual - s).abs() < 0.02, "selectivity {s}: got {actual}");
        }
    }

    #[test]
    fn join_match_rate_respected() {
        let (l, r) = join_inputs(1000, 2, 0.3, 5);
        let out = ops::join(&l, &r, 1).unwrap();
        let rate = out.len() as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.01, "match rate: {rate}");
    }
}
