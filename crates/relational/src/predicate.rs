//! Selection predicates.
//!
//! A [`Predicate`] is the filter expression evaluated by SELECT. Predicates
//! also report an ALU cost estimate, which the kernel-IR interpreter charges
//! per evaluated tuple — this is how the paper's "larger optimization scope"
//! effects (e.g. combining back-to-back filters) become measurable.

use std::fmt;

use crate::{compare_words, RelationalError, Result, Schema, Value};

/// A comparison operator between an attribute and a value or attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the comparison to an [`std::cmp::Ordering`].
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over one tuple.
///
/// # Examples
///
/// ```
/// use kw_relational::{Predicate, CmpOp, Value, Schema, AttrType};
/// // attr0 >= 10 && attr1 < 5
/// let p = Predicate::cmp(0, CmpOp::Ge, Value::U32(10))
///     .and(Predicate::cmp(1, CmpOp::Lt, Value::U32(5)));
/// let schema = Schema::new(vec![AttrType::U32, AttrType::U32], 1);
/// assert!(p.eval(&schema, &[12, 3])?);
/// assert!(!p.eval(&schema, &[12, 9])?);
/// # Ok::<(), kw_relational::RelationalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Compare attribute `attr` against a constant.
    Cmp {
        /// Attribute index.
        attr: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Compare two attributes of the same tuple.
    CmpAttr {
        /// Left attribute index.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right attribute index.
        right: usize,
    },
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Build an attribute-vs-constant comparison.
    pub fn cmp(attr: usize, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp { attr, op, value }
    }

    /// Build an attribute-vs-attribute comparison.
    pub fn cmp_attr(left: usize, op: CmpOp, right: usize) -> Predicate {
        Predicate::CmpAttr { left, op, right }
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against the raw words of one tuple.
    ///
    /// # Errors
    ///
    /// Returns [`RelationalError::AttrOutOfBounds`] for a bad attribute index
    /// or [`RelationalError::TypeMismatch`] when a constant's type differs
    /// from the attribute type.
    pub fn eval(&self, schema: &Schema, tuple: &[u64]) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Cmp { attr, op, value } => {
                let ty = attr_ty(schema, *attr)?;
                if value.attr_type() != ty {
                    return Err(RelationalError::TypeMismatch {
                        expected: ty,
                        found: value.attr_type(),
                    });
                }
                Ok(op.eval(compare_words(tuple[*attr], value.encode(), ty)))
            }
            Predicate::CmpAttr { left, op, right } => {
                let lt = attr_ty(schema, *left)?;
                let rt = attr_ty(schema, *right)?;
                if lt != rt {
                    return Err(RelationalError::TypeMismatch {
                        expected: lt,
                        found: rt,
                    });
                }
                Ok(op.eval(compare_words(tuple[*left], tuple[*right], lt)))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(a) => Ok(!a.eval(schema, tuple)?),
        }
    }

    /// Validate the predicate against a schema without evaluating it.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Predicate::eval`].
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Cmp { attr, value, .. } => {
                let ty = attr_ty(schema, *attr)?;
                if value.attr_type() != ty {
                    return Err(RelationalError::TypeMismatch {
                        expected: ty,
                        found: value.attr_type(),
                    });
                }
                Ok(())
            }
            Predicate::CmpAttr { left, right, .. } => {
                let lt = attr_ty(schema, *left)?;
                let rt = attr_ty(schema, *right)?;
                if lt != rt {
                    return Err(RelationalError::TypeMismatch {
                        expected: lt,
                        found: rt,
                    });
                }
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(a) => a.validate(schema),
        }
    }

    /// Estimated ALU operations per evaluation (used by the GPU cost model).
    pub fn alu_ops(&self) -> u64 {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Cmp { .. } | Predicate::CmpAttr { .. } => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => 1 + a.alu_ops() + b.alu_ops(),
            Predicate::Not(a) => 1 + a.alu_ops(),
        }
    }

    /// Highest attribute index referenced, if any.
    pub fn max_attr(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Cmp { attr, .. } => Some(*attr),
            Predicate::CmpAttr { left, right, .. } => Some((*left).max(*right)),
            Predicate::And(a, b) | Predicate::Or(a, b) => match (a.max_attr(), b.max_attr()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            Predicate::Not(a) => a.max_attr(),
        }
    }

    /// Remap attribute indices through `map` (used when predicates are pushed
    /// through PROJECT during fusion). `map[i]` is the new index of old
    /// attribute `i`; `None` means the attribute was discarded.
    ///
    /// Returns `None` if the predicate references a discarded attribute.
    pub fn remap_attrs(&self, map: &[Option<usize>]) -> Option<Predicate> {
        let get = |i: usize| map.get(i).copied().flatten();
        match self {
            Predicate::True => Some(Predicate::True),
            Predicate::False => Some(Predicate::False),
            Predicate::Cmp { attr, op, value } => Some(Predicate::Cmp {
                attr: get(*attr)?,
                op: *op,
                value: *value,
            }),
            Predicate::CmpAttr { left, op, right } => Some(Predicate::CmpAttr {
                left: get(*left)?,
                op: *op,
                right: get(*right)?,
            }),
            Predicate::And(a, b) => Some(Predicate::And(
                Box::new(a.remap_attrs(map)?),
                Box::new(b.remap_attrs(map)?),
            )),
            Predicate::Or(a, b) => Some(Predicate::Or(
                Box::new(a.remap_attrs(map)?),
                Box::new(b.remap_attrs(map)?),
            )),
            Predicate::Not(a) => Some(Predicate::Not(Box::new(a.remap_attrs(map)?))),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { attr, op, value } => write!(f, "a{attr} {op} {value}"),
            Predicate::CmpAttr { left, op, right } => write!(f, "a{left} {op} a{right}"),
            Predicate::And(a, b) => write!(f, "({a} && {b})"),
            Predicate::Or(a, b) => write!(f, "({a} || {b})"),
            Predicate::Not(a) => write!(f, "!({a})"),
        }
    }
}

fn attr_ty(schema: &Schema, attr: usize) -> Result<crate::AttrType> {
    if attr >= schema.arity() {
        return Err(RelationalError::AttrOutOfBounds {
            attr,
            arity: schema.arity(),
        });
    }
    Ok(schema.attr(attr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::new(vec![AttrType::U32, AttrType::U32, AttrType::F32], 1)
    }

    #[test]
    fn cmp_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(CmpOp::Ne.eval(Less));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(!CmpOp::Gt.eval(Equal));
    }

    #[test]
    fn eval_basic() {
        let s = schema();
        let p = Predicate::cmp(0, CmpOp::Lt, Value::U32(5));
        assert!(p.eval(&s, &[4, 0, 0]).unwrap());
        assert!(!p.eval(&s, &[5, 0, 0]).unwrap());
    }

    #[test]
    fn eval_float() {
        let s = schema();
        let p = Predicate::cmp(2, CmpOp::Ge, Value::F32(1.5));
        let t = [0u64, 0, Value::F32(2.0).encode()];
        assert!(p.eval(&s, &t).unwrap());
    }

    #[test]
    fn eval_attr_vs_attr_and_logic() {
        let s = schema();
        let p = Predicate::cmp_attr(0, CmpOp::Eq, 1)
            .or(Predicate::cmp(0, CmpOp::Eq, Value::U32(9)))
            .not();
        assert!(!p.eval(&s, &[3, 3, 0]).unwrap());
        assert!(p.eval(&s, &[3, 4, 0]).unwrap());
    }

    #[test]
    fn type_mismatch_detected() {
        let s = schema();
        let p = Predicate::cmp(0, CmpOp::Eq, Value::F32(1.0));
        assert!(matches!(
            p.validate(&s),
            Err(RelationalError::TypeMismatch { .. })
        ));
        let p = Predicate::cmp_attr(0, CmpOp::Eq, 2);
        assert!(p.validate(&s).is_err());
    }

    #[test]
    fn out_of_bounds_detected() {
        let s = schema();
        let p = Predicate::cmp(7, CmpOp::Eq, Value::U32(0));
        assert!(matches!(
            p.validate(&s),
            Err(RelationalError::AttrOutOfBounds { .. })
        ));
    }

    #[test]
    fn alu_ops_counts() {
        let p = Predicate::cmp(0, CmpOp::Eq, Value::U32(0)).and(Predicate::cmp(
            1,
            CmpOp::Eq,
            Value::U32(0),
        ));
        assert_eq!(p.alu_ops(), 3);
        assert_eq!(Predicate::True.alu_ops(), 0);
    }

    #[test]
    fn remap() {
        let p = Predicate::cmp(2, CmpOp::Eq, Value::U32(0));
        let q = p.remap_attrs(&[Some(0), None, Some(1)]).unwrap();
        assert_eq!(q, Predicate::cmp(1, CmpOp::Eq, Value::U32(0)));
        let p = Predicate::cmp(1, CmpOp::Eq, Value::U32(0));
        assert!(p.remap_attrs(&[Some(0), None]).is_none());
    }

    #[test]
    fn max_attr() {
        let p =
            Predicate::cmp(1, CmpOp::Eq, Value::U32(0)).and(Predicate::cmp_attr(0, CmpOp::Lt, 2));
        assert_eq!(p.max_attr(), Some(2));
        assert_eq!(Predicate::True.max_attr(), None);
    }
}
