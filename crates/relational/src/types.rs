//! Attribute types, runtime values and schemas.
//!
//! Tuples are densely packed arrays of 64-bit words (one word per
//! attribute). The [`AttrType`] of each attribute determines how the word is
//! interpreted and, importantly for the GPU cost model, how many bytes the
//! attribute occupies in the packed on-device layout (the paper's
//! micro-benchmarks use 16-byte tuples of four 32-bit attributes).

use std::fmt;

/// The type of a single tuple attribute.
///
/// # Examples
///
/// ```
/// use kw_relational::AttrType;
/// assert_eq!(AttrType::U32.byte_width(), 4);
/// assert_eq!(AttrType::F32.byte_width(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrType {
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// 32-bit IEEE-754 float (stored as its bit pattern).
    F32,
    /// Boolean flag (stored as 0 or 1).
    Bool,
}

impl AttrType {
    /// Width of the attribute in the packed on-device layout, in bytes.
    pub fn byte_width(self) -> usize {
        match self {
            AttrType::U32 | AttrType::F32 => 4,
            AttrType::U64 => 8,
            AttrType::Bool => 1,
        }
    }

    /// Whether the attribute is a numeric type usable in arithmetic.
    pub fn is_numeric(self) -> bool {
        !matches!(self, AttrType::Bool)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::U32 => "u32",
            AttrType::U64 => "u64",
            AttrType::F32 => "f32",
            AttrType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A dynamically typed attribute value.
///
/// Values are the boundary type used by predicates, expressions and tests;
/// inside a [`crate::Relation`] everything is stored as raw 64-bit words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned 32-bit integer value.
    U32(u32),
    /// Unsigned 64-bit integer value.
    U64(u64),
    /// 32-bit float value.
    F32(f32),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The [`AttrType`] this value inhabits.
    pub fn attr_type(self) -> AttrType {
        match self {
            Value::U32(_) => AttrType::U32,
            Value::U64(_) => AttrType::U64,
            Value::F32(_) => AttrType::F32,
            Value::Bool(_) => AttrType::Bool,
        }
    }

    /// Encode the value into the raw 64-bit word representation used by
    /// [`crate::Relation`] storage.
    pub fn encode(self) -> u64 {
        match self {
            Value::U32(v) => u64::from(v),
            Value::U64(v) => v,
            Value::F32(v) => u64::from(v.to_bits()),
            Value::Bool(v) => u64::from(v),
        }
    }

    /// Decode a raw word back into a value of type `ty`.
    pub fn decode(word: u64, ty: AttrType) -> Value {
        match ty {
            AttrType::U32 => Value::U32(word as u32),
            AttrType::U64 => Value::U64(word),
            AttrType::F32 => Value::F32(f32::from_bits(word as u32)),
            AttrType::Bool => Value::Bool(word != 0),
        }
    }

    /// Numeric view of the value as `f64` (booleans become 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::U32(v) => f64::from(v),
            Value::U64(v) => v as f64,
            Value::F32(v) => f64::from(v),
            Value::Bool(v) => f64::from(u8::from(v)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U32(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Compare two raw words under a shared attribute type.
///
/// Defines a total order (floats are compared via [`f32::total_cmp`]), which
/// gives relations the strict weak ordering required by the multi-stage
/// skeletons of Diamos et al.
pub fn compare_words(a: u64, b: u64, ty: AttrType) -> std::cmp::Ordering {
    match ty {
        AttrType::U32 | AttrType::U64 | AttrType::Bool => a.cmp(&b),
        AttrType::F32 => f32::from_bits(a as u32).total_cmp(&f32::from_bits(b as u32)),
    }
}

/// The schema of a relation: the attribute types plus how many leading
/// attributes form the key.
///
/// # Examples
///
/// ```
/// use kw_relational::{AttrType, Schema};
/// let schema = Schema::new(vec![AttrType::U32, AttrType::U32], 1);
/// assert_eq!(schema.arity(), 2);
/// assert_eq!(schema.tuple_bytes(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<AttrType>,
    key_arity: usize,
}

impl Schema {
    /// Create a schema with the given attribute types; the first
    /// `key_arity` attributes form the key.
    ///
    /// # Panics
    ///
    /// Panics if `key_arity` exceeds the number of attributes or if the
    /// attribute list is empty.
    pub fn new(attrs: Vec<AttrType>, key_arity: usize) -> Schema {
        assert!(!attrs.is_empty(), "schema must have at least one attribute");
        assert!(
            key_arity <= attrs.len(),
            "key arity {key_arity} exceeds attribute count {}",
            attrs.len()
        );
        Schema { attrs, key_arity }
    }

    /// Convenience constructor for a schema of `arity` u32 attributes with a
    /// single-attribute key — the shape used throughout the paper's
    /// micro-benchmarks.
    pub fn uniform_u32(arity: usize) -> Schema {
        Schema::new(vec![AttrType::U32; arity], 1.min(arity))
    }

    /// Number of attributes per tuple.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of leading attributes forming the key.
    pub fn key_arity(&self) -> usize {
        self.key_arity
    }

    /// The attribute types.
    pub fn attrs(&self) -> &[AttrType] {
        &self.attrs
    }

    /// Type of attribute `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn attr(&self, i: usize) -> AttrType {
        self.attrs[i]
    }

    /// Packed byte width of one tuple on the device.
    pub fn tuple_bytes(&self) -> usize {
        self.attrs.iter().map(|a| a.byte_width()).sum()
    }

    /// Schema produced by projecting onto `attrs` with a new key arity.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RelationalError::AttrOutOfBounds`] if any index is
    /// out of range, or [`crate::RelationalError::BadKeyArity`] if the new
    /// key arity exceeds the projected arity.
    pub fn project(&self, attrs: &[usize], key_arity: usize) -> crate::Result<Schema> {
        let mut out = Vec::with_capacity(attrs.len());
        for &a in attrs {
            if a >= self.arity() {
                return Err(crate::RelationalError::AttrOutOfBounds {
                    attr: a,
                    arity: self.arity(),
                });
            }
            out.push(self.attrs[a]);
        }
        if key_arity > out.len() || out.is_empty() {
            return Err(crate::RelationalError::BadKeyArity {
                key_arity,
                arity: out.len(),
            });
        }
        Ok(Schema::new(out, key_arity))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i < self.key_arity {
                write!(f, "*{a}")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(AttrType::U32.byte_width(), 4);
        assert_eq!(AttrType::U64.byte_width(), 8);
        assert_eq!(AttrType::F32.byte_width(), 4);
        assert_eq!(AttrType::Bool.byte_width(), 1);
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::U32(17),
            Value::U64(u64::MAX),
            Value::F32(-2.5),
            Value::Bool(true),
        ] {
            let w = v.encode();
            assert_eq!(Value::decode(w, v.attr_type()), v);
        }
    }

    #[test]
    fn float_total_order() {
        let a = Value::F32(-1.0).encode();
        let b = Value::F32(2.0).encode();
        assert_eq!(compare_words(a, b, AttrType::F32), std::cmp::Ordering::Less);
    }

    #[test]
    fn schema_tuple_bytes() {
        let s = Schema::new(vec![AttrType::U32; 4], 1);
        assert_eq!(s.tuple_bytes(), 16);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.key_arity(), 1);
    }

    #[test]
    fn schema_project() {
        let s = Schema::new(vec![AttrType::U32, AttrType::Bool, AttrType::F32], 1);
        let p = s.project(&[0, 2], 1).unwrap();
        assert_eq!(p.attrs(), &[AttrType::U32, AttrType::F32]);
        assert!(s.project(&[5], 1).is_err());
        assert!(s.project(&[0], 2).is_err());
    }

    #[test]
    #[should_panic(expected = "key arity")]
    fn schema_bad_key_panics() {
        let _ = Schema::new(vec![AttrType::U32], 2);
    }
}
