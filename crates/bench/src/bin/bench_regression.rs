//! Diff freshly generated `BENCH_*.json` documents against the committed
//! baselines and fail CI on regression.
//!
//! ```bash
//! cargo run --release -p kw-bench --bin bench_regression -- \
//!     --baseline-dir bench_results/baselines --fresh-dir bench_results
//! ```
//!
//! Every `*.json` under the baseline directory must have a fresh
//! counterpart. Documents are compared leaf-by-leaf with a direction
//! inferred from the metric name:
//!
//! * keys ending in `_seconds` are lower-is-better — a fresh value more
//!   than `tolerance` above the baseline is a regression;
//! * throughputs and gains (`throughput_qps`, `achieved_qps`,
//!   `saturation_offered_qps`, `speedup_vs_serial`, `fusion_gain`,
//!   `p99_gain`) and keys under `engine_utilization` are higher-is-better;
//! * structural integers (`queries`, `tuples_per_query`, `arrivals`,
//!   `completed`, cache counters, seeds) and every string (bottleneck
//!   classifications!) must match exactly;
//! * failure counts (`quarantined`, `failed`, `cache_evictions`) and
//!   arena churn (`*_alloc_spans`, `*_free_spans`, `spills`) are
//!   lower-is-better; arena byte envelopes and sub-allocation counts are
//!   exact;
//! * all other numbers are two-sided: any relative drift beyond
//!   `tolerance` fails, in either direction.
//!
//! Extra keys in the fresh document are allowed (new metrics don't break
//! old baselines); keys missing from the fresh document are failures.

use std::path::Path;

use kw_gpu_sim::{parse_json, JsonValue};

/// Default relative tolerance for numeric drift.
const DEFAULT_TOLERANCE: f64 = 0.05;
/// Absolute slack so zero-valued baselines don't demand exact zeros.
const EPS: f64 = 1e-12;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| default.to_string())
    };
    let baseline_dir = get("--baseline-dir", "bench_results/baselines");
    let fresh_dir = get("--fresh-dir", "bench_results");
    let tolerance: f64 = get("--tolerance", "").parse().unwrap_or(DEFAULT_TOLERANCE);

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    let entries = match std::fs::read_dir(&baseline_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_regression: cannot read baseline dir {baseline_dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("bench_regression: no *.json baselines under {baseline_dir}");
        std::process::exit(1);
    }

    for name in &names {
        let base_path = Path::new(&baseline_dir).join(name);
        let fresh_path = Path::new(&fresh_dir).join(name);
        let base_text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{name}: cannot read baseline: {e}"));
                continue;
            }
        };
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!(
                    "{name}: missing fresh result {}: {e}",
                    fresh_path.display()
                ));
                continue;
            }
        };
        let base = match parse_json(&base_text) {
            Ok(v) => v,
            Err(e) => {
                failures.push(format!("{name}: baseline does not parse: {e}"));
                continue;
            }
        };
        let fresh = match parse_json(&fresh_text) {
            Ok(v) => v,
            Err(e) => {
                failures.push(format!("{name}: fresh result does not parse: {e}"));
                continue;
            }
        };
        let before = failures.len();
        let leaves = compare(name, &base, &fresh, tolerance, &mut failures);
        compared += leaves;
        println!(
            "  {name}: {leaves} leaves compared, {} failures",
            failures.len() - before
        );
    }

    if failures.is_empty() {
        println!(
            "bench_regression: OK — {} files, {compared} leaves within {tolerance:.0}% \
             (or exact where required)",
            names.len(),
            tolerance = tolerance * 100.0
        );
    } else {
        eprintln!("bench_regression: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// How a numeric metric is allowed to drift.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    /// Fails only when fresh is worse = larger (times).
    LowerIsBetter,
    /// Fails only when fresh is worse = smaller (throughputs, speedups).
    HigherIsBetter,
    /// Structural value: must match exactly.
    Exact,
    /// Any drift beyond tolerance fails.
    TwoSided,
}

/// Classify a leaf by its path (`rows[0].latency_p95_seconds`, ...).
fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    if leaf.ends_with("_seconds") {
        return Direction::LowerIsBetter;
    }
    if leaf == "throughput_qps"
        || leaf == "goodput_qps"
        || leaf == "achieved_qps"
        || leaf == "saturation_offered_qps"
        || leaf == "speedup_vs_serial"
        || leaf == "fusion_gain"
        || leaf == "p99_gain"
        || path.contains("engine_utilization")
    {
        return Direction::HigherIsBetter;
    }
    if leaf == "quarantined" || leaf == "failed" || leaf == "cache_evictions" {
        return Direction::LowerIsBetter;
    }
    // Scratch-arena churn: alloc/free span counts and reservation spills
    // are the churn the arena exists to remove — they may shrink but never
    // grow past the committed O(1) baseline.
    if leaf.ends_with("_alloc_spans") || leaf.ends_with("_free_spans") || leaf == "spills" {
        return Direction::LowerIsBetter;
    }
    // The device alloc/free round trips the arena absorbed may not shrink.
    if leaf == "saved_alloc_pairs" {
        return Direction::HigherIsBetter;
    }
    if leaf == "queries"
        || leaf == "tuples_per_query"
        || leaf == "tuples_per_input"
        || leaf == "waves"
        || leaf == "input_bytes"
        || leaf == "device_bytes"
        || leaf == "arrivals"
        || leaf == "shapes"
        || leaf == "completed"
        || leaf == "dispatches"
        || leaf == "cache_hits"
        || leaf == "cache_misses"
        || leaf == "seed"
        || leaf == "fused_sub_allocs"
        || leaf == "unfused_sub_allocs"
        || leaf == "reservation_bytes"
        || leaf == "high_water_bytes"
    {
        return Direction::Exact;
    }
    // Out-of-core chunk counts: a coarser decomposition (fewer chunks) is
    // fine, needing *more* chunks than the baseline for the same workload
    // means per-chunk footprints grew.
    if leaf == "chunks" {
        return Direction::LowerIsBetter;
    }
    Direction::TwoSided
}

/// Compare `fresh` against `base` recursively; returns the number of leaf
/// values checked and appends any regressions to `failures`.
fn compare(
    path: &str,
    base: &JsonValue,
    fresh: &JsonValue,
    tol: f64,
    failures: &mut Vec<String>,
) -> usize {
    match (base, fresh) {
        (JsonValue::Object(base_entries), JsonValue::Object(_)) => {
            let mut n = 0;
            for (key, bv) in base_entries {
                match fresh.get(key) {
                    Some(fv) => n += compare(&format!("{path}.{key}"), bv, fv, tol, failures),
                    None => failures.push(format!("{path}.{key}: missing from fresh result")),
                }
            }
            n
        }
        (JsonValue::Array(bs), JsonValue::Array(fs)) => {
            if bs.len() != fs.len() {
                failures.push(format!(
                    "{path}: array length changed {} -> {}",
                    bs.len(),
                    fs.len()
                ));
                return 0;
            }
            bs.iter()
                .zip(fs)
                .enumerate()
                .map(|(i, (b, f))| compare(&format!("{path}[{i}]"), b, f, tol, failures))
                .sum()
        }
        (JsonValue::Number(b), JsonValue::Number(f)) => {
            let slack = tol * b.abs() + EPS;
            let bad = match direction(path) {
                Direction::LowerIsBetter => *f > b + slack,
                Direction::HigherIsBetter => *f < b - slack,
                Direction::Exact => f != b,
                Direction::TwoSided => (f - b).abs() > slack,
            };
            if bad {
                failures.push(format!(
                    "{path}: {b} -> {f} ({:?}, tolerance {tol})",
                    direction(path)
                ));
            }
            1
        }
        (JsonValue::Str(b), JsonValue::Str(f)) => {
            if b != f {
                failures.push(format!("{path}: \"{b}\" -> \"{f}\" (strings must match)"));
            }
            1
        }
        (JsonValue::Bool(b), JsonValue::Bool(f)) => {
            if b != f {
                failures.push(format!("{path}: {b} -> {f}"));
            }
            1
        }
        (JsonValue::Null, JsonValue::Null) => 1,
        _ => {
            failures.push(format!("{path}: type changed"));
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff(base: &str, fresh: &str) -> Vec<String> {
        let mut failures = Vec::new();
        compare(
            "doc",
            &parse_json(base).unwrap(),
            &parse_json(fresh).unwrap(),
            0.05,
            &mut failures,
        );
        failures
    }

    #[test]
    fn seconds_regress_only_upward() {
        assert!(diff("{\"a_seconds\": 1.0}", "{\"a_seconds\": 1.04}").is_empty());
        assert!(diff("{\"a_seconds\": 1.0}", "{\"a_seconds\": 0.5}").is_empty());
        assert_eq!(
            diff("{\"a_seconds\": 1.0}", "{\"a_seconds\": 1.2}").len(),
            1
        );
    }

    #[test]
    fn throughput_regresses_only_downward() {
        assert!(diff("{\"throughput_qps\": 100}", "{\"throughput_qps\": 300}").is_empty());
        assert_eq!(
            diff("{\"throughput_qps\": 100}", "{\"throughput_qps\": 90}").len(),
            1
        );
    }

    #[test]
    fn engine_utilization_is_higher_is_better() {
        let base = "{\"rows\": [{\"engine_utilization\": {\"compute0\": 0.8}}]}";
        let worse = "{\"rows\": [{\"engine_utilization\": {\"compute0\": 0.5}}]}";
        assert!(diff(base, base).is_empty());
        assert_eq!(diff(base, worse).len(), 1);
    }

    #[test]
    fn strings_and_structure_must_match_exactly() {
        assert_eq!(
            diff(
                "{\"bottleneck\": \"transfer\"}",
                "{\"bottleneck\": \"launch\"}"
            )
            .len(),
            1
        );
        assert_eq!(diff("{\"queries\": 4}", "{\"queries\": 5}").len(), 1);
        assert_eq!(diff("{\"rows\": [1, 2]}", "{\"rows\": [1]}").len(), 1);
        // A missing key fails; an extra fresh key is fine.
        assert_eq!(diff("{\"a\": 1}", "{\"b\": 1}").len(), 1);
        assert!(diff("{\"a\": 1}", "{\"a\": 1, \"b\": 2}").is_empty());
    }

    #[test]
    fn resilience_metrics_have_typed_directions() {
        // Goodput may not fall...
        assert!(diff("{\"goodput_qps\": 100}", "{\"goodput_qps\": 120}").is_empty());
        assert_eq!(
            diff("{\"goodput_qps\": 100}", "{\"goodput_qps\": 90}").len(),
            1
        );
        // ...quarantines may not rise...
        assert!(diff("{\"quarantined\": 2}", "{\"quarantined\": 0}").is_empty());
        assert_eq!(
            diff("{\"quarantined\": 0}", "{\"quarantined\": 1}").len(),
            1
        );
        // ...and the wave structure is exact.
        assert_eq!(diff("{\"waves\": 2}", "{\"waves\": 3}").len(), 1);
        assert!(diff("{\"waves\": 2}", "{\"waves\": 2}").is_empty());
    }

    #[test]
    fn out_of_core_metrics_have_typed_directions() {
        // Strategy strings are structural...
        assert_eq!(
            diff(
                "{\"strategy\": \"hash-partition\"}",
                "{\"strategy\": \"row-slice\"}"
            )
            .len(),
            1
        );
        // ...byte footprints are exact...
        assert_eq!(
            diff("{\"input_bytes\": 1024}", "{\"input_bytes\": 1025}").len(),
            1
        );
        assert_eq!(
            diff("{\"device_bytes\": 512}", "{\"device_bytes\": 256}").len(),
            1
        );
        // ...and chunk counts may shrink but not grow.
        assert!(diff("{\"chunks\": 8}", "{\"chunks\": 4}").is_empty());
        assert_eq!(diff("{\"chunks\": 8}", "{\"chunks\": 16}").len(), 1);
    }

    #[test]
    fn service_metrics_have_typed_directions() {
        // Achieved QPS and the saturation knee may not fall...
        assert!(diff("{\"achieved_qps\": 100}", "{\"achieved_qps\": 150}").is_empty());
        assert_eq!(
            diff("{\"achieved_qps\": 100}", "{\"achieved_qps\": 90}").len(),
            1
        );
        assert!(diff(
            "{\"saturation_offered_qps\": 500}",
            "{\"saturation_offered_qps\": 700}"
        )
        .is_empty());
        assert_eq!(
            diff(
                "{\"saturation_offered_qps\": 500}",
                "{\"saturation_offered_qps\": 400}"
            )
            .len(),
            1
        );
        // ...the cache's p99 gain may not shrink...
        assert!(diff("{\"p99_gain\": 2.0}", "{\"p99_gain\": 3.0}").is_empty());
        assert_eq!(diff("{\"p99_gain\": 2.0}", "{\"p99_gain\": 1.5}").len(), 1);
        // ...arrival accounting and cache counters are structural...
        for key in [
            "arrivals",
            "completed",
            "dispatches",
            "cache_hits",
            "cache_misses",
            "seed",
        ] {
            assert_eq!(
                diff(&format!("{{\"{key}\": 96}}"), &format!("{{\"{key}\": 95}}")).len(),
                1,
                "{key} must be exact"
            );
        }
        // ...failures and evictions may shrink but not grow...
        assert!(diff("{\"failed\": 2}", "{\"failed\": 0}").is_empty());
        assert_eq!(diff("{\"failed\": 0}", "{\"failed\": 1}").len(), 1);
        assert!(diff("{\"cache_evictions\": 4}", "{\"cache_evictions\": 1}").is_empty());
        assert_eq!(
            diff("{\"cache_evictions\": 1}", "{\"cache_evictions\": 4}").len(),
            1
        );
        // ...SLO verdicts are booleans and must match, and an all-failed
        // run's explicit null percentile stays null.
        assert_eq!(diff("{\"slo_met\": true}", "{\"slo_met\": false}").len(), 1);
        assert!(diff(
            "{\"total_p99_seconds\": null}",
            "{\"total_p99_seconds\": null}"
        )
        .is_empty());
    }

    #[test]
    fn arena_metrics_have_typed_directions() {
        // Span counts may shrink but never grow past the O(1) baseline...
        assert!(diff("{\"fused_alloc_spans\": 1}", "{\"fused_alloc_spans\": 1}").is_empty());
        assert_eq!(
            diff("{\"fused_alloc_spans\": 1}", "{\"fused_alloc_spans\": 7}").len(),
            1
        );
        assert_eq!(
            diff("{\"unfused_free_spans\": 1}", "{\"unfused_free_spans\": 2}").len(),
            1
        );
        // ...spills may not appear...
        assert!(diff("{\"spills\": 1}", "{\"spills\": 0}").is_empty());
        assert_eq!(diff("{\"spills\": 0}", "{\"spills\": 1}").len(), 1);
        // ...absorbed churn may not shrink...
        assert!(diff("{\"saved_alloc_pairs\": 5}", "{\"saved_alloc_pairs\": 6}").is_empty());
        assert_eq!(
            diff("{\"saved_alloc_pairs\": 5}", "{\"saved_alloc_pairs\": 4}").len(),
            1
        );
        // ...and the byte envelopes and sub-allocation counts are exact.
        for key in [
            "fused_sub_allocs",
            "unfused_sub_allocs",
            "reservation_bytes",
            "high_water_bytes",
        ] {
            assert_eq!(
                diff(&format!("{{\"{key}\": 96}}"), &format!("{{\"{key}\": 95}}")).len(),
                1,
                "{key} must be exact"
            );
        }
    }

    #[test]
    fn two_sided_drift_fails_both_ways() {
        assert!(diff("{\"launch_share\": 0.5}", "{\"launch_share\": 0.51}").is_empty());
        assert_eq!(
            diff("{\"launch_share\": 0.5}", "{\"launch_share\": 0.6}").len(),
            1
        );
        assert_eq!(
            diff("{\"launch_share\": 0.5}", "{\"launch_share\": 0.4}").len(),
            1
        );
    }
}
