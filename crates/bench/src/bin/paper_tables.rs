//! Regenerate every table and figure of the paper's evaluation as text.
//!
//! Each section runs behind a panic guard: a failing experiment prints a
//! diagnostic and the remaining sections still render, but the process exits
//! non-zero so CI notices.
//!
//! ```bash
//! cargo run --release -p kw-bench --bin paper_tables            # everything
//! cargo run --release -p kw-bench --bin paper_tables -- fig16   # one section
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use kw_bench::experiments::{
    ablations, arena, batch_resilience, capacity, density, fig04, fig16, fig17, fig18, fig19,
    fig20, fig21, out_of_core, overlap, platforms, profile, queries, robustness, scheduler,
    service, table2, table3, trace,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--csv <dir>` additionally writes each figure's series as CSV.
    let csv_dir: Option<std::path::PathBuf> = args.iter().position(|a| a == "--csv").map(|i| {
        let dir = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "bench_results".into());
        args.drain(i..(i + 2).min(args.len()));
        dir.into()
    });
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    // `--trace-dir <dir>` exports the trace section's span logs as
    // Perfetto-loadable Chrome trace JSON plus per-operator summaries.
    let trace_dir: Option<std::path::PathBuf> =
        args.iter().position(|a| a == "--trace-dir").map(|i| {
            let dir = args.get(i + 1).cloned().unwrap_or_else(|| "traces".into());
            args.drain(i..(i + 2).min(args.len()));
            dir.into()
        });
    let csv = |name: &str, header: &str, rows: &[String]| {
        if let Some(dir) = &csv_dir {
            let body = format!("{header}\n{}\n", rows.join("\n"));
            std::fs::write(dir.join(name), body).expect("write csv");
        }
    };

    println!("Kernel Weaver reproduction — paper tables & figures");
    println!("====================================================\n");

    let mut failed: Vec<&'static str> = Vec::new();
    // Run one guarded section: skipped unless selected, and a panic inside
    // marks it failed without killing the sections after it.
    let mut run = |names: &[&'static str], body: &dyn Fn()| {
        let wanted = args.is_empty() || args.iter().any(|a| names.iter().any(|n| n == a));
        if !wanted {
            return;
        }
        if catch_unwind(AssertUnwindSafe(body)).is_err() {
            eprintln!(
                "!! section '{}' failed; continuing with the rest\n",
                names[0]
            );
            failed.push(names[0]);
        }
    };

    run(&["table2"], &|| {
        section("Table 2 / Figure 1: experimental infrastructure (simulated)");
        print!("{}", table2::render());
        println!();
    });

    run(&["fig4", "fig04"], &|| {
        section("Figure 4: back-to-back SELECT throughput (manual fusion)");
        println!("paper: 2 fused ~1.80x, 3 fused ~2.35x\n");
        println!("{:>10}  {:>10}  {:>10}", "tuples", "2 fused", "3 fused");
        let rows = fig04::run(&[1 << 15, 1 << 17, 1 << 19]);
        for r in &rows {
            println!(
                "{:>10}  {:>9.2}x  {:>9.2}x",
                r.n, r.fused2_speedup, r.fused3_speedup
            );
        }
        csv(
            "fig04.csv",
            "tuples,fused2_speedup,fused3_speedup",
            &rows
                .iter()
                .map(|r| format!("{},{},{}", r.n, r.fused2_speedup, r.fused3_speedup))
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["fig15"], &|| {
        section("Figure 15: generated fused computation-stage code (pattern (a))");
        let w = kw_tpch::Pattern::A.build(1_024, 1);
        let compiled = kw_core::compile(&w.plan, &kw_core::WeaverConfig::default())
            .expect("compile pattern (a)");
        let fused = compiled
            .steps
            .iter()
            .find(|s| s.fused)
            .expect("pattern (a) fuses");
        print!("{}", fused.op.disassemble());
        println!();
    });

    run(&["density"], &|| {
        section("Operator density (Section 2.3: fusion improves ops/byte)");
        println!(
            "{:>5}  {:>16}  {:>16}  {:>12}",
            "pat", "baseline op/B", "fused op/B", "improvement"
        );
        for r in density::run() {
            println!(
                "{:>5}  {:>16.4}  {:>16.4}  {:>11.2}x",
                r.pattern.label(),
                r.baseline_density,
                r.fused_density,
                r.improvement()
            );
        }
        println!();
    });

    run(&["capacity"], &|| {
        section("Benefit #4 'Larger Input Data': max resident input, 64 MiB device");
        for r in capacity::run(&[kw_tpch::Pattern::A, kw_tpch::Pattern::C]) {
            println!(
                "  {}  baseline {:>9} tuples   fused {:>9} tuples   ({:.2}x larger)",
                r.pattern.label(),
                r.baseline_max_tuples,
                r.fused_max_tuples,
                r.gain()
            );
        }
        println!();
    });

    run(&["fig16"], &|| {
        section("Figure 16: GPU-compute speedup, small inputs (paper avg 2.89x)");
        let rows = fig16::run();
        for r in &rows {
            println!(
                "  {} {:<28} {:>6.2}x",
                r.pattern.label(),
                r.pattern.description(),
                r.speedup
            );
        }
        println!("  average: {:.2}x\n", fig16::average(&rows));
        csv(
            "fig16.csv",
            "pattern,speedup",
            &rows
                .iter()
                .map(|r| format!("{},{}", r.pattern.label(), r.speedup))
                .collect::<Vec<_>>(),
        );
    });

    run(&["fig17"], &|| {
        section("Figure 17: GPU global memory allocated (peak bytes)");
        println!(
            "{:>5}  {:>14}  {:>14}  {:>10}",
            "pat", "baseline", "fused", "reduction"
        );
        let rows = fig17::run();
        for r in &rows {
            println!(
                "{:>5}  {:>14}  {:>14}  {:>9.2}x",
                r.pattern.label(),
                r.baseline_bytes,
                r.fused_bytes,
                r.reduction()
            );
        }
        println!("  (paper: fused smaller everywhere except (d))\n");
        csv(
            "fig17.csv",
            "pattern,baseline_bytes,fused_bytes",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{}",
                        r.pattern.label(),
                        r.baseline_bytes,
                        r.fused_bytes
                    )
                })
                .collect::<Vec<_>>(),
        );
    });

    run(&["fig18"], &|| {
        section("Figure 18: global-memory access cycles (paper avg -59%)");
        let rows = fig18::run();
        for r in &rows {
            println!(
                "  {}  baseline {:>12}  fused {:>12}  saved {:>4.0}%",
                r.pattern.label(),
                r.baseline_cycles,
                r.fused_cycles,
                r.reduction() * 100.0
            );
        }
        println!(
            "  average reduction: {:.0}%\n",
            fig18::average_reduction(&rows) * 100.0
        );
        csv(
            "fig18.csv",
            "pattern,baseline_cycles,fused_cycles",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{}",
                        r.pattern.label(),
                        r.baseline_cycles,
                        r.fused_cycles
                    )
                })
                .collect::<Vec<_>>(),
        );
    });

    run(&["fig19"], &|| {
        section("Figure 19: -O3 over -O0 speedup, with vs without fusion");
        println!("{:>5}  {:>12}  {:>12}", "pat", "unfused", "fused");
        let rows = fig19::run();
        for r in &rows {
            println!(
                "{:>5}  {:>11.2}x  {:>11.2}x",
                r.pattern.label(),
                r.unfused_o3_speedup,
                r.fused_o3_speedup
            );
        }
        println!("  (paper: optimization helps fused kernels more, every pattern)\n");
        csv(
            "fig19.csv",
            "pattern,unfused_o3_speedup,fused_o3_speedup",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{}",
                        r.pattern.label(),
                        r.unfused_o3_speedup,
                        r.fused_o3_speedup
                    )
                })
                .collect::<Vec<_>>(),
        );
    });

    run(&["fig20"], &|| {
        section("Figure 20: two fused SELECTs vs selection ratio");
        println!("paper: ~1.28x at 10%, ~2.01x at 90%\n");
        let rows = fig20::run(&fig20::PAPER_SWEEP);
        for r in &rows {
            println!(
                "  selectivity {:>3.0}%  speedup {:>5.2}x",
                r.selectivity * 100.0,
                r.speedup
            );
        }
        csv(
            "fig20.csv",
            "selectivity,speedup",
            &rows
                .iter()
                .map(|r| format!("{},{}", r.selectivity, r.speedup))
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["fig21"], &|| {
        section("Figure 21: large inputs, PCIe-staged");
        println!(
            "{:>5}  {:>10}  {:>10}  {:>10}",
            "pat", "GPU", "PCIe", "overall"
        );
        let rows = fig21::run();
        for r in &rows {
            println!(
                "{:>5}  {:>9.2}x  {:>9.2}x  {:>9.2}x",
                r.pattern.label(),
                r.gpu_speedup,
                r.pcie_speedup,
                r.overall_speedup
            );
        }
        let (gpu, pcie, overall) = fig21::averages(&rows);
        println!(
            "  averages: GPU {gpu:.2}x  PCIe {pcie:.2}x  overall {overall:.2}x  \
             (paper: 2.91x / 2.08x / 1.98x)"
        );
        let (pc_pcie, pc_overall) = fig21::producer_consumer_averages(&rows);
        println!(
            "  producer-consumer only: PCIe {pc_pcie:.2}x  overall {pc_overall:.2}x  \
             (paper: 2.35x / 2.22x)\n"
        );
        csv(
            "fig21.csv",
            "pattern,gpu_speedup,pcie_speedup,overall_speedup",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{}",
                        r.pattern.label(),
                        r.gpu_speedup,
                        r.pcie_speedup,
                        r.overall_speedup
                    )
                })
                .collect::<Vec<_>>(),
        );
    });

    run(&["table3"], &|| {
        section("Table 3: resource usage and occupancy");
        println!(
            "{:<14}  {:>6}  {:>10}  {:>9}",
            "kernel", "regs", "shared B", "occupancy"
        );
        for r in table3::individual_operators() {
            println!(
                "{:<14}  {:>6}  {:>10}  {:>8.0}%",
                r.name,
                r.registers,
                r.shared_bytes,
                r.occupancy * 100.0
            );
        }
        println!("  --");
        for r in table3::fused_patterns() {
            println!(
                "{:<14}  {:>6}  {:>10}  {:>8.0}%",
                r.name,
                r.registers,
                r.shared_bytes,
                r.occupancy * 100.0
            );
        }
        println!();
    });

    run(&["q1", "q21", "queries"], &|| {
        section("Section 5.2: TPC-H queries (Q1 and Q21 from the paper; Q3, Q6 extra)");
        for row in queries::suite(8.0) {
            println!("  {}:", row.name);
            println!(
                "    operators {} -> {}   kernels {} -> {}",
                row.baseline_operators,
                row.fused_operators,
                row.baseline_kernels,
                row.fused_kernels
            );
            println!(
                "    overall speedup {:.2}x   SORT share {:.0}%   speedup excl. SORT {:.2}x",
                row.overall_speedup,
                row.sort_fraction * 100.0,
                row.speedup_excluding_sort
            );
        }
        println!("  (paper: Q1 1.25x overall, SORT ~71%, 3.18x excl. SORT; Q21 1.22x)\n");
    });

    run(&["platforms"], &|| {
        section("Section 2.3 / 6 extensions: platforms, rescheduling, overlap");
        println!("  Fusion on discrete GPU vs fused APU (staged, patterns a–c):");
        println!(
            "    {:<24} {:>5}  {:>8}  {:>9}  {:>14}",
            "platform", "pat", "GPU", "overall", "transfer share"
        );
        for r in platforms::run(&[
            kw_tpch::Pattern::A,
            kw_tpch::Pattern::B,
            kw_tpch::Pattern::C,
        ]) {
            println!(
                "    {:<24} {:>5}  {:>7.2}x  {:>8.2}x  {:>13.0}%",
                r.platform,
                r.pattern.label(),
                r.gpu_speedup,
                r.overall_speedup,
                r.transfer_fraction * 100.0
            );
        }
        let (plain, moved) = platforms::rescheduling_gain();
        println!(
            "  SELECT-over-SORT rescheduling (σ(sort(σ(t)))): {:.3} ms -> {:.3} ms ({:.2}x)",
            plain * 1e3,
            moved * 1e3,
            plain / moved
        );
        let (serial, overlapped) = platforms::overlap_study();
        println!(
            "  double buffering (8-chunk pipeline, pattern (a)): fusion speedup \
             {serial:.2}x serialized, {overlapped:.2}x with overlapped transfers"
        );
        let (base_ratio, fused_ratio) = platforms::cpu_comparison(kw_tpch::Pattern::A);
        println!(
            "  GPU over 4-core CPU, pattern (a): {base_ratio:.1}x unfused, {fused_ratio:.1}x \
             fused (paper band: 4x-40x, fusion widens it)\n"
        );
    });

    run(&["overlap"], &|| {
        section("Stream overlap: fusion x double buffering (chunked, staged)");
        println!(
            "{:>5}  {:>11}  {:>11}  {:>11}  {:>11}  {:>9}",
            "pat", "fused ser", "fused pipe", "base ser", "base pipe", "composed"
        );
        let rows = overlap::run(
            &[
                kw_tpch::Pattern::A,
                kw_tpch::Pattern::D,
                kw_tpch::Pattern::E,
            ],
            1 << 20,
            8,
        );
        for r in &rows {
            println!(
                "{:>5}  {:>8.3} ms  {:>8.3} ms  {:>8.3} ms  {:>8.3} ms  {:>8.2}x",
                r.pattern.label(),
                r.fused_serialized * 1e3,
                r.fused_pipelined * 1e3,
                r.base_serialized * 1e3,
                r.base_pipelined * 1e3,
                r.composed_speedup()
            );
        }
        println!("  (pipelined wallclock is the device stream graph's makespan;");
        println!("   on transfer-bound (d), fused-chunked < unfused-chunked < fused-serialized)");
        csv(
            "overlap.csv",
            "pattern,fused_serialized,fused_pipelined,base_serialized,base_pipelined",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{}",
                        r.pattern.label(),
                        r.fused_serialized,
                        r.fused_pipelined,
                        r.base_serialized,
                        r.base_pipelined
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["scheduler"], &|| {
        section("Multi-query batches: stream-scheduled concurrency on one device");
        println!(
            "{:>8}  {:>12}  {:>12}  {:>12}  {:>10}  {:>9}",
            "queries", "batch fused", "batch base", "serial fused", "thru q/s", "vs serial"
        );
        let n = 1 << 18;
        let rows = scheduler::run(n, &[2, 4, 8]);
        for r in &rows {
            println!(
                "{:>8}  {:>9.3} ms  {:>9.3} ms  {:>9.3} ms  {:>10.1}  {:>8.2}x",
                r.queries,
                r.batched_fused * 1e3,
                r.batched_unfused * 1e3,
                r.serial_fused * 1e3,
                r.throughput_qps,
                r.speedup_vs_serial()
            );
        }
        println!("  (batched-fused < batched-unfused < serial-fused on every row)");
        println!("  Per-query latency (fused batch), retry/backoff and engine utilization:");
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}  {:>7}  {:>10}  engines",
            "queries", "p50", "p95", "p99", "retries", "backoff"
        );
        for r in &rows {
            let engines = r
                .engine_utilization
                .iter()
                .map(|(name, u)| format!("{name} {:.0}%", u * 100.0))
                .collect::<Vec<_>>()
                .join("  ");
            println!(
                "{:>8}  {:>7.3} ms  {:>7.3} ms  {:>7.3} ms  {:>7}  {:>7.3} ms  {engines}",
                r.queries,
                r.latency_p50 * 1e3,
                r.latency_p95 * 1e3,
                r.latency_p99 * 1e3,
                r.retries_total,
                r.backoff_seconds * 1e3,
            );
        }
        println!("  (fault-free campaign: retries and backoff are quoted, and zero)");
        // Machine-readable results for the CI gate, always emitted; `--csv`
        // only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_scheduler.json");
        let json = scheduler::to_json(n, &rows);
        kw_gpu_sim::validate_json(&json).expect("scheduler JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_scheduler.json");
        println!("  wrote {}", path.display());
        csv(
            "scheduler.csv",
            "queries,batched_fused,batched_unfused,serial_fused,throughput_qps",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{}",
                        r.queries,
                        r.batched_fused,
                        r.batched_unfused,
                        r.serial_fused,
                        r.throughput_qps
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["service"], &|| {
        section("Open-loop service: offered load vs latency SLO, plan cache on/off");
        let n = 1 << 14;
        let arrivals = service::ARRIVALS;
        let sweeps = service::run(n, arrivals);
        for s in &sweeps {
            println!(
                "  {}: SLO {:.3} ms (={:.0}x unloaded p99), serial rate {:.0} q/s, \
                 knee {:.0} q/s",
                s.device,
                s.slo_p99_seconds * 1e3,
                service::SLO_FACTOR,
                s.base_qps,
                s.saturation_offered_qps
            );
            println!(
                "{:>10}  {:>6}  {:>12}  {:>12}  {:>8}  {:>10}  {:>10}  {:>4}",
                "offered",
                "load",
                "cached p99",
                "uncach p99",
                "gain",
                "cached q/s",
                "uncach q/s",
                "SLO"
            );
            for r in &s.rows {
                println!(
                    "{:>6.0} q/s  {:>5.1}x  {:>9.3} ms  {:>9.3} ms  {:>7.2}x  {:>10.1}  {:>10.1}  {:>4}",
                    r.offered_qps,
                    r.load_factor,
                    r.cached.total_p99_seconds * 1e3,
                    r.uncached.total_p99_seconds * 1e3,
                    r.p99_gain(),
                    r.cached.achieved_qps,
                    r.uncached.achieved_qps,
                    if r.cached.slo_met { "met" } else { "miss" }
                );
            }
            println!();
        }
        println!("  (cached p99 strictly beats uncached at every load on every device)");
        // Machine-readable results for the CI gate, always emitted; `--csv`
        // only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_service.json");
        let json = service::to_json(n, arrivals, &sweeps);
        kw_gpu_sim::validate_json(&json).expect("service JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_service.json");
        println!("  wrote {}", path.display());
        csv(
            "service.csv",
            "device,offered_qps,load_factor,cached_p99_seconds,uncached_p99_seconds,\
             p99_gain,cached_achieved_qps,uncached_achieved_qps,cached_slo_met",
            &sweeps
                .iter()
                .flat_map(|s| {
                    s.rows.iter().map(|r| {
                        format!(
                            "{},{},{},{},{},{},{},{},{}",
                            s.device,
                            r.offered_qps,
                            r.load_factor,
                            r.cached.total_p99_seconds,
                            r.uncached.total_p99_seconds,
                            r.p99_gain(),
                            r.cached.achieved_qps,
                            r.uncached.achieved_qps,
                            r.cached.slo_met
                        )
                    })
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["profile"], &|| {
        section("Bottleneck attribution: roofline profile per pattern, platform, mode");
        println!(
            "{:>5}  {:>6}  {:>9}  {:>10}  {:>9}  {:>9}  {:>8}  {:>7}  {:>7}",
            "pat",
            "plat",
            "mode",
            "bottleneck",
            "gpu busy",
            "pcie busy",
            "launch",
            "glob bw",
            "pcie bw"
        );
        let n = 1 << 16;
        let rows = profile::run(n);
        for r in &rows {
            println!(
                "{:>5}  {:>6}  {:>9}  {:>10}  {:>7.0}%   {:>7.0}%   {:>6.0}%   {:>5.0}%   {:>5.0}%",
                r.pattern,
                r.platform,
                r.mode,
                r.bottleneck,
                r.gpu_busy_fraction * 100.0,
                r.pcie_busy_fraction * 100.0,
                r.launch_share * 100.0,
                r.global_bw_utilization * 100.0,
                r.pcie_bw_utilization * 100.0
            );
        }
        println!("  (the 8 GB/s PCIe link pins every Fermi row transfer-bound;");
        println!("   removing it — the paper's fused APU — exposes the next roofline)");
        // Machine-readable results for the regression gate, always emitted;
        // `--csv` only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_profile.json");
        let json = profile::to_json(n, &rows);
        kw_gpu_sim::validate_json(&json).expect("profile JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_profile.json");
        println!("  wrote {}", path.display());
        csv(
            "profile.csv",
            "pattern,platform,mode,bottleneck,gpu_busy_fraction,pcie_busy_fraction,launch_share",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        r.pattern,
                        r.platform,
                        r.mode,
                        r.bottleneck,
                        r.gpu_busy_fraction,
                        r.pcie_busy_fraction,
                        r.launch_share
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["ablations"], &|| {
        section("Ablations");
        println!("  Algorithm-2 shared budget sweep, pattern (c):");
        for r in ablations::budget_sweep(&[4 << 10, 8 << 10, 16 << 10, 48 << 10]) {
            println!(
                "    {:>6} KiB budget -> {} fusion sets, speedup {:.2}x",
                r.shared_budget / 1024,
                r.fusion_sets,
                r.speedup
            );
        }
        let (on, off) = ablations::input_dependence_ablation();
        println!("  input-dependence extension, pattern (d): on {on:.2}x / off {off:.2}x");
        println!("  optimizer work on each fused kernel (O3 pass statistics):");
        for (p, s) in ablations::optimizer_pass_stats() {
            println!(
                "    {}: {} filters combined, {} steps deduplicated, {} dead removed, \
                 {} constants folded, {} barriers removed",
                p.label(),
                s.filters_combined,
                s.steps_deduplicated,
                s.dead_steps_removed,
                s.constants_folded,
                s.barriers_removed
            );
        }
        println!("  CTA size sweep, fused pattern (a):");
        for r in ablations::cta_sweep(&[32, 64, 128, 256, 512, 1024]) {
            println!(
                "    {:>5} threads/CTA -> {:.4} ms",
                r.threads_per_cta,
                r.gpu_seconds * 1e3
            );
        }
        println!();
    });

    run(&["trace"], &|| {
        section("Execution traces: fused vs unfused TPC-H Q1 (Chrome trace format)");
        let cmp = trace::q1(4.0);
        println!(
            "  {:<12}  {:>8}  {:>8}  {:>14}  {:>14}",
            "variant", "kernels", "pcie", "global bytes", "spans"
        );
        for cap in [&cmp.fused, &cmp.baseline] {
            println!(
                "  {:<12}  {:>8}  {:>8}  {:>14}  {:>14}",
                cap.name.rsplit('.').next().unwrap_or(&cap.name),
                cap.kernel_spans(),
                cap.transfer_spans(),
                cap.stats.global_bytes(),
                cap.spans.len()
            );
        }
        println!("\n  Per-operator summary ({}):", cmp.fused.name);
        for line in
            kw_gpu_sim::summary_table(&kw_gpu_sim::operator_summary(&cmp.fused.spans)).lines()
        {
            println!("    {line}");
        }
        if let Some(dir) = &trace_dir {
            let sink = kw_gpu_sim::TraceSink::new(dir).expect("create trace dir");
            for cap in [&cmp.fused, &cmp.baseline] {
                let path = sink
                    .export_spans(&cap.name, &cap.spans, &cap.stats, cap.clock_ghz)
                    .expect("export trace");
                println!(
                    "  wrote {} (open in https://ui.perfetto.dev)",
                    path.display()
                );
            }
        } else {
            println!("  (pass --trace-dir <dir> to export Perfetto-loadable JSON)");
        }
        println!();
    });

    run(&["robustness"], &|| {
        section("Resilient execution: degradation ladder and transient faults");
        println!("  Degradation ladder, pattern (a), 32Ki tuples per capacity:");
        println!(
            "    {:>12}  {:<13}  {:<13}  {:>9}  {:>9}",
            "capacity B", "fused mode", "base mode", "fused ms", "base ms"
        );
        let rows = match robustness::run_ladder(1 << 15) {
            Ok(rows) => rows,
            Err(e) => {
                // A typed sweep error skips the table with a warning instead
                // of panicking mid-sweep (the old unwrap behaviour).
                eprintln!("  !! ladder sweep skipped: {e}");
                Vec::new()
            }
        };
        for r in &rows {
            println!(
                "    {:>12}  {:<13}  {:<13}  {:>9.4}  {:>9.4}",
                r.capacity,
                r.fused_mode.to_string(),
                r.baseline_mode.to_string(),
                r.fused_seconds * 1e3,
                r.baseline_seconds * 1e3
            );
        }
        csv(
            "robustness_ladder.csv",
            "capacity,fused_mode,baseline_mode,fused_seconds,baseline_seconds",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{}",
                        r.capacity,
                        r.fused_mode,
                        r.baseline_mode,
                        r.fused_seconds,
                        r.baseline_seconds
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!("  (fusion's smaller footprint stays Resident at capacities that");
        println!("   already pushed the baseline down the ladder)");
        println!("  Transient-fault sweep, pattern (a), 16Ki tuples, full device:");
        println!(
            "    {:>6}  {:>8}  {:>8}  {:>10}  {:>10}",
            "rate", "f.retry", "b.retry", "fused ms", "base ms"
        );
        let rows = match robustness::run_faults(1 << 14, &robustness::FAULT_RATES) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("  !! fault sweep skipped: {e}");
                Vec::new()
            }
        };
        for r in &rows {
            println!(
                "    {:>5.0}%  {:>8}  {:>8}  {:>10.4}  {:>10.4}",
                r.rate * 100.0,
                r.fused_retries,
                r.baseline_retries,
                r.fused_seconds * 1e3,
                r.baseline_seconds * 1e3
            );
        }
        csv(
            "robustness_faults.csv",
            "rate,fused_retries,baseline_retries,fused_gpu_seconds,baseline_gpu_seconds,\
             fused_seconds,baseline_seconds",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        r.rate,
                        r.fused_retries,
                        r.baseline_retries,
                        r.fused_gpu_seconds,
                        r.baseline_gpu_seconds,
                        r.fused_seconds,
                        r.baseline_seconds
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!("  (every row produced identical outputs; retries and backoff are");
        println!("   reported by the resilient driver, never silently absorbed)");
        println!();
    });

    run(&["batch_resilience"], &|| {
        section("Batch resilience: fault rate x batch size on an oversubscribed device");
        let n = 1 << 14;
        println!(
            "  {n} tuples/query, one {}x whale per batch, device sized so the heaviest",
            batch_resilience::WHALE_FACTOR
        );
        println!("  normal query fits a wave alone and the whale fits none\n");
        println!(
            "{:>6}  {:>7}  {:>5}  {:>5}  {:>7}  {:>8}  {:>6}  {:>7}  {:>10}  {:>10}  {:>10}",
            "rate",
            "queries",
            "waves",
            "done",
            "retried",
            "degraded",
            "quar",
            "retries",
            "backoff",
            "goodput",
            "p99"
        );
        let rows = batch_resilience::run(
            n,
            &batch_resilience::FAULT_RATES,
            &batch_resilience::BATCH_SIZES,
        );
        for r in &rows {
            assert!(
                batch_resilience::taxonomy_is_total(r),
                "outcome taxonomy must account for every query: {r:?}"
            );
            println!(
                "{:>5.0}%  {:>7}  {:>5}  {:>5}  {:>7}  {:>8}  {:>6}  {:>7}  {:>7.3} ms  {:>6.1} q/s  {:>7.3} ms",
                r.fault_rate * 100.0,
                r.queries,
                r.waves,
                r.completed,
                r.retried,
                r.degraded,
                r.quarantined,
                r.retries_total,
                r.backoff_seconds * 1e3,
                r.goodput_qps,
                r.latency_p99_seconds * 1e3,
            );
        }
        println!("  (admission waves absorb the oversubscription, the whale degrades");
        println!("   down the ladder, and faults cost retries/backoff — not the batch)");
        // Machine-readable results for the CI gate, always emitted; `--csv`
        // only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_batch_resilience.json");
        let json = batch_resilience::to_json(n, &rows);
        kw_gpu_sim::validate_json(&json).expect("batch_resilience JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_batch_resilience.json");
        println!("  wrote {}", path.display());
        csv(
            "batch_resilience.csv",
            "fault_rate,queries,waves,completed,retried,degraded,quarantined,\
             retries_total,backoff_seconds,goodput_qps,makespan_seconds,latency_p99_seconds",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{}",
                        r.fault_rate,
                        r.queries,
                        r.waves,
                        r.completed,
                        r.retried,
                        r.degraded,
                        r.quarantined,
                        r.retries_total,
                        r.backoff_seconds,
                        r.goodput_qps,
                        r.makespan_seconds,
                        r.latency_p99_seconds
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["out_of_core"], &|| {
        section("Out-of-core chunking: paper patterns on a device below their inputs");
        let n = 1 << 13;
        println!(
            "  {n} tuples/input; device capped at half of min(input footprint, staged\n  \
             peak) so the ladder must pick a chunk strategy; outputs byte-checked\n  \
             against resident execution on an oversized device\n"
        );
        println!(
            "{:>6}  {:>18}  {:>10}  {:>10}  {:>6}  {:>10}  {:>10}  {:>6}",
            "pat", "strategy", "input", "device", "chunks", "fused", "unfused", "gain"
        );
        let rows = out_of_core::run(n);
        for r in &rows {
            println!(
                "{:>6}  {:>18}  {:>7} KiB  {:>7} KiB  {:>6}  {:>7.3} ms  {:>7.3} ms  {:>5.2}x",
                r.pattern,
                r.strategy,
                r.input_bytes >> 10,
                r.device_bytes >> 10,
                r.chunks,
                r.fused_seconds * 1e3,
                r.unfused_seconds * 1e3,
                r.fusion_gain,
            );
        }
        println!("  (joins hash-partition, aggregates merge partials, selects row-slice —");
        println!("   no pattern quarantines for being larger than the device)");
        // Machine-readable results for the CI gate, always emitted; `--csv`
        // only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_out_of_core.json");
        let json = out_of_core::to_json(n, &rows);
        kw_gpu_sim::validate_json(&json).expect("out_of_core JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_out_of_core.json");
        println!("  wrote {}", path.display());
        csv(
            "out_of_core.csv",
            "pattern,strategy,input_bytes,device_bytes,chunks,\
             fused_seconds,unfused_seconds,fusion_gain",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{},{}",
                        r.pattern,
                        r.strategy,
                        r.input_bytes,
                        r.device_bytes,
                        r.chunks,
                        r.fused_seconds,
                        r.unfused_seconds,
                        r.fusion_gain
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    run(&["arena"], &|| {
        section("Scratch arena: alloc churn removed from fused/unfused pipelines");
        let n = 1 << 14;
        println!("  {n} tuples/input; every buffer routed through one upfront");
        println!("  reservation — Alloc/Free spans stay O(1) per plan\n");
        println!(
            "{:>6}  {:>11}  {:>11}  {:>9}  {:>9}  {:>12}  {:>12}  {:>6}  {:>10}  {:>10}",
            "pat",
            "f alloc/fr",
            "u alloc/fr",
            "f suball",
            "u suball",
            "reserved",
            "high-water",
            "spills",
            "fused",
            "unfused"
        );
        let rows = arena::run(n);
        for r in &rows {
            println!(
                "{:>6}  {:>5}/{:<5}  {:>5}/{:<5}  {:>9}  {:>9}  {:>8} KiB  {:>8} KiB  {:>6}  {:>7.3} ms  {:>7.3} ms",
                r.pattern,
                r.fused_alloc_spans,
                r.fused_free_spans,
                r.unfused_alloc_spans,
                r.unfused_free_spans,
                r.fused_sub_allocs,
                r.unfused_sub_allocs,
                r.reservation_bytes >> 10,
                r.high_water_bytes >> 10,
                r.spills,
                r.fused_seconds * 1e3,
                r.unfused_seconds * 1e3,
            );
        }
        println!("  (sub-allocations are served span-free from the reservation;");
        println!("   each used to be a tracked device alloc/free round trip)");
        // Machine-readable results for the CI gate, always emitted; `--csv`
        // only redirects where they land.
        let dir = csv_dir.clone().unwrap_or_else(|| "bench_results".into());
        std::fs::create_dir_all(&dir).expect("create bench_results dir");
        let path = dir.join("BENCH_arena.json");
        let json = arena::to_json(n, &rows);
        kw_gpu_sim::validate_json(&json).expect("arena JSON must parse");
        std::fs::write(&path, json).expect("write BENCH_arena.json");
        println!("  wrote {}", path.display());
        csv(
            "arena.csv",
            "pattern,fused_alloc_spans,unfused_alloc_spans,fused_sub_allocs,\
             unfused_sub_allocs,reservation_bytes,high_water_bytes,spills,\
             fused_seconds,unfused_seconds",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{}",
                        r.pattern,
                        r.fused_alloc_spans,
                        r.unfused_alloc_spans,
                        r.fused_sub_allocs,
                        r.unfused_sub_allocs,
                        r.reservation_bytes,
                        r.high_water_bytes,
                        r.spills,
                        r.fused_seconds,
                        r.unfused_seconds
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    });

    if !failed.is_empty() {
        eprintln!("failed sections: {}", failed.join(", "));
        std::process::exit(1);
    }
}

fn section(title: &str) {
    println!("{title}");
    println!("{}", "-".repeat(title.len()));
}
