//! Fusion × double-buffering composition study (the paper's §VII remark
//! that transfer/compute overlap is the orthogonal technique fusion
//! composes with, now measurable because overlap is a device-level stream
//! mechanism rather than a side formula).
//!
//! For each elementwise pattern at a large staged input, the chunked
//! executor runs fused and unfused; the [`kw_core::ChunkedReport`] carries
//! both the serialized wallclock (no engine overlap) and the pipelined
//! wallclock (stream/event graph makespan). Overlap saves wallclock on
//! every plan, and fusion still wins under overlap. On transfer-bound
//! patterns (D: many consumers of one staged input, little compute to
//! fuse away) the composition exhibits the full ordering
//! **fused-chunked < unfused-chunked < fused-serialized** — there, overlap
//! alone beats fusion alone, and composing both beats either.

use kw_core::{ExecMode, WeaverConfig};
use kw_tpch::Pattern;

use super::SEED;

/// Serialized and pipelined wallclock for one pattern, fused and unfused.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// Pattern measured.
    pub pattern: Pattern,
    /// Tuples per input relation.
    pub n: usize,
    /// Chunk count of the double-buffered schedule.
    pub chunks: usize,
    /// Fused plan, transfers serialized against compute.
    pub fused_serialized: f64,
    /// Fused plan, stream-graph overlap.
    pub fused_pipelined: f64,
    /// Unfused plan, transfers serialized.
    pub base_serialized: f64,
    /// Unfused plan, stream-graph overlap.
    pub base_pipelined: f64,
}

impl OverlapRow {
    /// Wallclock saved by overlap on the fused plan.
    pub fn fused_overlap_gain(&self) -> f64 {
        self.fused_serialized / self.fused_pipelined
    }

    /// Wallclock saved by overlap on the unfused plan.
    pub fn base_overlap_gain(&self) -> f64 {
        self.base_serialized / self.base_pipelined
    }

    /// Fusion speedup with both plans overlapped.
    pub fn fusion_gain_pipelined(&self) -> f64 {
        self.base_pipelined / self.fused_pipelined
    }

    /// The composed win: fused + overlapped over unfused + serialized.
    pub fn composed_speedup(&self) -> f64 {
        self.base_serialized / self.fused_pipelined
    }
}

/// Run the study over `patterns` at `n` tuples per input, split into
/// `chunks` chunks, staged mode. (The campaign uses the elementwise
/// patterns (a)/(d)/(e); joins stream too nowadays, but their overlap
/// story is the `out_of_core` campaign's job.)
pub fn run(patterns: &[Pattern], n: usize, chunks: usize) -> Vec<OverlapRow> {
    patterns
        .iter()
        .map(|&pattern| {
            let w = pattern.build(n, SEED);
            let exec = |fusion: bool| {
                let config = WeaverConfig {
                    fusion,
                    // Staged per-chunk execution: the out-of-core setting
                    // where both fusion and double buffering matter.
                    mode: ExecMode::Staged,
                    ..WeaverConfig::default()
                };
                let mut dev = super::device();
                let report =
                    kw_core::execute_chunked(&w.plan, &w.bindings(), &mut dev, &config, chunks)
                        .expect("chunked run");
                // The reported pipelined wallclock is the device stream
                // graph's makespan, and the streamed spans reconcile.
                kw_gpu_sim::reconcile(dev.spans(), dev.stats()).expect("streamed trace reconciles");
                report
            };
            let fused = exec(true);
            let base = exec(false);
            assert_eq!(
                fused.outputs, base.outputs,
                "{pattern:?}: fused and baseline disagree"
            );
            OverlapRow {
                pattern,
                n,
                chunks,
                fused_serialized: fused.serialized_seconds,
                fused_pipelined: fused.pipelined_seconds,
                base_serialized: base.serialized_seconds,
                base_pipelined: base.pipelined_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_N;

    #[test]
    fn overlap_saves_wallclock_on_every_plan() {
        for row in run(&[Pattern::A, Pattern::D, Pattern::E], DEFAULT_N, 8) {
            // Acceptance: pipelined < serialized for both fused and unfused.
            assert!(
                row.fused_pipelined < row.fused_serialized,
                "fused overlap must save wallclock: {row:?}"
            );
            assert!(
                row.base_pipelined < row.base_serialized,
                "unfused overlap must save wallclock: {row:?}"
            );
            // Fusion's win survives overlap: the techniques compose.
            assert!(
                row.fused_pipelined < row.base_pipelined,
                "fusion must still win under overlap: {row:?}"
            );
        }
    }

    #[test]
    fn transfer_bound_pattern_shows_full_ordering() {
        // Pattern D stages one input into many cheap SELECTs — transfers
        // dominate, so hiding them behind compute buys more than fusing
        // the little compute there is. The headline composition:
        // fused-chunked < unfused-chunked < fused-serialized.
        let row = &run(&[Pattern::D], DEFAULT_N, 8)[0];
        assert!(
            row.fused_pipelined < row.base_pipelined,
            "composition must beat overlap alone: {row:?}"
        );
        assert!(
            row.base_pipelined < row.fused_serialized,
            "overlap alone must beat fusion alone here: {row:?}"
        );
        assert!(
            row.composed_speedup() > row.base_overlap_gain(),
            "composed win must exceed either single technique: {row:?}"
        );
        assert!(
            row.composed_speedup() > row.base_serialized / row.fused_serialized,
            "composed win must exceed the pure fusion win: {row:?}"
        );
    }
}
