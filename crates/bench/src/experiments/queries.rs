//! Section 5.2: the real TPC-H queries Q1 and Q21.
//!
//! Paper results: Q1's SORT (inside the grouped aggregation) takes ≈ 71% of
//! execution time and cannot be fused; fusing the rest still yields ≈ 1.25×
//! overall and ≈ 3.18× on the non-SORT operators. Q21, built on JOINs,
//! gains ≈ 1.22× overall.

use kw_gpu_sim::cycles_for_label;
use kw_tpch::Workload;

use super::{device, resident, SEED};

/// Measurements for one query.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Query name.
    pub name: String,
    /// Overall GPU speedup from fusion.
    pub overall_speedup: f64,
    /// Fraction of baseline GPU cycles spent in SORT kernels.
    pub sort_fraction: f64,
    /// Speedup over the non-SORT portion only.
    pub speedup_excluding_sort: f64,
    /// Operators before fusion.
    pub baseline_operators: usize,
    /// Operators after fusion.
    pub fused_operators: usize,
    /// Kernels launched by the baseline.
    pub baseline_kernels: u64,
    /// Kernels launched fused.
    pub fused_kernels: u64,
}

/// Run one query fused vs baseline and collect the Section 5.2 metrics.
pub fn run_query(workload: &Workload) -> QueryRow {
    let mut fused_dev = device();
    let fused = workload
        .run(&mut fused_dev, &resident())
        .expect("fused query");
    let fused_sort = cycles_for_label(fused_dev.timeline(), "sort");

    let mut base_dev = device();
    let base = workload
        .run(&mut base_dev, &resident().baseline())
        .expect("baseline query");
    let base_sort = cycles_for_label(base_dev.timeline(), "sort");

    assert_eq!(fused.outputs, base.outputs, "{} mismatch", workload.name);

    let base_cycles = base.stats.gpu_cycles;
    let fused_cycles = fused.stats.gpu_cycles;
    QueryRow {
        name: workload.name.clone(),
        overall_speedup: base_cycles as f64 / fused_cycles as f64,
        sort_fraction: base_sort as f64 / base_cycles as f64,
        speedup_excluding_sort: (base_cycles - base_sort) as f64
            / (fused_cycles - fused_sort) as f64,
        baseline_operators: base.operator_count,
        fused_operators: fused.operator_count,
        baseline_kernels: base.stats.kernel_launches,
        fused_kernels: fused.stats.kernel_launches,
    }
}

/// Q1 at the given scale.
pub fn q1(scale: f64) -> QueryRow {
    run_query(&kw_tpch::q1(scale, SEED))
}

/// Q21 at the given scale.
pub fn q21(scale: f64) -> QueryRow {
    run_query(&kw_tpch::q21(scale, SEED))
}

/// The wider query suite (Q1, Q3, Q6, Q21) backing the paper's closing
/// claim that the fused patterns "appear very frequently in all 22 queries
/// of TPC-H so that they can all get similar speedup from kernel fusion".
pub fn suite(scale: f64) -> Vec<QueryRow> {
    vec![
        run_query(&kw_tpch::q1(scale, SEED)),
        run_query(&kw_tpch::q3(scale, SEED)),
        run_query(&kw_tpch::q6(scale, SEED)),
        run_query(&kw_tpch::q21(scale, SEED)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_shapes() {
        let r = q1(8.0);
        assert!(
            r.sort_fraction > 0.5 && r.sort_fraction < 0.95,
            "paper: ~71%, got {:.0}%",
            r.sort_fraction * 100.0
        );
        assert!(
            r.overall_speedup > 1.05 && r.overall_speedup < 2.0,
            "paper: ~1.25x, got {:.2}x",
            r.overall_speedup
        );
        assert!(
            r.speedup_excluding_sort > 1.5,
            "paper: ~3.18x excluding SORT, got {:.2}x",
            r.speedup_excluding_sort
        );
        assert!(r.fused_operators < r.baseline_operators);
    }

    #[test]
    fn suite_gets_similar_speedups() {
        // The paper's closing generalization: every query gains, and the
        // non-SORT (fusible) portions gain substantially.
        let rows = suite(4.0);
        for r in &rows {
            assert!(
                r.overall_speedup > 1.05,
                "{} should speed up: {:.2}x",
                r.name,
                r.overall_speedup
            );
            assert!(
                r.speedup_excluding_sort > 1.3,
                "{} fusible portion: {:.2}x",
                r.name,
                r.speedup_excluding_sort
            );
            assert!(r.fused_kernels < r.baseline_kernels, "{}", r.name);
        }
    }

    #[test]
    fn q21_shapes() {
        let r = q21(8.0);
        assert!(
            r.overall_speedup > 1.05 && r.overall_speedup < 2.5,
            "paper: ~1.22x, got {:.2}x",
            r.overall_speedup
        );
        assert!(r.fused_kernels < r.baseline_kernels);
    }
}
