//! One module per table/figure of the paper's evaluation.
//!
//! Each experiment returns structured rows so the `paper_tables` binary,
//! the Criterion benches and the integration tests share one
//! implementation. `EXPERIMENTS.md` records the paper-vs-measured numbers.

pub mod ablations;
pub mod arena;
pub mod batch_resilience;
pub mod capacity;
pub mod density;
pub mod fig04;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod out_of_core;
pub mod overlap;
pub mod platforms;
pub mod profile;
pub mod queries;
pub mod robustness;
pub mod scheduler;
pub mod service;
pub mod table2;
pub mod table3;
pub mod trace;

use kw_core::{ExecMode, PlanReport, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_tpch::Workload;

/// Default tuple count per input relation for resident-mode experiments.
pub const DEFAULT_N: usize = 1 << 20;
/// Sweep sizes averaged by the figure experiments (the paper sweeps
/// 64 MB–1 GB; the simulator's cost model is linear in size, so a smaller
/// sweep preserves every ratio).
pub const SWEEP: [usize; 3] = [1 << 16, 1 << 18, 1 << 20];
/// Workload seed.
pub const SEED: u64 = 0xC2050;

/// A fresh simulated Tesla C2050.
pub fn device() -> Device {
    Device::new(DeviceConfig::fermi_c2050())
}

/// Run `workload` fused and unfused on fresh devices, returning
/// `(fused, baseline)` reports.
pub fn run_pair(workload: &Workload, config: &WeaverConfig) -> (PlanReport, PlanReport) {
    let mut fused_dev = device();
    let fused = workload
        .run(&mut fused_dev, config)
        .expect("fused execution");
    let mut base_dev = device();
    let base = workload
        .run(&mut base_dev, &config.baseline())
        .expect("baseline execution");
    assert_eq!(
        fused.outputs, base.outputs,
        "{}: fused and baseline disagree",
        workload.name
    );
    (fused, base)
}

/// Resident-mode config (Figure 16 setup).
pub fn resident() -> WeaverConfig {
    WeaverConfig::default()
}

/// Staged-mode config (Figure 21 setup).
pub fn staged() -> WeaverConfig {
    WeaverConfig {
        mode: ExecMode::Staged,
        ..WeaverConfig::default()
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    let ln: f64 = xs.iter().map(|x| x.ln()).sum();
    (ln / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_pair_checks_outputs() {
        let w = kw_tpch::Pattern::A.build(2_000, SEED);
        let (f, b) = run_pair(&w, &resident());
        assert!(b.gpu_seconds > f.gpu_seconds);
    }
}
