//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **Resource budget (Algorithm 2)** — shrinking the shared-memory budget
//!   splits CTA-dependent fusion chains and erodes the speedup.
//! * **Input-dependence extension** — turning it off removes pattern (d)'s
//!   (modest) gains entirely.
//! * **CTA size** — the paper fixes one launch shape for all fusion
//!   candidates after sweeping configurations; the sweep shows why a
//!   mid-size CTA wins.

use kw_core::{ExecMode, ResourceBudget, WeaverConfig};
use kw_tpch::Pattern;

use super::{device, DEFAULT_N, SEED};

/// One point of the shared-memory budget ablation.
#[derive(Debug, Clone, Copy)]
pub struct BudgetRow {
    /// Shared-memory budget per CTA, bytes.
    pub shared_budget: u32,
    /// Fusion sets chosen for pattern (c).
    pub fusion_sets: usize,
    /// GPU speedup over the unfused baseline.
    pub speedup: f64,
}

/// Sweep the Algorithm-2 shared budget on pattern (c).
pub fn budget_sweep(budgets: &[u32]) -> Vec<BudgetRow> {
    let w = Pattern::C.build(DEFAULT_N, SEED);
    let mut base_dev = device();
    let base = w
        .run(&mut base_dev, &WeaverConfig::default().baseline())
        .expect("baseline");
    budgets
        .iter()
        .map(|&shared_budget| {
            let config = WeaverConfig {
                budget: ResourceBudget {
                    max_registers_per_thread: 63,
                    max_shared_per_cta: shared_budget,
                },
                ..WeaverConfig::default()
            };
            let mut dev = device();
            let fused = w.run(&mut dev, &config).expect("budgeted run");
            BudgetRow {
                shared_budget,
                fusion_sets: fused.fusion_sets.len(),
                speedup: base.gpu_seconds / fused.gpu_seconds,
            }
        })
        .collect()
}

/// Pattern (d) with and without the input-dependence extension:
/// `(with, without)` GPU speedups.
pub fn input_dependence_ablation() -> (f64, f64) {
    let w = Pattern::D.build(DEFAULT_N, SEED);
    let mut base_dev = device();
    let base = w
        .run(&mut base_dev, &WeaverConfig::default().baseline())
        .expect("baseline");

    let mut on_dev = device();
    let on = w
        .run(&mut on_dev, &WeaverConfig::default())
        .expect("extension on");

    let off_cfg = WeaverConfig {
        input_dependence: false,
        ..WeaverConfig::default()
    };
    let mut off_dev = device();
    let off = w.run(&mut off_dev, &off_cfg).expect("extension off");

    (
        base.gpu_seconds / on.gpu_seconds,
        base.gpu_seconds / off.gpu_seconds,
    )
}

/// What the O3 pipeline did to each fused pattern (optimizer-scope
/// introspection for the Figure 19 narrative).
pub fn optimizer_pass_stats() -> Vec<(Pattern, kw_kernel_ir::PassStats)> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(1_024, SEED);
            let compiled =
                kw_core::compile(&w.plan, &WeaverConfig::default().baseline()).expect("compile");
            let _ = compiled;
            // Re-weave the fused kernel and collect its pass statistics.
            let groups = kw_core::find_candidates(&w.plan, kw_core::FusionOptions::default());
            let sets = kw_core::select_fusions(
                &w.plan,
                &groups[0],
                kw_core::ResourceBudget::default(),
                kw_kernel_ir::DEFAULT_THREADS_PER_CTA,
            )
            .expect("selection");
            let woven = kw_core::weave(&w.plan, &sets[0], kw_kernel_ir::DEFAULT_THREADS_PER_CTA)
                .expect("weave");
            let (_, stats) =
                kw_kernel_ir::optimize(&woven.op, kw_kernel_ir::OptLevel::O3).expect("optimize");
            (pattern, stats)
        })
        .collect()
}

/// One point of the CTA-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct CtaRow {
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Fused GPU seconds for pattern (a).
    pub gpu_seconds: f64,
}

/// Sweep threads/CTA for fused pattern (a), resident mode.
pub fn cta_sweep(sizes: &[u32]) -> Vec<CtaRow> {
    let w = Pattern::A.build(DEFAULT_N, SEED);
    sizes
        .iter()
        .map(|&threads_per_cta| {
            let config = WeaverConfig {
                threads_per_cta,
                mode: ExecMode::Resident,
                ..WeaverConfig::default()
            };
            let mut dev = device();
            let r = w.run(&mut dev, &config).expect("cta sweep run");
            CtaRow {
                threads_per_cta,
                gpu_seconds: r.gpu_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_budget_erodes_speedup() {
        let rows = budget_sweep(&[4 * 1024, 48 * 1024]);
        assert!(rows[0].fusion_sets <= rows[1].fusion_sets);
        assert!(
            rows[1].speedup > rows[0].speedup,
            "larger budget should fuse more: {rows:?}"
        );
    }

    #[test]
    fn input_dependence_extension_matters_for_pattern_d() {
        let (on, off) = input_dependence_ablation();
        assert!(on > off, "extension should help pattern (d): {on} vs {off}");
        assert!((off - 1.0).abs() < 0.05, "without it nothing fuses: {off}");
    }

    #[test]
    fn cta_sweep_has_an_interior_optimum_or_plateau() {
        let rows = cta_sweep(&[32, 256, 1024]);
        let mid = rows[1].gpu_seconds;
        assert!(
            mid <= rows[0].gpu_seconds * 1.05,
            "256 threads should not lose badly to 32: {rows:?}"
        );
        assert!(rows.iter().all(|r| r.gpu_seconds > 0.0));
    }
}
