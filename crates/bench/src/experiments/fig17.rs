//! Figure 17: GPU global memory allocated with and without kernel fusion.
//!
//! Paper result: fusion shrinks the allocation footprint everywhere except
//! pattern (d), where the fused kernel holds *two* gather outputs at once
//! and uses slightly more.

use kw_tpch::Pattern;

use super::{resident, run_pair, DEFAULT_N, SEED};

/// One pattern's Figure 17 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig17Row {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// Peak device bytes, baseline.
    pub baseline_bytes: u64,
    /// Peak device bytes, fused.
    pub fused_bytes: u64,
}

impl Fig17Row {
    /// Footprint ratio baseline/fused (>1 means fusion shrinks memory).
    pub fn reduction(&self) -> f64 {
        self.baseline_bytes as f64 / self.fused_bytes as f64
    }
}

/// Run Figure 17 over all five patterns.
pub fn run() -> Vec<Fig17Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(DEFAULT_N, SEED);
            let (fused, base) = run_pair(&w, &resident());
            Fig17Row {
                pattern,
                baseline_bytes: base.peak_device_bytes,
                fused_bytes: fused.peak_device_bytes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_shrinks_footprint_except_pattern_d() {
        let rows = run();
        for r in &rows {
            match r.pattern {
                Pattern::D => assert!(
                    r.reduction() <= 1.02,
                    "(d) should use as much or slightly more memory fused: {r:?}"
                ),
                _ => assert!(
                    r.reduction() > 1.1,
                    "{} should shrink footprint: {r:?}",
                    r.pattern.label()
                ),
            }
        }
    }
}
