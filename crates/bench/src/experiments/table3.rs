//! Table 3: per-kernel resource usage and occupancy.
//!
//! Left half: the unfused primitive-library operators. Right half: the five
//! fused patterns. Paper shape: fusion usually *raises* register and shared
//! demand and can lower occupancy (patterns (b)–(e)); fused pattern (a)
//! uses *less* shared memory than a lone SELECT because its thread-
//! dependent intermediates never touch shared memory and the PROJECT
//! shrinks the tuple buffered for compaction.

use kw_core::{compile, WeaverConfig};
use kw_gpu_sim::{occupancy, DeviceConfig, KernelResources};
use kw_kernel_ir::{estimate_resources, infer_schemas, OptLevel, DEFAULT_THREADS_PER_CTA};
use kw_primitives::{build_unfused, RaOp};
use kw_relational::{CmpOp, Expr, Predicate, Schema, Value};
use kw_tpch::Pattern;

use super::SEED;

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Operator or pattern name.
    pub name: String,
    /// Estimated registers per thread.
    pub registers: u32,
    /// Estimated shared memory per CTA, bytes.
    pub shared_bytes: u32,
    /// Occupancy on the C2050 at the default CTA size.
    pub occupancy: f64,
}

fn row(name: impl Into<String>, res: KernelResources) -> Table3Row {
    let occ = occupancy(
        &DeviceConfig::fermi_c2050(),
        DEFAULT_THREADS_PER_CTA,
        res.registers_per_thread,
        res.shared_per_cta,
    );
    Table3Row {
        name: name.into(),
        registers: res.registers_per_thread,
        shared_bytes: res.shared_per_cta,
        occupancy: occ.occupancy,
    }
}

/// Resource rows for the individual (unfused) operators.
pub fn individual_operators() -> Vec<Table3Row> {
    let s4 = Schema::uniform_u32(4);
    let ops: Vec<(&str, RaOp, Vec<Schema>)> = vec![
        (
            "PROJECT",
            RaOp::Project {
                attrs: vec![0, 1],
                key_arity: 1,
            },
            vec![s4.clone()],
        ),
        (
            "SELECT",
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(7)),
            },
            vec![s4.clone()],
        ),
        (
            "MAP",
            RaOp::Map {
                exprs: vec![Expr::attr(0), Expr::attr(1).mul(Expr::attr(2))],
                key_arity: 1,
            },
            vec![s4.clone()],
        ),
        (
            "JOIN",
            RaOp::Join { key_len: 1 },
            vec![s4.clone(), s4.clone()],
        ),
        ("PRODUCT", RaOp::Product, vec![s4.clone(), s4.clone()]),
        ("UNION", RaOp::Union, vec![s4.clone(), s4.clone()]),
        ("INTERSECT", RaOp::Intersect, vec![s4.clone(), s4.clone()]),
        ("DIFFERENCE", RaOp::Difference, vec![s4.clone(), s4.clone()]),
        ("UNIQUE", RaOp::Unique, vec![s4.clone()]),
    ];
    ops.into_iter()
        .map(|(name, op, inputs)| {
            let gpu = build_unfused(&op, &inputs, name).expect("skeleton");
            let inferred = infer_schemas(&gpu).expect("inference");
            let res = estimate_resources(&gpu, &inferred, OptLevel::O3).expect("resources");
            row(name, res)
        })
        .collect()
}

/// Resource rows for the five fused patterns.
pub fn fused_patterns() -> Vec<Table3Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(1_024, SEED);
            let compiled = compile(&w.plan, &WeaverConfig::default()).expect("compile");
            let fused = compiled
                .steps
                .iter()
                .find(|s| s.fused)
                .expect("each pattern fuses something");
            let inferred = infer_schemas(&fused.op).expect("inference");
            let res = estimate_resources(&fused.op, &inferred, OptLevel::O3).expect("resources");
            row(format!("fused {}", pattern.label()), res)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [Table3Row], name: &str) -> &'a Table3Row {
        rows.iter().find(|r| r.name.contains(name)).unwrap()
    }

    #[test]
    fn join_is_heavier_than_project() {
        let rows = individual_operators();
        let join = get(&rows, "JOIN");
        let project = get(&rows, "PROJECT");
        assert!(join.registers > project.registers);
        assert!(join.shared_bytes > project.shared_bytes);
        assert!(join.occupancy <= project.occupancy);
    }

    #[test]
    fn fused_b_uses_more_resources_than_one_join() {
        let singles = individual_operators();
        let fused = fused_patterns();
        let join = get(&singles, "JOIN");
        let b = get(&fused, "(b)");
        assert!(b.shared_bytes > join.shared_bytes, "{b:?} vs {join:?}");
        assert!(b.occupancy <= join.occupancy);
    }

    #[test]
    fn fused_a_uses_less_shared_than_one_select() {
        let singles = individual_operators();
        let fused = fused_patterns();
        let select = get(&singles, "SELECT");
        let a = get(&fused, "(a)");
        assert!(
            a.shared_bytes < select.shared_bytes,
            "pattern (a)'s PROJECT shrinks the compaction buffer: {a:?} vs {select:?}"
        );
    }

    #[test]
    fn occupancies_are_valid() {
        for r in individual_operators().iter().chain(&fused_patterns()) {
            assert!(r.occupancy > 0.0 && r.occupancy <= 1.0, "{r:?}");
            assert!(r.registers >= 10, "{r:?}");
        }
    }
}
