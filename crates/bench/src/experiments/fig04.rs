//! Figure 4: throughput of back-to-back SELECTs with and without manual
//! kernel fusion.
//!
//! Paper result: fusing two SELECTs ≈ 1.80× throughput, fusing three ≈
//! 2.35×, growing slightly with problem size (launch overheads amortize).

use kw_core::QueryPlan;
use kw_primitives::RaOp;
use kw_relational::{CmpOp, Predicate, Value};
use kw_tpch::Workload;

use super::{resident, run_pair, SEED};

/// One row of the Figure 4 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig04Row {
    /// Problem size in tuples.
    pub n: usize,
    /// Throughput ratio fused/unfused for two SELECTs.
    pub fused2_speedup: f64,
    /// Throughput ratio fused/unfused for three SELECTs.
    pub fused3_speedup: f64,
}

/// A back-to-back SELECT chain of `depth` 50%-selectivity filters.
pub fn select_chain(n: usize, depth: usize, seed: u64) -> Workload {
    let input = kw_relational::gen::micro_input(n, seed);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let mut prev = t;
    for d in 0..depth {
        prev = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(1 + (d % 3), CmpOp::Lt, Value::U32(u32::MAX / 2)),
                },
                &[prev],
            )
            .expect("chain select");
    }
    plan.mark_output(prev);
    Workload::new(
        format!("select-chain x{depth}"),
        plan,
        vec![("t".into(), input)],
    )
}

/// Run the Figure 4 sweep.
pub fn run(sizes: &[usize]) -> Vec<Fig04Row> {
    sizes
        .iter()
        .map(|&n| {
            let w2 = select_chain(n, 2, SEED);
            let (f2, b2) = run_pair(&w2, &resident());
            let w3 = select_chain(n, 3, SEED);
            let (f3, b3) = run_pair(&w3, &resident());
            Fig04Row {
                n,
                fused2_speedup: b2.gpu_seconds / f2.gpu_seconds,
                fused3_speedup: b3.gpu_seconds / f3.gpu_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_beats_two_beats_one() {
        let rows = run(&[1 << 16]);
        let r = rows[0];
        assert!(
            r.fused2_speedup > 1.3,
            "two fused selects should win: {r:?}"
        );
        assert!(
            r.fused3_speedup > r.fused2_speedup,
            "three fused selects should beat two: {r:?}"
        );
        // Paper band: 1.80x and 2.35x; accept the same ordering with
        // comparable magnitudes.
        assert!(r.fused2_speedup < 4.0 && r.fused3_speedup < 6.0);
    }
}
