//! Out-of-core chunking campaign: paper patterns on a device smaller than
//! their inputs.
//!
//! The chunk-strategy layer claims that any hash-partitionable,
//! merge-aggregable or row-sliceable plan completes on a device too small
//! for even its *inputs*, byte-identical to resident execution. This
//! campaign puts numbers on the claim with one workload per strategy:
//!
//! * **pattern (b)** — back-to-back JOINs, hash-partitioned by key;
//! * **pattern (c)** — JOINs of selected tables, also hash-partitioned
//!   (the SELECTs ride along inside each bucket pair);
//! * **pattern (d)** — SELECTs sharing one input, plain row slicing;
//! * **(agg)** — a grouped aggregate (COUNT/SUM/MIN/MAX), run as
//!   per-chunk partials merged under operator associativity.
//!
//! Each workload runs fused and unfused through [`execute_resilient`] on a
//! device capped *below* both its input footprint and its staged peak, so
//! the degradation ladder is forced onto the Chunked rung. Outputs are
//! checked byte-identical against resident execution on an oversized
//! device — out-of-core execution must never change an answer.

use kw_core::{
    admit, compile, execute_plan, execute_resilient, AdmittedMode, RetryPolicy, WeaverConfig,
};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::ops::AggFn;
use kw_relational::{Relation, Schema};
use kw_tpch::{Pattern, Workload};

use super::SEED;

/// One (workload × strategy) row of the campaign.
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure-style workload label, e.g. `"(b)"`.
    pub pattern: String,
    /// The chunk strategy the ladder selected (stringified
    /// [`kw_core::ChunkStrategy`]).
    pub strategy: String,
    /// Total bytes of the workload's input relations.
    pub input_bytes: u64,
    /// Device global-memory bytes the campaign capped the run at — always
    /// below `input_bytes`.
    pub device_bytes: u64,
    /// Chunk count the fused run finished at.
    pub chunks: usize,
    /// End-to-end seconds of the fused out-of-core run (overlap-aware,
    /// backoff included).
    pub fused_seconds: f64,
    /// End-to-end seconds of the unfused out-of-core run.
    pub unfused_seconds: f64,
    /// `unfused_seconds / fused_seconds` — fusion's speedup while
    /// chunk-streaming.
    pub fusion_gain: f64,
}

/// A grouped-aggregate workload: 4×u32 tuples whose keys fold into
/// `n / 16` groups (so cross-chunk merges actually combine partials),
/// reduced by every mergeable aggregate class at once.
pub fn aggregate_workload(n: usize, seed: u64) -> Workload {
    use kw_relational::gen::rng;
    use rand::Rng;

    let groups = (n / 16).max(1) as u64;
    let mut r = rng(seed);
    let schema = Schema::uniform_u32(4);
    let mut words = Vec::with_capacity(n * 4);
    for i in 0..n {
        words.push(i as u64 % groups);
        for _ in 0..3 {
            words.push(u64::from(r.gen::<u32>()));
        }
    }
    let input = Relation::from_words(schema.clone(), words).expect("aggregate input");

    let mut plan = kw_core::QueryPlan::new();
    let t = plan.add_input("t", schema);
    let agg = plan
        .add_op(
            RaOp::Aggregate {
                group_by: vec![0],
                aggs: vec![AggFn::Count, AggFn::Sum(1), AggFn::Min(2), AggFn::Max(3)],
            },
            &[t],
        )
        .expect("aggregate type-checks");
    plan.mark_output(agg);
    Workload::new("pattern (agg)", plan, vec![("t".into(), input)])
}

/// The campaign's workloads at `n` tuples per input, with their labels.
fn workloads(n: usize) -> Vec<(String, Workload)> {
    vec![
        ("(b)".into(), Pattern::B.build(n, SEED)),
        ("(c)".into(), Pattern::C.build(n, SEED)),
        ("(d)".into(), Pattern::D.build(n, SEED)),
        ("(agg)".into(), aggregate_workload(n, SEED)),
    ]
}

/// Device capacity that forces `w` out of core: half of the smaller of its
/// input footprint and its fused staged peak, so neither Resident nor
/// Staged can fit and the ladder must select a chunk strategy.
pub fn capacity_for(w: &Workload) -> u64 {
    let bindings = w.bindings();
    let input_bytes: u64 = bindings.iter().map(|(_, r)| r.byte_size() as u64).sum();
    let compiled = compile(&w.plan, &WeaverConfig::default()).expect("campaign plans compile");
    let report = admit(&w.plan, &compiled, &bindings, u64::MAX).expect("oversized admission");
    report.staged_peak.min(input_bytes) / 2
}

fn run_one(label: &str, w: &Workload) -> Row {
    let bindings = w.bindings();
    let input_bytes: u64 = bindings.iter().map(|(_, r)| r.byte_size() as u64).sum();
    let device_bytes = capacity_for(w);
    assert!(
        device_bytes < input_bytes,
        "{label}: campaign device must be smaller than the inputs"
    );

    // Resident oracle on an oversized device.
    let mut big = Device::new(DeviceConfig::fermi_c2050());
    let oracle = execute_plan(&w.plan, &bindings, &mut big, &WeaverConfig::default())
        .expect("oracle run on an oversized device");

    let small = || {
        Device::new(DeviceConfig {
            global_mem_bytes: device_bytes,
            ..DeviceConfig::fermi_c2050()
        })
    };
    let run = |config: &WeaverConfig| {
        let mut dev = small();
        let report = execute_resilient(
            &w.plan,
            &bindings,
            &mut dev,
            config,
            &RetryPolicy::default(),
        )
        .unwrap_or_else(|e| panic!("{label}: out-of-core run failed: {e}"));
        assert_eq!(
            report.outputs, oracle.outputs,
            "{label}: out-of-core outputs diverged from resident execution"
        );
        assert_eq!(dev.memory().in_use(), 0, "{label}: leaked device memory");
        report
    };

    let fused = run(&WeaverConfig::default());
    let unfused = run(&WeaverConfig::default().baseline());

    let res = fused.resilience.as_ref().expect("resilient run reports");
    let AdmittedMode::Chunked { chunks } = res.final_mode else {
        panic!(
            "{label}: expected the Chunked rung, got {:?}",
            res.final_mode
        );
    };
    let strategy = res
        .admission
        .strategy
        .expect("chunked runs carry a strategy");

    Row {
        pattern: label.to_string(),
        strategy: strategy.to_string(),
        input_bytes,
        device_bytes,
        chunks,
        fused_seconds: fused.total_seconds,
        unfused_seconds: unfused.total_seconds,
        fusion_gain: unfused.total_seconds / fused.total_seconds,
    }
}

/// Run the full campaign at `n` tuples per input relation.
pub fn run(n: usize) -> Vec<Row> {
    workloads(n)
        .iter()
        .map(|(label, w)| run_one(label, w))
        .collect()
}

/// Render `rows` as the machine-readable `BENCH_out_of_core.json` document
/// the CI gate parses (hand-rolled: the workspace carries no JSON
/// serializer dependency).
pub fn to_json(n: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"out_of_core\",\n");
    out.push_str(&format!("  \"tuples_per_input\": {n},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"strategy\": \"{}\", \
             \"input_bytes\": {}, \"device_bytes\": {}, \"chunks\": {}, \
             \"fused_seconds\": {}, \"unfused_seconds\": {}, \
             \"fusion_gain\": {}}}{}\n",
            r.pattern,
            r.strategy,
            r.input_bytes,
            r.device_bytes,
            r.chunks,
            r.fused_seconds,
            r.unfused_seconds,
            r.fusion_gain,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::{execute_batch, BatchQuery, QueryOutcome};

    #[test]
    fn every_strategy_survives_out_of_core() {
        let rows = run(1 << 12);
        let expected = [
            ("(b)", "hash-partition"),
            ("(c)", "hash-partition"),
            ("(d)", "row-slice"),
            ("(agg)", "partial-aggregate"),
        ];
        assert_eq!(rows.len(), expected.len());
        for (r, (pat, strat)) in rows.iter().zip(expected) {
            assert_eq!(r.pattern, pat);
            assert_eq!(r.strategy, strat, "{r:?}");
            assert!(r.device_bytes < r.input_bytes, "{r:?}");
            assert!(r.chunks >= 2, "{r:?}");
            assert!(r.fused_seconds > 0.0 && r.unfused_seconds > 0.0, "{r:?}");
            assert!(r.fusion_gain > 0.0, "{r:?}");
        }
    }

    /// The batch ladder tail also survives a join whale: a pattern (b)
    /// workload too big for any admission wave degrades to hash-partitioned
    /// chunks inside `execute_batch` instead of quarantining, and its
    /// outputs match resident execution.
    #[test]
    fn batch_ladder_tail_chunks_a_join_whale() {
        let normal = Pattern::A.build(1 << 12, SEED);
        let whale = Pattern::B.build(1 << 12, SEED + 1);

        // Capacity between the normal query's resident peak and the
        // whale's staged peak: the normal query runs resident in a wave,
        // the whale is forced onto the ladder tail.
        let peaks = |w: &Workload| {
            let b = w.bindings();
            let c = compile(&w.plan, &WeaverConfig::default()).unwrap();
            admit(&w.plan, &c, &b, u64::MAX).unwrap()
        };
        let normal_resident = peaks(&normal).resident_peak;
        let whale_staged = peaks(&whale).staged_peak;
        assert!(
            normal_resident < whale_staged,
            "campaign sizing assumption broken: {normal_resident} vs {whale_staged}"
        );
        let capacity = whale_staged
            .min(normal_resident * 2)
            .max(normal_resident + 1);

        let mut big = Device::new(DeviceConfig::fermi_c2050());
        let oracle = execute_plan(
            &whale.plan,
            &whale.bindings(),
            &mut big,
            &WeaverConfig::default(),
        )
        .unwrap();

        let nb = normal.bindings();
        let wb = whale.bindings();
        let queries = [
            BatchQuery {
                name: "normal",
                plan: &normal.plan,
                bindings: &nb,
            },
            BatchQuery {
                name: "whale",
                plan: &whale.plan,
                bindings: &wb,
            },
        ];
        let mut dev = Device::new(DeviceConfig {
            global_mem_bytes: capacity,
            ..DeviceConfig::fermi_c2050()
        });
        let batch = execute_batch(&queries, &mut dev, &WeaverConfig::default()).unwrap();

        let whale_q = &batch.queries[1];
        assert!(
            matches!(
                whale_q.outcome,
                QueryOutcome::Degraded {
                    mode: AdmittedMode::Chunked { .. }
                }
            ),
            "whale must chunk on the ladder tail, got {:?}",
            whale_q.outcome
        );
        assert_eq!(
            whale_q.outputs, oracle.outputs,
            "ladder-tail chunking changed the whale's answer"
        );
        assert!(batch.queries[0].outcome.is_success());
        assert_eq!(dev.memory().in_use(), 0, "batch leaked device memory");
    }

    #[test]
    fn json_export_is_well_formed() {
        let rows = run(1 << 12);
        let json = to_json(1 << 12, &rows);
        kw_gpu_sim::validate_json(&json).expect("out_of_core JSON parses");
        for key in [
            "\"pattern\"",
            "\"strategy\"",
            "\"input_bytes\"",
            "\"device_bytes\"",
            "\"chunks\"",
            "\"fused_seconds\"",
            "\"unfused_seconds\"",
            "\"fusion_gain\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
