//! Figure 21: large inputs — every baseline operator stages its result
//! over PCIe, fused kernels keep intermediates on the GPU.
//!
//! Paper result (averages across patterns): ≈ 2.91× GPU computation,
//! ≈ 2.08× PCIe transfer, ≈ 1.98× overall; pattern (d) gains nothing on
//! PCIe (fused and unfused move the same bytes). Restricted to the four
//! producer-consumer patterns: ≈ 2.35× PCIe and ≈ 2.22× overall.

use kw_tpch::Pattern;

use super::{geomean, run_pair, staged, DEFAULT_N, SEED};

/// One pattern's Figure 21 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig21Row {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// GPU computation speedup.
    pub gpu_speedup: f64,
    /// PCIe transfer-time speedup.
    pub pcie_speedup: f64,
    /// Overall (GPU + PCIe) speedup. The paper's Figure 21 measures the
    /// serialized compute + transfer cost (its harness did not overlap
    /// staged transfers), so this ratio uses `serialized_seconds` — the
    /// streamed wallclock lives in `PlanReport::pipelined_seconds`.
    pub overall_speedup: f64,
}

/// Run Figure 21 over all five patterns.
pub fn run() -> Vec<Fig21Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(DEFAULT_N, SEED);
            let (fused, base) = run_pair(&w, &staged());
            Fig21Row {
                pattern,
                gpu_speedup: base.gpu_seconds / fused.gpu_seconds,
                pcie_speedup: base.pcie_seconds / fused.pcie_seconds,
                overall_speedup: base.serialized_seconds / fused.serialized_seconds,
            }
        })
        .collect()
}

/// Averages over all patterns: `(gpu, pcie, overall)`.
pub fn averages(rows: &[Fig21Row]) -> (f64, f64, f64) {
    (
        geomean(&rows.iter().map(|r| r.gpu_speedup).collect::<Vec<_>>()),
        geomean(&rows.iter().map(|r| r.pcie_speedup).collect::<Vec<_>>()),
        geomean(&rows.iter().map(|r| r.overall_speedup).collect::<Vec<_>>()),
    )
}

/// Averages over the four producer-consumer patterns (excluding (d)).
pub fn producer_consumer_averages(rows: &[Fig21Row]) -> (f64, f64) {
    let pc: Vec<&Fig21Row> = rows.iter().filter(|r| r.pattern != Pattern::D).collect();
    (
        geomean(&pc.iter().map(|r| r.pcie_speedup).collect::<Vec<_>>()),
        geomean(&pc.iter().map(|r| r.overall_speedup).collect::<Vec<_>>()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_mode_shapes() {
        let rows = run();
        let d = rows.iter().find(|r| r.pattern == Pattern::D).unwrap();
        // Pattern (d) gets (almost) no PCIe benefit.
        assert!(
            d.pcie_speedup < 1.15,
            "(d) should not gain PCIe time: {d:?}"
        );
        // Producer-consumer patterns gain both.
        for r in rows.iter().filter(|r| r.pattern != Pattern::D) {
            assert!(r.pcie_speedup > 1.3, "{:?}", r);
            assert!(r.overall_speedup > 1.3, "{:?}", r);
        }
        let (gpu, _pcie, overall) = averages(&rows);
        assert!(gpu > 1.8, "gpu avg {gpu}");
        assert!(overall > 1.4, "overall avg {overall}");
        let (pc_pcie, pc_overall) = producer_consumer_averages(&rows);
        assert!(pc_pcie > pc_overall * 0.6, "{pc_pcie} {pc_overall}");
    }
}
