//! Section 2.3 / Section 6 platform study: kernel fusion on a discrete GPU
//! vs. a fused CPU+GPU die (Sandy Bridge / AMD Fusion class), and the
//! rescheduling + double-buffering extensions of Section 6.
//!
//! The paper argues four of fusion's six benefits survive on an APU (all
//! but PCIe-traffic reduction and larger resident inputs) — so fusion keeps
//! its compute-side speedup there while the transfer-side gain evaporates.

use kw_core::{reschedule, ExecMode, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_primitives::RaOp;
use kw_relational::{CmpOp, Predicate, Schema, Value};
use kw_tpch::{Pattern, Workload};

use super::{DEFAULT_N, SEED};

/// Fusion speedups of one pattern on one platform.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// Platform name.
    pub platform: &'static str,
    /// Pattern measured.
    pub pattern: Pattern,
    /// Compute-side speedup from fusion.
    pub gpu_speedup: f64,
    /// Overall (compute + transfer) speedup, staged mode. Measured on the
    /// serialized cost, matching the paper's non-overlapping harness.
    pub overall_speedup: f64,
    /// Fraction of the *baseline* serialized runtime spent on transfers.
    pub transfer_fraction: f64,
}

/// Compare fusion benefits on the discrete C2050 vs the fused APU.
pub fn run(patterns: &[Pattern]) -> Vec<PlatformRow> {
    let mut rows = Vec::new();
    for &(platform, ref cfg) in &[
        ("Tesla C2050 (discrete)", DeviceConfig::fermi_c2050()),
        ("fused APU", DeviceConfig::fused_apu()),
    ] {
        for &pattern in patterns {
            let w = pattern.build(DEFAULT_N, SEED);
            let staged = WeaverConfig {
                mode: ExecMode::Staged,
                ..WeaverConfig::default()
            };
            let mut fdev = Device::new(cfg.clone());
            let fused = w.run(&mut fdev, &staged).expect("fused");
            let mut bdev = Device::new(cfg.clone());
            let base = w.run(&mut bdev, &staged.baseline()).expect("baseline");
            rows.push(PlatformRow {
                platform,
                pattern,
                gpu_speedup: base.gpu_seconds / fused.gpu_seconds,
                overall_speedup: base.serialized_seconds / fused.serialized_seconds,
                transfer_fraction: base.pcie_seconds / base.serialized_seconds,
            });
        }
    }
    rows
}

/// The Section 6 rescheduling study: a SELECT trapped above a SORT is
/// hoisted below it, shrinking the sort and joining the pre-sort fusion
/// region. Returns `(unrescheduled, rescheduled)` GPU seconds (both fused).
pub fn rescheduling_gain() -> (f64, f64) {
    // select(sort(select(t))) — the Figure 9(c) shape.
    let input = kw_relational::gen::micro_input(DEFAULT_N, SEED);
    let mut plan = kw_core::QueryPlan::new();
    let t = plan.add_input("t", Schema::uniform_u32(4));
    let s1 = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[t],
        )
        .expect("pre-sort select");
    let srt = plan
        .add_op(RaOp::Sort { attrs: vec![2] }, &[s1])
        .expect("sort");
    // Post-sort layout (a2, a0, a1, a3): filter on position 2 (= a1).
    let s2 = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(2, CmpOp::Lt, Value::U32(u32::MAX / 2)),
            },
            &[srt],
        )
        .expect("post-sort select");
    plan.mark_output(s2);
    let workload = Workload::new("reschedule-study", plan, vec![("t".into(), input)]);

    let mut d1 = super::device();
    let plain = workload
        .run(&mut d1, &WeaverConfig::default())
        .expect("plain");

    let r = reschedule(&workload.plan).expect("reschedule");
    let rescheduled_workload = Workload::new("rescheduled", r.plan, workload.data.clone());
    let mut d2 = super::device();
    let moved = rescheduled_workload
        .run(&mut d2, &WeaverConfig::default())
        .expect("rescheduled");

    // Same results (modulo node ids).
    let a: Vec<_> = plain.outputs.values().collect();
    let b: Vec<_> = moved.outputs.values().collect();
    assert_eq!(a, b, "rescheduling must not change results");

    (plain.gpu_seconds, moved.gpu_seconds)
}

/// The CPU-vs-GPU comparison implied by §5.1.2 ("the baseline GPU
/// implementation should be 4x–40x faster than CPU and kernel fusion can
/// further increase the GPU advantage"): run the unfused baseline on the
/// CPU target and both variants on the GPU. Returns
/// `(gpu_baseline_over_cpu, gpu_fused_over_cpu)` for `pattern`.
pub fn cpu_comparison(pattern: Pattern) -> (f64, f64) {
    let w = pattern.build(DEFAULT_N, SEED);
    let resident = WeaverConfig::default();

    let mut cdev = Device::new(DeviceConfig::cpu_like());
    let cpu = w
        .run(&mut cdev, &resident.baseline())
        .expect("cpu baseline");
    let mut gdev = Device::new(DeviceConfig::fermi_c2050());
    let gpu_base = w
        .run(&mut gdev, &resident.baseline())
        .expect("gpu baseline");
    let mut fdev = Device::new(DeviceConfig::fermi_c2050());
    let gpu_fused = w.run(&mut fdev, &resident).expect("gpu fused");

    (
        cpu.gpu_seconds / gpu_base.gpu_seconds,
        cpu.gpu_seconds / gpu_fused.gpu_seconds,
    )
}

/// Double-buffering study on pattern (a): run the *chunked* pipelined
/// executor (8 chunks) fused vs unfused and report the fusion speedup with
/// serialized and with overlapped transfers.
pub fn overlap_study() -> (f64, f64) {
    let w = Pattern::A.build(DEFAULT_N, SEED);
    let run = |fusion: bool| {
        // Staged per-chunk execution: unfused operators round-trip their
        // intermediates to the host (the out-of-core setting where both
        // fusion and double buffering matter).
        let config = WeaverConfig {
            fusion,
            mode: ExecMode::Staged,
            ..WeaverConfig::default()
        };
        let mut dev = super::device();
        kw_core::execute_chunked(&w.plan, &w.bindings(), &mut dev, &config, 8).expect("chunked run")
    };
    let fused = run(true);
    let base = run(false);
    assert_eq!(fused.outputs, base.outputs);
    (
        base.serialized_seconds / fused.serialized_seconds,
        base.pipelined_seconds / fused.pipelined_seconds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apu_keeps_compute_benefit_loses_transfer_share() {
        let rows = run(&[Pattern::A]);
        let discrete = &rows[0];
        let apu = &rows[1];
        assert!(discrete.gpu_speedup > 1.5);
        assert!(apu.gpu_speedup > 1.5, "compute benefit survives: {apu:?}");
        assert!(
            apu.transfer_fraction < discrete.transfer_fraction,
            "transfers matter less on die: {apu:?} vs {discrete:?}"
        );
        assert!(apu.overall_speedup > 1.0);
    }

    #[test]
    fn rescheduling_helps() {
        let (plain, moved) = rescheduling_gain();
        assert!(
            moved < plain,
            "hoisting the select should shrink the sort: {moved} vs {plain}"
        );
    }

    #[test]
    fn gpu_beats_cpu_in_papers_band() {
        let (base_ratio, fused_ratio) = cpu_comparison(Pattern::A);
        // Paper: baseline GPU 4x–40x over CPU; fusion widens the gap.
        assert!(
            base_ratio > 3.0 && base_ratio < 50.0,
            "baseline GPU/CPU ratio {base_ratio}"
        );
        assert!(fused_ratio > base_ratio, "{fused_ratio} vs {base_ratio}");
    }

    #[test]
    fn overlap_is_orthogonal_to_fusion() {
        let (serial, overlapped) = overlap_study();
        assert!(serial > 1.3);
        assert!(overlapped > 1.3, "fusion still wins under overlap");
    }
}
