//! Figure 19: how much `-O3` buys over `-O0`, with and without fusion.
//!
//! Paper result: for every pattern the optimizer helps *more* when kernels
//! are fused — fusion enlarges the optimization scope, so the compiler has
//! more redundant work to remove (and, at `-O0`, fused kernels spill their
//! larger register sets to local memory).

use kw_core::WeaverConfig;
use kw_kernel_ir::OptLevel;
use kw_tpch::Pattern;

use super::{device, DEFAULT_N, SEED};

/// One pattern's Figure 19 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig19Row {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// O3-over-O0 speedup without fusion.
    pub unfused_o3_speedup: f64,
    /// O3-over-O0 speedup with fusion.
    pub fused_o3_speedup: f64,
}

fn gpu_seconds(pattern: Pattern, fusion: bool, opt: OptLevel) -> f64 {
    let w = pattern.build(DEFAULT_N, SEED);
    let config = WeaverConfig {
        fusion,
        opt,
        ..WeaverConfig::default()
    };
    let mut dev = device();
    w.run(&mut dev, &config).expect("fig19 run").gpu_seconds
}

/// Run Figure 19 over all five patterns.
pub fn run() -> Vec<Fig19Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| Fig19Row {
            pattern,
            unfused_o3_speedup: gpu_seconds(pattern, false, OptLevel::O0)
                / gpu_seconds(pattern, false, OptLevel::O3),
            fused_o3_speedup: gpu_seconds(pattern, true, OptLevel::O0)
                / gpu_seconds(pattern, true, OptLevel::O3),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_helps_fused_kernels_more() {
        let rows = run();
        for r in &rows {
            assert!(r.unfused_o3_speedup >= 1.0, "O3 should never hurt: {r:?}");
            assert!(
                r.fused_o3_speedup > r.unfused_o3_speedup,
                "{} fusion should enlarge optimization scope: {r:?}",
                r.pattern.label()
            );
        }
    }
}
