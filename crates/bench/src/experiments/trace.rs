//! Structured execution traces for a fused vs unfused TPC-H query.
//!
//! Runs the same workload twice on fresh devices — fusion on and off —
//! and returns both span logs with their aggregate counters, after
//! asserting the paper's acceptance criteria for the tracing layer:
//!
//! 1. both runs produce identical outputs,
//! 2. each run's per-span [`kw_gpu_sim::SimStats`] deltas sum exactly to
//!    its aggregate stats ([`kw_gpu_sim::reconcile`]),
//! 3. the fused trace contains *fewer kernel spans* and moves *less
//!    global memory* — fusion's benefit, visible span-by-span.
//!
//! The `paper_tables` binary renders these as per-operator summary tables
//! and (with `--trace-dir`) exports Perfetto-loadable Chrome trace JSON.

use kw_gpu_sim::{Device, SimStats, Span, SpanKind};
use kw_tpch::Workload;

use super::{device, resident, SEED};

/// One captured execution: the span log plus the aggregate counters it
/// must reconcile against.
#[derive(Debug, Clone)]
pub struct TraceCapture {
    /// `"{workload}.fused"` or `"{workload}.baseline"` — used as the
    /// export file stem.
    pub name: String,
    /// The device's complete span log for the run.
    pub spans: Vec<Span>,
    /// Aggregate device counters for the run.
    pub stats: SimStats,
    /// Device clock rate, for cycle→wall-time conversion in exports.
    pub clock_ghz: f64,
}

impl TraceCapture {
    /// Number of kernel spans in the trace.
    pub fn kernel_spans(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .count()
    }

    /// Number of PCIe transfer spans in the trace.
    pub fn transfer_spans(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Transfer)
            .count()
    }
}

/// Fused and baseline captures of one workload.
#[derive(Debug, Clone)]
pub struct TraceComparison {
    /// Workload name.
    pub workload: String,
    /// Trace with fusion enabled.
    pub fused: TraceCapture,
    /// Trace with fusion disabled.
    pub baseline: TraceCapture,
}

fn capture(w: &Workload, fusion: bool) -> TraceCapture {
    let mut dev: Device = device();
    let config = if fusion {
        resident()
    } else {
        resident().baseline()
    };
    let report = w
        .run(&mut dev, &config)
        .unwrap_or_else(|e| panic!("{} (fusion={fusion}) failed while tracing: {e}", w.name));
    let variant = if fusion { "fused" } else { "baseline" };
    // File-system-friendly stem: "TPC-H Q1" -> "tpc-h_q1.fused".
    let stem = w.name.to_lowercase().replace([' ', '/'], "_");
    let cap = TraceCapture {
        name: format!("{stem}.{variant}"),
        spans: report.spans,
        stats: report.stats,
        clock_ghz: dev.config().clock_ghz,
    };
    // Acceptance criterion: per-span deltas sum exactly to the aggregate.
    kw_gpu_sim::reconcile(&cap.spans, &cap.stats)
        .unwrap_or_else(|e| panic!("{} trace does not reconcile: {e}", cap.name));
    cap
}

/// Trace TPC-H Q1 at `scale` (relative to the generator's base size),
/// fused and unfused, and check the acceptance criteria.
pub fn q1(scale: f64) -> TraceComparison {
    run(&kw_tpch::q1(scale, SEED))
}

/// Trace any workload fused and unfused.
pub fn run(w: &Workload) -> TraceComparison {
    let fused = capture(w, true);
    let baseline = capture(w, false);

    assert!(
        fused.kernel_spans() < baseline.kernel_spans(),
        "{}: fused trace should have fewer kernel spans ({} vs {})",
        w.name,
        fused.kernel_spans(),
        baseline.kernel_spans()
    );
    assert!(
        fused.stats.global_bytes() < baseline.stats.global_bytes(),
        "{}: fused trace should move less global memory ({} vs {})",
        w.name,
        fused.stats.global_bytes(),
        baseline.stats.global_bytes()
    );

    TraceComparison {
        workload: w.name.clone(),
        fused,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_traces_reconcile_and_show_fusion() {
        let cmp = q1(2.0);
        assert!(cmp.fused.kernel_spans() > 0);
        assert!(cmp.fused.transfer_spans() > 0);
        // Spans carry operator provenance from the executor scopes.
        assert!(
            cmp.fused
                .spans
                .iter()
                .any(|s| s.provenance.contains("fused[")),
            "no span carries fusion-candidate provenance"
        );
        assert!(cmp
            .baseline
            .spans
            .iter()
            .all(|s| !s.provenance.contains("fused[")));
    }

    #[test]
    fn chrome_export_of_q1_validates() {
        let cmp = q1(1.0);
        let json = kw_gpu_sim::chrome_trace_json(&cmp.fused.spans, cmp.fused.clock_ghz);
        let events = kw_gpu_sim::validate_chrome_json(&json).expect("valid Chrome trace");
        assert!(events >= cmp.fused.spans.len());
    }
}
