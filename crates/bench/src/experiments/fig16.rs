//! Figure 16: GPU-computation speedup from kernel fusion, small inputs
//! (everything GPU-resident, PCIe excluded).
//!
//! Paper result: average ≈ 2.89×; thread-dependence-only patterns (a) and
//! (e) highest; input-dependence pattern (d) lowest; (c) above (b).

use kw_tpch::Pattern;

use super::{geomean, resident, run_pair, SWEEP};

/// One pattern's Figure 16 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig16Row {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// GPU-compute speedup (baseline / fused), averaged over the sweep.
    pub speedup: f64,
}

/// Run Figure 16 over all five patterns.
pub fn run() -> Vec<Fig16Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let speedups: Vec<f64> = SWEEP
                .iter()
                .map(|&n| {
                    let w = pattern.build(n, super::SEED);
                    let (fused, base) = run_pair(&w, &resident());
                    base.gpu_seconds / fused.gpu_seconds
                })
                .collect();
            Fig16Row {
                pattern,
                speedup: geomean(&speedups),
            }
        })
        .collect()
}

/// Average speedup across patterns (the paper's 2.89× headline).
pub fn average(rows: &[Fig16Row]) -> f64 {
    geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run();
        let get = |p: Pattern| rows.iter().find(|r| r.pattern == p).unwrap().speedup;
        let (a, b, c, d, e) = (
            get(Pattern::A),
            get(Pattern::B),
            get(Pattern::C),
            get(Pattern::D),
            get(Pattern::E),
        );
        // Every pattern speeds up.
        for r in &rows {
            assert!(r.speedup > 1.05, "{:?}", r);
        }
        // (d) is the smallest; (a) and (e) are thread-only and large.
        assert!(d < a && d < b && d < c && d < e, "(d) lowest: {rows:?}");
        assert!(a > b, "(a) should beat CTA-dependent (b): {rows:?}");
        assert!(e > b, "(e) should beat CTA-dependent (b): {rows:?}");
        // (c) above (b): fusing some thread-dependent operators helps.
        assert!(c > b, "(c) > (b): {rows:?}");
        // Headline average in the paper's band (2.89x): accept 1.8–4.5.
        let avg = average(&rows);
        assert!(avg > 1.8 && avg < 4.5, "average {avg}");
    }
}
