//! Figure 20: sensitivity of fusing two SELECTs to the selection ratio.
//!
//! Paper result: fusing two 10%-selectivity SELECTs gives ≈ 1.28× (idle
//! threads after the first filter waste lanes), rising to ≈ 2.01× at 90%.
//! Idle threads dent the benefit but never negate it.

use kw_core::QueryPlan;
use kw_primitives::RaOp;
use kw_relational::{gen, CmpOp, Predicate};
use kw_tpch::Workload;

use super::{resident, run_pair, DEFAULT_N, SEED};

/// One selectivity point of the Figure 20 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig20Row {
    /// Selectivity of each of the two SELECTs.
    pub selectivity: f64,
    /// GPU-compute speedup of the fused pair.
    pub speedup: f64,
}

/// Two chained SELECTs at the given selectivity each (attribute 1 carries
/// the controlled distribution; attribute 2 mirrors it through the uniform
/// u32 domain).
pub fn two_selects(n: usize, selectivity: f64, seed: u64) -> Workload {
    let input = gen::selectivity_input(n, 4, seed);
    let mut plan = QueryPlan::new();
    let t = plan.add_input("t", input.schema().clone());
    let s1 = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(1, CmpOp::Lt, gen::selectivity_threshold(selectivity)),
            },
            &[t],
        )
        .expect("first select");
    let thresh2 = (u32::MAX as f64 * selectivity) as u32;
    let s2 = plan
        .add_op(
            RaOp::Select {
                pred: Predicate::cmp(2, CmpOp::Lt, kw_relational::Value::U32(thresh2)),
            },
            &[s1],
        )
        .expect("second select");
    plan.mark_output(s2);
    Workload::new(
        format!("two selects @ {selectivity}"),
        plan,
        vec![("t".into(), input)],
    )
}

/// Run the Figure 20 sweep.
pub fn run(selectivities: &[f64]) -> Vec<Fig20Row> {
    selectivities
        .iter()
        .map(|&s| {
            let w = two_selects(DEFAULT_N, s, SEED);
            let (fused, base) = run_pair(&w, &resident());
            Fig20Row {
                selectivity: s,
                speedup: base.gpu_seconds / fused.gpu_seconds,
            }
        })
        .collect()
}

/// The paper's sweep points.
pub const PAPER_SWEEP: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_selectivity() {
        let rows = run(&PAPER_SWEEP);
        for pair in rows.windows(2) {
            assert!(
                pair[1].speedup > pair[0].speedup,
                "speedup should grow with selectivity: {rows:?}"
            );
        }
        // Paper endpoints: 1.28x at 10%, 2.01x at 90%.
        assert!(rows[0].speedup > 1.0 && rows[0].speedup < 1.8, "{rows:?}");
        let last = rows.last().unwrap();
        assert!(last.speedup > 1.6 && last.speedup < 3.0, "{rows:?}");
    }
}
