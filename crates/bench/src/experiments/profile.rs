//! Bottleneck-attribution profile over the paper's five patterns.
//!
//! For every pattern (a)–(e) this experiment runs the fused plan on the
//! discrete Fermi (resident and staged) and on the paper's §2.3 fused
//! APU (PCIe removed), then folds each span log through
//! [`kw_core::ProfileReport`]: which resource bounds the run (PCIe link,
//! launch overhead, global-memory bandwidth or raw compute), how busy each
//! engine was, and what fraction of peak bandwidth the run achieved. On
//! the Fermi the 8 GB/s link dominates every pattern; on the APU the same
//! plans turn launch-, memory- or compute-bound. The JSON export pins the
//! classification strings so a change to the roofline rule fails the
//! bench-regression gate rather than drifting silently.

use kw_core::ExecMode;
use kw_gpu_sim::{Device, DeviceConfig};
use kw_tpch::Pattern;

/// One pattern/platform/mode cell of the profile table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pattern label, e.g. `(a)`.
    pub pattern: String,
    /// Simulated platform: `fermi` (discrete, PCIe-attached) or `apu`
    /// (fused, no PCIe link).
    pub platform: String,
    /// Execution mode: `resident` or `staged`.
    pub mode: String,
    /// Roofline verdict for the whole run (`transfer`, `launch`,
    /// `memory` or `compute`).
    pub bottleneck: String,
    /// Fraction of wall time the compute engine was busy.
    pub gpu_busy_fraction: f64,
    /// Fraction of wall time the PCIe link was busy.
    pub pcie_busy_fraction: f64,
    /// Share of GPU cycles that were fixed launch overhead.
    pub launch_share: f64,
    /// Achieved global-memory bandwidth over the device peak.
    pub global_bw_utilization: f64,
    /// Achieved PCIe bandwidth over the device peak.
    pub pcie_bw_utilization: f64,
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Resident => "resident",
        ExecMode::Staged => "staged",
    }
}

/// Profile every pattern, fused, at `n` tuples per input: Fermi resident,
/// Fermi staged, and fused-APU resident.
pub fn run(n: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for pattern in Pattern::all() {
        for (platform, config, mode) in [
            ("fermi", DeviceConfig::fermi_c2050(), ExecMode::Resident),
            ("fermi", DeviceConfig::fermi_c2050(), ExecMode::Staged),
            ("apu", DeviceConfig::fused_apu(), ExecMode::Resident),
        ] {
            let w = pattern.build(n, super::SEED);
            let cfg = kw_core::WeaverConfig {
                mode,
                ..super::resident()
            };
            let mut dev = Device::new(config);
            let report = w.run(&mut dev, &cfg).expect("profiled run");
            let p = &report.profile;
            rows.push(Row {
                pattern: pattern.label().to_string(),
                platform: platform.to_string(),
                mode: mode_name(mode).to_string(),
                bottleneck: p.bottleneck.name().to_string(),
                gpu_busy_fraction: p.gpu_busy_fraction,
                pcie_busy_fraction: p.pcie_busy_fraction,
                launch_share: p.launch_share,
                global_bw_utilization: p.global_bw_utilization,
                pcie_bw_utilization: p.pcie_bw_utilization,
            });
        }
    }
    rows
}

/// Render `rows` as the machine-readable `BENCH_profile.json` document the
/// regression gate diffs against its committed baseline (hand-rolled: the
/// workspace carries no JSON serializer dependency).
pub fn to_json(n: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"profile\",\n");
    out.push_str(&format!("  \"tuples_per_query\": {n},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"platform\": \"{}\", \"mode\": \"{}\", \
             \"bottleneck\": \"{}\", \
             \"gpu_busy_fraction\": {}, \"pcie_busy_fraction\": {}, \
             \"launch_share\": {}, \"global_bw_utilization\": {}, \
             \"pcie_bw_utilization\": {}}}{}\n",
            r.pattern,
            r.platform,
            r.mode,
            r.bottleneck,
            r.gpu_busy_fraction,
            r.pcie_busy_fraction,
            r.launch_share,
            r.global_bw_utilization,
            r.pcie_bw_utilization,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_pattern_d_is_transfer_bound_and_apu_is_not() {
        let rows = run(1 << 16);
        let d = rows
            .iter()
            .find(|r| r.pattern == "(d)" && r.platform == "fermi" && r.mode == "staged")
            .expect("pattern (d) fermi staged row");
        assert_eq!(d.bottleneck, "transfer", "{d:?}");
        assert!(d.pcie_busy_fraction > 0.0);
        // Removing the PCIe link (§2.3) must move the verdict off transfer.
        for r in rows.iter().filter(|r| r.platform == "apu") {
            assert_ne!(r.bottleneck, "transfer", "{r:?}");
        }
    }

    #[test]
    fn json_export_is_well_formed() {
        let rows = run(1 << 12);
        assert_eq!(rows.len(), 3 * Pattern::all().len());
        let json = to_json(1 << 12, &rows);
        kw_gpu_sim::validate_json(&json).expect("profile JSON parses");
        for key in [
            "\"bottleneck\"",
            "\"gpu_busy_fraction\"",
            "\"launch_share\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
