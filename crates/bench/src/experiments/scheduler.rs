//! Multi-query batch scheduling: throughput on one shared device.
//!
//! The paper evaluates fusion one query at a time; production databases run
//! many queries at once. This experiment batches independent queries through
//! [`kw_core::execute_batch`] and compares three regimes:
//!
//! * **batched-fused** — fused plans, concurrently scheduled on the shared
//!   device's stream/event graph;
//! * **batched-unfused** — the same concurrency without fusion;
//! * **serial-fused** — fused plans run one at a time (sum of solo
//!   makespans), the paper's own regime.
//!
//! The headline ordering is `batched-fused < batched-unfused <
//! serial-fused`: batching hides one query's transfers under another's
//! compute, and fusion then shrinks the compute-engine busy time that
//! bounds the batch from below.

use kw_core::{execute_batch, BatchQuery, WeaverConfig};
use kw_relational::Relation;
use kw_tpch::{Pattern, Workload};

/// One batch size of the scheduler experiment.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of concurrent queries in the batch.
    pub queries: usize,
    /// Shared-device makespan of the fused batch, seconds.
    pub batched_fused: f64,
    /// Shared-device makespan of the unfused batch, seconds.
    pub batched_unfused: f64,
    /// Sum of solo fused makespans (one query at a time), seconds.
    pub serial_fused: f64,
    /// Queries per second of makespan for the fused batch.
    pub throughput_qps: f64,
    /// Median per-query latency of the fused batch, seconds (exact
    /// nearest-rank order statistic over the successful queries).
    pub latency_p50: f64,
    /// 95th-percentile per-query latency of the fused batch, seconds.
    pub latency_p95: f64,
    /// 99th-percentile per-query latency of the fused batch, seconds.
    pub latency_p99: f64,
    /// Per-engine utilization of the fused batch (busy / makespan), keyed
    /// by engine name, in name order.
    pub engine_utilization: Vec<(String, f64)>,
    /// Transient-fault retries absorbed across the fused batch's queries
    /// (0 on this fault-free campaign — quoted so the table states it).
    pub retries_total: u64,
    /// Retry backoff charged across the fused batch's queries, seconds.
    pub backoff_seconds: f64,
}

impl Row {
    /// Batched-fused speedup over running the fused queries serially.
    pub fn speedup_vs_serial(&self) -> f64 {
        self.serial_fused / self.batched_fused
    }

    /// What fusion adds on top of batching alone.
    pub fn fusion_gain(&self) -> f64 {
        self.batched_unfused / self.batched_fused
    }
}

/// Pattern mix a batch cycles through: select chains, shared-input selects
/// and arithmetic pipelines — the shapes whose transfers batching can hide.
pub const MIX: [Pattern; 3] = [Pattern::A, Pattern::D, Pattern::E];

/// Run one batch per entry of `sizes`, each query at `n` tuples.
pub fn run(n: usize, sizes: &[usize]) -> Vec<Row> {
    sizes.iter().map(|&k| run_batch(n, k)).collect()
}

fn run_batch(n: usize, k: usize) -> Row {
    let workloads: Vec<Workload> = (0..k)
        .map(|i| MIX[i % MIX.len()].build(n, super::SEED + i as u64))
        .collect();
    let bindings: Vec<Vec<(&str, &Relation)>> = workloads.iter().map(|w| w.bindings()).collect();
    let queries: Vec<BatchQuery<'_>> = workloads
        .iter()
        .zip(&bindings)
        .map(|(w, b)| BatchQuery {
            name: &w.name,
            plan: &w.plan,
            bindings: b,
        })
        .collect();

    let cfg = WeaverConfig::default();
    let mut fused_dev = super::device();
    let fused = execute_batch(&queries, &mut fused_dev, &cfg).expect("fused batch");
    kw_gpu_sim::reconcile(fused_dev.spans(), fused_dev.stats()).expect("fused batch reconciles");

    let mut base_dev = super::device();
    let base = execute_batch(&queries, &mut base_dev, &cfg.baseline()).expect("unfused batch");

    // Serial-fused: the same queries one at a time, each on a fresh device.
    // Batching must never change a query's answer along the way.
    let mut serial = 0.0;
    for (q, r) in queries.iter().zip(&fused.queries) {
        let mut dev = super::device();
        let solo = execute_batch(&[*q], &mut dev, &cfg).expect("solo run");
        serial += solo.makespan_seconds;
        assert_eq!(
            solo.queries[0].outputs, r.outputs,
            "{}: batching changed results",
            r.name
        );
    }
    for (f, b) in fused.queries.iter().zip(&base.queries) {
        assert_eq!(f.outputs, b.outputs, "{}: fusion changed results", f.name);
    }

    Row {
        queries: k,
        batched_fused: fused.makespan_seconds,
        batched_unfused: base.makespan_seconds,
        serial_fused: serial,
        throughput_qps: fused.throughput_qps,
        latency_p50: fused.latency_p50_seconds,
        latency_p95: fused.latency_p95_seconds,
        latency_p99: fused.latency_p99_seconds,
        engine_utilization: fused
            .engine_utilization
            .iter()
            .map(|(name, &u)| (name.clone(), u))
            .collect(),
        retries_total: fused.queries.iter().map(|q| u64::from(q.retries)).sum(),
        backoff_seconds: fused.queries.iter().map(|q| q.backoff_seconds).sum(),
    }
}

/// Render `rows` as the machine-readable `BENCH_scheduler.json` document
/// the CI gate parses (hand-rolled: the workspace carries no JSON
/// serializer dependency).
pub fn to_json(n: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"scheduler\",\n");
    out.push_str(&format!("  \"tuples_per_query\": {n},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let engines = r
            .engine_utilization
            .iter()
            .map(|(name, u)| format!("\"{name}\": {u}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"queries\": {}, \"batched_fused_seconds\": {}, \
             \"batched_unfused_seconds\": {}, \"serial_fused_seconds\": {}, \
             \"throughput_qps\": {}, \"speedup_vs_serial\": {}, \
             \"fusion_gain\": {}, \"latency_p50_seconds\": {}, \
             \"latency_p95_seconds\": {}, \"latency_p99_seconds\": {}, \
             \"retries_total\": {}, \"backoff_seconds\": {}, \
             \"engine_utilization\": {{{engines}}}}}{}\n",
            r.queries,
            r.batched_fused,
            r.batched_unfused,
            r.serial_fused,
            r.throughput_qps,
            r.speedup_vs_serial(),
            r.fusion_gain(),
            r.latency_p50,
            r.latency_p95,
            r.latency_p99,
            r.retries_total,
            r.backoff_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_orders_the_three_regimes() {
        for r in run(1 << 16, &[2, 4]) {
            assert!(
                r.batched_fused < r.batched_unfused,
                "{} queries: fusion must win inside a batch: {} vs {}",
                r.queries,
                r.batched_fused,
                r.batched_unfused
            );
            assert!(
                r.batched_unfused < r.serial_fused,
                "{} queries: batching must beat serial even unfused: {} vs {}",
                r.queries,
                r.batched_unfused,
                r.serial_fused
            );
            assert!(r.speedup_vs_serial() > 1.0);
            assert!(r.fusion_gain() > 1.0);
            assert!(r.throughput_qps > 0.0);
        }
    }

    #[test]
    fn json_export_is_well_formed() {
        let rows = run(1 << 14, &[2]);
        let json = to_json(1 << 14, &rows);
        kw_gpu_sim::validate_json(&json).expect("scheduler JSON parses");
        for key in [
            "\"batched_fused_seconds\"",
            "\"throughput_qps\"",
            "\"speedup_vs_serial\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
