//! Open-loop service saturation: offered load vs latency SLO, with and
//! without the compiled-plan cache.
//!
//! The scheduler experiment answers "how fast does a fixed batch run";
//! this campaign answers the serving question: *what offered load can one
//! device sustain at a latency SLO, and how much of that headroom does
//! plan caching buy?* For each device preset it:
//!
//! 1. **probes** the unloaded system (1 query/s) to calibrate a per-device
//!    SLO (3x the unloaded total p99) and the serial service rate
//!    (1 / mean execution latency);
//! 2. **sweeps** offered load across multiples of that serial rate, from
//!    deep under-load to well past saturation;
//! 3. at every load runs the *same seeded arrival schedule* twice — plan
//!    cache enabled vs the compile-per-arrival baseline — and records
//!    queueing/execution/total percentiles, achieved QPS and cache
//!    counters for both;
//! 4. reports the **saturation knee**: the highest offered load whose
//!    cached run still met the SLO.
//!
//! Invariants asserted on every row: exactly one cache lookup per arrival
//! (hits + misses == arrivals), the cached run's total p99 strictly beats
//! the uncached run's, and cached achieved QPS never loses.

use kw_core::{run_service, BatchQuery, ServiceConfig, ServiceReport, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_relational::Relation;
use kw_tpch::Workload;

use super::scheduler::MIX;

/// Arrivals per service run of the full campaign.
pub const ARRIVALS: usize = 96;
/// Offered-load multiples of the probe-derived serial service rate.
pub const LOAD_FACTORS: [f64; 6] = [0.1, 0.5, 1.0, 2.0, 4.0, 8.0];
/// SLO calibration: the latency objective is this multiple of the unloaded
/// total p99.
pub const SLO_FACTOR: f64 = 3.0;
/// Plan-cache capacity of the cached variant.
pub const CACHE_CAPACITY: usize = 32;

/// Device presets the campaign sweeps.
pub fn device_presets() -> Vec<(&'static str, DeviceConfig)> {
    vec![
        ("fermi_c2050", DeviceConfig::fermi_c2050()),
        ("fused_apu", DeviceConfig::fused_apu()),
    ]
}

/// One service run's reported metrics (one load, one cache setting).
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// Successful queries per second of service span.
    pub achieved_qps: f64,
    /// Arrivals that produced outputs.
    pub completed: usize,
    /// Arrivals quarantined.
    pub failed: usize,
    /// Dispatch batches issued.
    pub dispatches: usize,
    /// Deepest the admission queue got.
    pub max_queue_depth: usize,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache LRU evictions.
    pub cache_evictions: u64,
    /// Simulated compile seconds charged across all misses.
    pub compile_seconds_total: f64,
    /// Sum of dispatch makespans, seconds.
    pub busy_seconds: f64,
    /// Service span, seconds.
    pub duration_seconds: f64,
    /// Queueing-delay p99 over successes, seconds.
    pub queueing_p99_seconds: f64,
    /// Execution-latency p99 over successes, seconds.
    pub execution_p99_seconds: f64,
    /// Total-latency percentiles over successes, seconds.
    pub total_p50_seconds: f64,
    /// 95th percentile of total latency.
    pub total_p95_seconds: f64,
    /// 99th percentile of total latency — the SLO metric.
    pub total_p99_seconds: f64,
    /// Whether total p99 met the SLO.
    pub slo_met: bool,
}

impl VariantRow {
    fn from_report(r: &ServiceReport) -> VariantRow {
        VariantRow {
            achieved_qps: r.achieved_qps,
            completed: r.completed,
            failed: r.failed,
            dispatches: r.dispatches,
            max_queue_depth: r.max_queue_depth,
            cache_hits: r.cache_hits,
            cache_misses: r.cache_misses,
            cache_evictions: r.cache_evictions,
            compile_seconds_total: r.compile_seconds_total,
            busy_seconds: r.busy_seconds,
            duration_seconds: r.duration_seconds,
            queueing_p99_seconds: r.queueing.p99_seconds,
            execution_p99_seconds: r.execution.p99_seconds,
            total_p50_seconds: r.total.p50_seconds,
            total_p95_seconds: r.total.p95_seconds,
            total_p99_seconds: r.total.p99_seconds,
            slo_met: r.slo_met,
        }
    }
}

/// One offered load: the cached and uncached runs side by side.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Offered load of both runs, queries per second.
    pub offered_qps: f64,
    /// This row's multiple of the probe-derived serial rate.
    pub load_factor: f64,
    /// The plan-cache-enabled run.
    pub cached: VariantRow,
    /// The compile-per-arrival baseline.
    pub uncached: VariantRow,
}

impl LoadRow {
    /// How much the cache shrank total p99 (`> 1` = cache wins).
    pub fn p99_gain(&self) -> f64 {
        if self.cached.total_p99_seconds > 0.0 {
            self.uncached.total_p99_seconds / self.cached.total_p99_seconds
        } else {
            0.0
        }
    }
}

/// One device's full saturation sweep.
#[derive(Debug, Clone)]
pub struct DeviceSweep {
    /// Device preset name.
    pub device: &'static str,
    /// The calibrated latency objective (SLO_FACTOR x unloaded p99).
    pub slo_p99_seconds: f64,
    /// Probe-derived serial service rate (1 / mean unloaded execution).
    pub base_qps: f64,
    /// The saturation knee: highest offered load whose cached run met the
    /// SLO (0 when even the lightest load broke it).
    pub saturation_offered_qps: f64,
    /// One row per entry of [`LOAD_FACTORS`].
    pub rows: Vec<LoadRow>,
}

/// Run the full campaign: every device preset, every load factor.
pub fn run(n: usize, arrivals: usize) -> Vec<DeviceSweep> {
    device_presets()
        .into_iter()
        .map(|(name, cfg)| sweep_device(name, cfg, n, arrivals))
        .collect()
}

fn sweep_device(
    name: &'static str,
    device_config: DeviceConfig,
    n: usize,
    arrivals: usize,
) -> DeviceSweep {
    let workloads: Vec<Workload> = MIX
        .iter()
        .enumerate()
        .map(|(i, p)| p.build(n, super::SEED + i as u64))
        .collect();
    let bindings: Vec<Vec<(&str, &Relation)>> = workloads.iter().map(|w| w.bindings()).collect();
    let shapes: Vec<BatchQuery<'_>> = workloads
        .iter()
        .zip(&bindings)
        .map(|(w, b)| BatchQuery {
            name: &w.name,
            plan: &w.plan,
            bindings: b,
        })
        .collect();
    let config = WeaverConfig::default();
    let run_one = |offered_qps: f64, cache_capacity: usize, slo: f64| -> ServiceReport {
        let mut dev = Device::new(device_config.clone());
        let service = ServiceConfig {
            offered_qps,
            arrivals,
            seed: super::SEED,
            slo_p99_seconds: slo,
            cache_capacity,
            ..ServiceConfig::default()
        };
        run_service(&shapes, &mut dev, &config, &service).expect("service run")
    };

    // Probe the unloaded system: 1 query per simulated second is far below
    // any device's service rate, so its p99 and mean execution are the
    // no-queueing baselines.
    let probe = run_one(1.0, CACHE_CAPACITY, f64::INFINITY);
    assert_eq!(probe.completed, arrivals, "probe must complete everything");
    let slo_p99_seconds = SLO_FACTOR * probe.total.p99_seconds;
    let base_qps = 1.0 / probe.mean_execution_seconds;

    let rows: Vec<LoadRow> = LOAD_FACTORS
        .iter()
        .map(|&factor| {
            let offered_qps = factor * base_qps;
            let cached =
                VariantRow::from_report(&run_one(offered_qps, CACHE_CAPACITY, slo_p99_seconds));
            let uncached = VariantRow::from_report(&run_one(offered_qps, 0, slo_p99_seconds));
            for v in [&cached, &uncached] {
                assert_eq!(
                    v.cache_hits + v.cache_misses,
                    arrivals as u64,
                    "{name}: exactly one cache lookup per arrival"
                );
                assert_eq!(
                    v.completed + v.failed,
                    arrivals,
                    "{name}: arrivals accounted"
                );
            }
            assert!(cached.cache_hits > 0, "{name}: repeated shapes must hit");
            assert_eq!(uncached.cache_hits, 0, "{name}: disabled cache never hits");
            assert!(
                cached.total_p99_seconds < uncached.total_p99_seconds,
                "{name} @ {offered_qps:.0} qps: cached p99 {} must strictly beat uncached {}",
                cached.total_p99_seconds,
                uncached.total_p99_seconds
            );
            assert!(
                cached.achieved_qps >= uncached.achieved_qps - 1e-9,
                "{name} @ {offered_qps:.0} qps: cache must never lose throughput"
            );
            LoadRow {
                offered_qps,
                load_factor: factor,
                cached,
                uncached,
            }
        })
        .collect();

    let saturation_offered_qps = rows
        .iter()
        .filter(|r| r.cached.slo_met)
        .map(|r| r.offered_qps)
        .fold(0.0f64, f64::max);

    DeviceSweep {
        device: name,
        slo_p99_seconds,
        base_qps,
        saturation_offered_qps,
        rows,
    }
}

/// A number or an explicit `null` when the run had no successes (a
/// percentile over zero queries is meaningless, and the gate must see
/// that, not a fake zero).
fn num_or_null(v: f64, completed: usize) -> String {
    if completed == 0 {
        "null".to_string()
    } else {
        format!("{v}")
    }
}

fn variant_json(v: &VariantRow) -> String {
    format!(
        "{{\"achieved_qps\": {}, \"completed\": {}, \"failed\": {}, \
         \"dispatches\": {}, \"max_queue_depth\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"cache_evictions\": {}, \
         \"compile_seconds_total\": {}, \"busy_seconds\": {}, \
         \"duration_seconds\": {}, \"queueing_p99_seconds\": {}, \
         \"execution_p99_seconds\": {}, \"total_p50_seconds\": {}, \
         \"total_p95_seconds\": {}, \"total_p99_seconds\": {}, \"slo_met\": {}}}",
        v.achieved_qps,
        v.completed,
        v.failed,
        v.dispatches,
        v.max_queue_depth,
        v.cache_hits,
        v.cache_misses,
        v.cache_evictions,
        v.compile_seconds_total,
        v.busy_seconds,
        v.duration_seconds,
        num_or_null(v.queueing_p99_seconds, v.completed),
        num_or_null(v.execution_p99_seconds, v.completed),
        num_or_null(v.total_p50_seconds, v.completed),
        num_or_null(v.total_p95_seconds, v.completed),
        num_or_null(v.total_p99_seconds, v.completed),
        v.slo_met
    )
}

/// Render the campaign as the machine-readable `BENCH_service.json`
/// document the CI gate parses (hand-rolled: the workspace carries no JSON
/// serializer dependency).
pub fn to_json(n: usize, arrivals: usize, sweeps: &[DeviceSweep]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"service\",\n");
    out.push_str(&format!("  \"tuples_per_query\": {n},\n"));
    out.push_str(&format!("  \"arrivals\": {arrivals},\n"));
    out.push_str(&format!("  \"shapes\": {},\n", MIX.len()));
    out.push_str(&format!("  \"seed\": {},\n", super::SEED));
    out.push_str("  \"configs\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"device\": \"{}\", \"slo_p99_seconds\": {}, \"base_qps\": {}, \
             \"saturation_offered_qps\": {},\n     \"rows\": [\n",
            s.device, s.slo_p99_seconds, s.base_qps, s.saturation_offered_qps
        ));
        for (j, r) in s.rows.iter().enumerate() {
            let p99_gain = if r.cached.completed == 0 || r.uncached.completed == 0 {
                "null".to_string()
            } else {
                format!("{}", r.p99_gain())
            };
            out.push_str(&format!(
                "      {{\"offered_qps\": {}, \"load_factor\": {}, \"p99_gain\": {p99_gain}, \
                 \"cached\": {}, \"uncached\": {}}}{}\n",
                r.offered_qps,
                r.load_factor,
                variant_json(&r.cached),
                variant_json(&r.uncached),
                if j + 1 < s.rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_run_beats_uncached_at_every_load() {
        // One small device, two loads: the assertions inside sweep_device
        // are the test (one lookup per arrival, cached p99 strictly wins,
        // throughput never loses).
        let sweep = sweep_device("fermi_c2050", DeviceConfig::fermi_c2050(), 1 << 12, 16);
        assert_eq!(sweep.rows.len(), LOAD_FACTORS.len());
        assert!(sweep.slo_p99_seconds > 0.0);
        assert!(sweep.base_qps > 0.0);
        for r in &sweep.rows {
            assert!(r.p99_gain() > 1.0, "cache must shrink p99 at every load");
        }
    }

    #[test]
    fn sweep_finds_a_saturation_knee() {
        let sweep = sweep_device("fermi_c2050", DeviceConfig::fermi_c2050(), 1 << 12, 24);
        let first = sweep.rows.first().expect("rows");
        let last = sweep.rows.last().expect("rows");
        assert!(
            first.cached.slo_met,
            "lightest load must meet the calibrated SLO: p99 {} vs slo {}",
            first.cached.total_p99_seconds, sweep.slo_p99_seconds
        );
        assert!(
            !last.cached.slo_met,
            "heaviest load must break the SLO: p99 {} vs slo {}",
            last.cached.total_p99_seconds, sweep.slo_p99_seconds
        );
        assert!(sweep.saturation_offered_qps > 0.0);
        assert!(sweep.saturation_offered_qps < last.offered_qps);
    }

    #[test]
    fn json_export_is_well_formed() {
        let sweeps = vec![sweep_device(
            "fermi_c2050",
            DeviceConfig::fermi_c2050(),
            1 << 12,
            16,
        )];
        let json = to_json(1 << 12, 16, &sweeps);
        kw_gpu_sim::validate_json(&json).expect("service JSON parses");
        let doc = kw_gpu_sim::parse_json(&json).expect("service JSON parses into values");
        let configs = doc.get("configs").unwrap().as_array().unwrap();
        assert_eq!(configs.len(), 1);
        let rows = configs[0].get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), LOAD_FACTORS.len());
        for key in ["offered_qps", "p99_gain", "cached", "uncached"] {
            assert!(rows[0].get(key).is_some(), "missing {key}");
        }
        assert!(rows[0]
            .get("cached")
            .unwrap()
            .get("total_p99_seconds")
            .is_some());
    }

    #[test]
    fn all_failed_variant_exports_null_percentiles() {
        let v = VariantRow {
            achieved_qps: 0.0,
            completed: 0,
            failed: 4,
            dispatches: 1,
            max_queue_depth: 4,
            cache_hits: 3,
            cache_misses: 1,
            cache_evictions: 0,
            compile_seconds_total: 0.001,
            busy_seconds: 0.0,
            duration_seconds: 0.5,
            queueing_p99_seconds: 0.0,
            execution_p99_seconds: 0.0,
            total_p50_seconds: 0.0,
            total_p95_seconds: 0.0,
            total_p99_seconds: 0.0,
            slo_met: false,
        };
        let json = variant_json(&v);
        let doc = kw_gpu_sim::parse_json(&json).expect("variant JSON parses");
        assert_eq!(
            doc.get("total_p99_seconds"),
            Some(&kw_gpu_sim::JsonValue::Null),
            "all-failed runs must export explicit nulls, not fake zeros"
        );
        assert_eq!(doc.get("failed").unwrap().as_f64(), Some(4.0));
    }
}
