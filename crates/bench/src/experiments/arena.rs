//! Scratch-arena alloc-churn campaign over the paper's micro patterns.
//!
//! Before the device-side arena, every intermediate of every step paid a
//! device `alloc`/`free` round trip: O(steps) tracked allocations per
//! plan, multiplied by the chunk count for out-of-core runs. The arena
//! collapses that to exactly one reservation per plan — sub-allocations
//! are pure offset arithmetic and emit no spans — so the Alloc/Free span
//! counts in the trace are the direct measure of the churn removed.
//!
//! For each of patterns (a)–(d) this experiment runs the plan fused and
//! unfused on fresh devices, byte-checks the two outputs against each
//! other, and records: the Alloc/Free spans each run actually emitted
//! (the O(1) claim the regression gate pins), the sub-allocations the
//! arena absorbed span-free (the churn that used to be device traffic),
//! the reservation and high-water bytes, spill count (zero: the admission
//! predictor replays the executor's schedule, so the reservation is
//! exact), and the fused/unfused wallclocks (no regression from routing
//! every buffer through the arena).

use kw_gpu_sim::SpanKind;
use kw_tpch::Pattern;

/// One pattern of the arena churn table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pattern label, e.g. `(a)`.
    pub pattern: String,
    /// Alloc spans the fused run emitted (the arena's one reservation).
    pub fused_alloc_spans: u64,
    /// Free spans the fused run emitted (the one release).
    pub fused_free_spans: u64,
    /// Alloc spans the unfused run emitted.
    pub unfused_alloc_spans: u64,
    /// Free spans the unfused run emitted.
    pub unfused_free_spans: u64,
    /// Sub-allocations the arena served span-free, fused.
    pub fused_sub_allocs: u64,
    /// Sub-allocations the arena served span-free, unfused (one per
    /// per-step intermediate — the churn the arena absorbed).
    pub unfused_sub_allocs: u64,
    /// Upfront reservation of the unfused run (the larger envelope).
    pub reservation_bytes: u64,
    /// High-water mark the unfused run actually reached.
    pub high_water_bytes: u64,
    /// Overflow spills past the reservation, summed over both runs.
    pub spills: u64,
    /// Fused end-to-end wallclock, seconds.
    pub fused_seconds: f64,
    /// Unfused end-to-end wallclock, seconds.
    pub unfused_seconds: f64,
}

impl Row {
    /// Device alloc/free pairs the arena removed from the unfused run:
    /// every sub-allocation used to be a tracked device allocation.
    pub fn saved_alloc_pairs(&self) -> u64 {
        self.unfused_sub_allocs
            .saturating_sub(self.unfused_alloc_spans)
    }
}

/// The patterns the campaign covers — (e) has no unfused counterpart
/// distinct enough to quantify churn, so the table matches Figure 17's
/// (a)–(d) set.
pub fn patterns() -> [Pattern; 4] {
    [Pattern::A, Pattern::B, Pattern::C, Pattern::D]
}

fn span_count(report: &kw_core::PlanReport, kind: SpanKind) -> u64 {
    report.spans.iter().filter(|s| s.kind == kind).count() as u64
}

/// Run the campaign at `n` tuples per input.
pub fn run(n: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for pattern in patterns() {
        let w = pattern.build(n, super::SEED);
        let cfg = super::resident();

        let mut fused_dev = super::device();
        let fused = w.run(&mut fused_dev, &cfg).expect("fused arena run");
        let mut base_dev = super::device();
        let base = w
            .run(&mut base_dev, &cfg.baseline())
            .expect("unfused arena run");
        assert_eq!(
            fused.outputs, base.outputs,
            "{}: fused and unfused outputs must stay byte-identical",
            w.name
        );

        let fused_arena = fused.arena.expect("fused run reports arena stats");
        let base_arena = base.arena.expect("unfused run reports arena stats");
        let spills = fused_dev.metrics().counter("kw_arena_spills_total")
            + base_dev.metrics().counter("kw_arena_spills_total");
        rows.push(Row {
            pattern: pattern.label().to_string(),
            fused_alloc_spans: span_count(&fused, SpanKind::Alloc),
            fused_free_spans: span_count(&fused, SpanKind::Free),
            unfused_alloc_spans: span_count(&base, SpanKind::Alloc),
            unfused_free_spans: span_count(&base, SpanKind::Free),
            fused_sub_allocs: fused_arena.sub_allocs,
            unfused_sub_allocs: base_arena.sub_allocs,
            reservation_bytes: base_arena.reservation,
            high_water_bytes: base_arena.high_water,
            spills,
            fused_seconds: fused.total_seconds,
            unfused_seconds: base.total_seconds,
        });
    }
    rows
}

/// Render `rows` as the machine-readable `BENCH_arena.json` document the
/// regression gate diffs against its committed baseline (hand-rolled: the
/// workspace carries no JSON serializer dependency).
pub fn to_json(n: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"arena\",\n");
    out.push_str(&format!("  \"tuples_per_input\": {n},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": \"{}\", \
             \"fused_alloc_spans\": {}, \"fused_free_spans\": {}, \
             \"unfused_alloc_spans\": {}, \"unfused_free_spans\": {}, \
             \"fused_sub_allocs\": {}, \"unfused_sub_allocs\": {}, \
             \"saved_alloc_pairs\": {}, \
             \"reservation_bytes\": {}, \"high_water_bytes\": {}, \
             \"spills\": {}, \
             \"fused_seconds\": {}, \"unfused_seconds\": {}}}{}\n",
            r.pattern,
            r.fused_alloc_spans,
            r.fused_free_spans,
            r.unfused_alloc_spans,
            r.unfused_free_spans,
            r.fused_sub_allocs,
            r.unfused_sub_allocs,
            r.saved_alloc_pairs(),
            r.reservation_bytes,
            r.high_water_bytes,
            r.spills,
            r.fused_seconds,
            r.unfused_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_spans_are_constant_and_spill_free() {
        for r in run(1 << 12) {
            assert_eq!(r.fused_alloc_spans, 1, "{r:?}");
            assert_eq!(r.fused_free_spans, 1, "{r:?}");
            assert_eq!(r.unfused_alloc_spans, 1, "{r:?}");
            assert_eq!(r.unfused_free_spans, 1, "{r:?}");
            assert_eq!(r.spills, 0, "{r:?}");
            assert!(r.high_water_bytes <= r.reservation_bytes, "{r:?}");
            // The unfused plan has more steps than the fused one, so the
            // arena must have absorbed at least as much churn.
            assert!(r.unfused_sub_allocs >= r.fused_sub_allocs, "{r:?}");
            assert!(r.saved_alloc_pairs() > 0, "{r:?}");
        }
    }

    #[test]
    fn json_export_is_well_formed() {
        let rows = run(1 << 10);
        assert_eq!(rows.len(), patterns().len());
        let json = to_json(1 << 10, &rows);
        kw_gpu_sim::validate_json(&json).expect("arena JSON parses");
        for key in [
            "\"fused_alloc_spans\"",
            "\"unfused_sub_allocs\"",
            "\"saved_alloc_pairs\"",
            "\"reservation_bytes\"",
            "\"spills\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
