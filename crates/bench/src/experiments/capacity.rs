//! The "Larger Input Data" benefit (Section 2.3, benefit #4): "since kernel
//! fusion reduces intermediate data thereby freeing GPU memory, larger data
//! sets can be processed on the GPU".
//!
//! Measured directly: on a memory-limited device, binary-search the largest
//! input that executes GPU-resident with and without fusion. The baseline
//! dies earlier because it must hold intermediate results in global memory.

use kw_core::{ExecMode, WeaverConfig, WeaverError};
use kw_gpu_sim::{Device, DeviceConfig};
use kw_tpch::Pattern;

use super::SEED;

/// Result of the capacity search for one pattern.
#[derive(Debug, Clone, Copy)]
pub struct CapacityRow {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// Largest tuple count that fits unfused.
    pub baseline_max_tuples: usize,
    /// Largest tuple count that fits fused.
    pub fused_max_tuples: usize,
}

impl CapacityRow {
    /// How much larger an input fusion admits.
    pub fn gain(&self) -> f64 {
        self.fused_max_tuples as f64 / self.baseline_max_tuples as f64
    }
}

/// A 64 MiB device: small enough that the capacity search stays fast.
fn small_device() -> Device {
    Device::new(DeviceConfig {
        global_mem_bytes: 64 << 20,
        ..DeviceConfig::fermi_c2050()
    })
}

fn fits(pattern: Pattern, n: usize, fusion: bool) -> bool {
    let w = pattern.build(n, SEED);
    let config = WeaverConfig {
        fusion,
        mode: ExecMode::Resident,
        ..WeaverConfig::default()
    };
    let mut dev = small_device();
    match w.run(&mut dev, &config) {
        Ok(_) => true,
        Err(WeaverError::Sim(kw_gpu_sim::SimError::OutOfMemory { .. })) => false,
        Err(other) => panic!("unexpected failure at n={n}: {other}"),
    }
}

/// Largest n (tuples per input) that executes resident, by binary search
/// over `[lo, hi)`.
fn max_fitting(pattern: Pattern, fusion: bool, mut lo: usize, mut hi: usize) -> usize {
    debug_assert!(fits(pattern, lo, fusion));
    while hi - lo > lo / 16 + 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(pattern, mid, fusion) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Run the capacity search for the given patterns.
pub fn run(patterns: &[Pattern]) -> Vec<CapacityRow> {
    patterns
        .iter()
        .map(|&pattern| {
            let hi = 4 << 20;
            CapacityRow {
                pattern,
                baseline_max_tuples: max_fitting(pattern, false, 1 << 10, hi),
                fused_max_tuples: max_fitting(pattern, true, 1 << 10, hi),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_admits_larger_inputs() {
        // Pattern (a): the unfused pipeline holds intermediates; fused holds
        // only input + final output.
        let rows = run(&[Pattern::A]);
        let r = rows[0];
        assert!(
            r.gain() > 1.2,
            "fusion should admit substantially larger inputs: {r:?}"
        );
    }
}
