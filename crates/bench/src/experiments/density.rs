//! Operator density (Section 2.3): "RA operators ... exhibit low operation
//! density, ops per byte transferred from memory. Fusion naturally improves
//! operator density and hence performance."
//!
//! Measured directly from the simulator's counters: ALU operations per byte
//! of global-memory traffic, fused vs unfused.

use kw_tpch::Pattern;

use super::{resident, run_pair, DEFAULT_N, SEED};

/// One pattern's operator-density measurement.
#[derive(Debug, Clone, Copy)]
pub struct DensityRow {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// ALU ops per global byte, baseline.
    pub baseline_density: f64,
    /// ALU ops per global byte, fused.
    pub fused_density: f64,
}

impl DensityRow {
    /// Density improvement factor from fusion.
    pub fn improvement(&self) -> f64 {
        self.fused_density / self.baseline_density
    }
}

/// Measure operator density across the five patterns.
pub fn run() -> Vec<DensityRow> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(DEFAULT_N, SEED);
            let (fused, base) = run_pair(&w, &resident());
            DensityRow {
                pattern,
                baseline_density: base.stats.alu_ops as f64 / base.stats.global_bytes() as f64,
                fused_density: fused.stats.alu_ops as f64 / fused.stats.global_bytes() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_improves_density_everywhere() {
        for r in run() {
            assert!(
                r.improvement() > 1.0,
                "{} density should improve: {r:?}",
                r.pattern.label()
            );
            // RA ops are memory-bound: density stays well below 1 op/byte.
            assert!(r.baseline_density < 1.0, "{r:?}");
        }
    }
}
