//! Resilient execution under memory pressure and injected faults.
//!
//! Two sweeps, both over micro-benchmark pattern (a) (an elementwise
//! SELECT chain, so the whole degradation ladder is reachable):
//!
//! * **Ladder sweep** — shrink the device until plans stop fitting
//!   GPU-resident. Fusion's smaller footprint (§2.3 benefit #4) keeps the
//!   fused plan on the Resident rung at capacities where the baseline has
//!   already degraded to Staged or Chunked, and cheaper rungs mean cheaper
//!   queries.
//! * **Fault sweep** — raise the transient fault rate and count the retries
//!   both plans need. A fused plan issues fewer kernel launches and fewer
//!   transfers per attempt, so it exposes a smaller fault cross-section and
//!   re-executes less work to finish.
//!
//! Sweeps return `Result<Vec<Row>, SweepError>` rather than panicking: a
//! rung that fails resiliently (or a driver that loses its
//! [`kw_core::ResilienceReport`]) reports *which* workload/configuration
//! failed and lets the caller decide whether to skip the table or abort.

use std::fmt;

use kw_core::{admit, compile, execute_resilient, AdmittedMode, RetryPolicy, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig};
use kw_relational::Relation;
use kw_tpch::{Pattern, Workload};

use super::SEED;

/// Why a robustness sweep could not produce a row.
#[derive(Debug)]
pub enum SweepError {
    /// A resilient execution failed even with the sweep's generous retry
    /// budget.
    Execution {
        /// Workload that failed.
        workload: String,
        /// Whether fusion was enabled for the failing run.
        fusion: bool,
        /// The underlying executor error.
        source: kw_core::WeaverError,
    },
    /// The resilient driver returned a report without its
    /// [`kw_core::ResilienceReport`] — a driver bug, previously a mid-sweep
    /// panic via `unwrap()`.
    MissingResilience {
        /// Workload whose report was incomplete.
        workload: String,
        /// Whether fusion was enabled for the incomplete run.
        fusion: bool,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Execution {
                workload,
                fusion,
                source,
            } => write!(
                f,
                "{workload} (fusion={fusion}) failed resiliently: {source}"
            ),
            SweepError::MissingResilience { workload, fusion } => write!(
                f,
                "{workload} (fusion={fusion}) returned no resilience report"
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Execution { source, .. } => Some(source),
            SweepError::MissingResilience { .. } => None,
        }
    }
}

/// One device size in the degradation-ladder sweep.
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// Device global-memory bytes.
    pub capacity: u64,
    /// Rung the fused plan finished on.
    pub fused_mode: AdmittedMode,
    /// Rung the unfused plan finished on.
    pub baseline_mode: AdmittedMode,
    /// Fused end-to-end seconds.
    pub fused_seconds: f64,
    /// Baseline end-to-end seconds.
    pub baseline_seconds: f64,
}

/// One fault rate in the fault-rate sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultRow {
    /// Per-operation transient fault probability (transfers + launches).
    pub rate: f64,
    /// Transient faults the fused plan retried through.
    pub fused_retries: u32,
    /// Transient faults the baseline retried through.
    pub baseline_retries: u32,
    /// Fused GPU seconds including re-executed attempts.
    pub fused_gpu_seconds: f64,
    /// Baseline GPU seconds including re-executed attempts.
    pub baseline_gpu_seconds: f64,
    /// Fused end-to-end seconds including backoff.
    pub fused_seconds: f64,
    /// Baseline end-to-end seconds including backoff.
    pub baseline_seconds: f64,
}

/// Generous retry budget so the sweep itself never dies to bad luck; the
/// per-rung default of 4 is exercised by the unit/property tests instead.
fn sweep_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 64,
        base_backoff_seconds: 1e-4,
        backoff_multiplier: 1.1,
    }
}

fn run_resilient(
    w: &Workload,
    device: &mut Device,
    fusion: bool,
) -> Result<kw_core::PlanReport, SweepError> {
    let config = WeaverConfig {
        fusion,
        ..WeaverConfig::default()
    };
    execute_resilient(&w.plan, &w.bindings(), device, &config, &sweep_policy()).map_err(|e| {
        SweepError::Execution {
            workload: w.name.clone(),
            fusion,
            source: e,
        }
    })
}

/// The report's final ladder rung, or a typed error if the driver lost its
/// resilience report (never a panic mid-sweep).
fn final_mode(
    report: &kw_core::PlanReport,
    w: &Workload,
    fusion: bool,
) -> Result<AdmittedMode, SweepError> {
    report
        .resilience
        .as_ref()
        .map(|r| r.final_mode)
        .ok_or_else(|| SweepError::MissingResilience {
            workload: w.name.clone(),
            fusion,
        })
}

/// Predicted resident peaks `(fused, baseline)` for `w`, used to position
/// the capacity sweep around the interesting thresholds.
pub fn resident_peaks(w: &Workload) -> (u64, u64) {
    let bindings = w.bindings();
    let fused = compile(&w.plan, &WeaverConfig::default()).expect("compile fused");
    let base = compile(&w.plan, &WeaverConfig::default().baseline()).expect("compile baseline");
    let f = admit(&w.plan, &fused, &bindings, u64::MAX).expect("admit fused");
    let b = admit(&w.plan, &base, &bindings, u64::MAX).expect("admit baseline");
    (f.resident_peak, b.resident_peak)
}

/// Degradation-ladder sweep: pattern (a) with `n` tuples, on devices sized
/// around the fused/baseline resident thresholds.
///
/// # Errors
///
/// Returns [`SweepError`] when a rung fails to execute resiliently or a
/// report comes back without resilience info; rows already computed are
/// discarded so a partial sweep is never mistaken for a full one.
pub fn run_ladder(n: usize) -> Result<Vec<LadderRow>, SweepError> {
    let w = Pattern::A.build(n, SEED);
    let (fused_peak, base_peak) = resident_peaks(&w);
    let capacities = [
        base_peak + base_peak / 4,    // both fit resident
        (fused_peak + base_peak) / 2, // only the fused plan fits resident
        fused_peak / 2,               // neither fits; staged territory
        fused_peak / 8,               // chunked territory
    ];

    let mut oracle: Option<std::collections::BTreeMap<kw_core::NodeId, Relation>> = None;
    let mut rows = Vec::with_capacity(capacities.len());
    for &capacity in &capacities {
        let cfg = DeviceConfig {
            global_mem_bytes: capacity,
            ..DeviceConfig::fermi_c2050()
        };
        let mut fused_dev = Device::new(cfg.clone());
        let fused = run_resilient(&w, &mut fused_dev, true)?;
        let mut base_dev = Device::new(cfg);
        let base = run_resilient(&w, &mut base_dev, false)?;

        assert_eq!(
            fused.outputs, base.outputs,
            "ladder rung changed the answer"
        );
        let o = oracle.get_or_insert_with(|| fused.outputs.clone());
        assert_eq!(&fused.outputs, o, "capacity changed the answer");
        assert_eq!(fused_dev.memory().in_use(), 0, "fused run leaked");
        assert_eq!(base_dev.memory().in_use(), 0, "baseline run leaked");

        rows.push(LadderRow {
            capacity,
            fused_mode: final_mode(&fused, &w, true)?,
            baseline_mode: final_mode(&base, &w, false)?,
            fused_seconds: fused.total_seconds,
            baseline_seconds: base.total_seconds,
        });
    }
    Ok(rows)
}

/// Default fault rates for [`run_faults`]. A single attempt of pattern (a)
/// exposes only a handful of faultable operations, so the sweep reaches high
/// rates to show retries actually happening.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.25];

/// Fault-rate sweep: pattern (a) with `n` tuples on a full-size device,
/// transient faults injected on transfers and launches at each `rate`.
///
/// # Errors
///
/// Same contract as [`run_ladder`].
pub fn run_faults(n: usize, rates: &[f64]) -> Result<Vec<FaultRow>, SweepError> {
    let w = Pattern::A.build(n, SEED);
    let mut oracle: Option<std::collections::BTreeMap<kw_core::NodeId, Relation>> = None;

    let mut rows = Vec::with_capacity(rates.len());
    for &rate in rates {
        let faults = FaultConfig {
            seed: SEED,
            transfer_rate: rate,
            launch_rate: rate,
            ..FaultConfig::default()
        };
        let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
        fused_dev.inject_faults(faults.clone());
        let fused = run_resilient(&w, &mut fused_dev, true)?;
        let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
        base_dev.inject_faults(faults);
        let base = run_resilient(&w, &mut base_dev, false)?;

        assert_eq!(fused.outputs, base.outputs, "faults changed the answer");
        let o = oracle.get_or_insert_with(|| fused.outputs.clone());
        assert_eq!(&fused.outputs, o, "fault rate changed the answer");
        assert_eq!(fused_dev.memory().in_use(), 0, "fused run leaked");
        assert_eq!(base_dev.memory().in_use(), 0, "baseline run leaked");

        let (fr, br) = match (fused.resilience.as_ref(), base.resilience.as_ref()) {
            (Some(f), Some(b)) => (f, b),
            (missing_fused, _) => {
                return Err(SweepError::MissingResilience {
                    workload: w.name.clone(),
                    fusion: missing_fused.is_none(),
                })
            }
        };
        rows.push(FaultRow {
            rate,
            fused_retries: fr.retries,
            baseline_retries: br.retries,
            fused_gpu_seconds: fused.gpu_seconds,
            baseline_gpu_seconds: base.gpu_seconds,
            fused_seconds: fused.total_seconds,
            baseline_seconds: base.total_seconds,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_plans_stay_resident_longer() {
        let rows = run_ladder(1 << 15).unwrap();
        assert_eq!(rows[0].fused_mode, AdmittedMode::Resident);
        assert_eq!(rows[0].baseline_mode, AdmittedMode::Resident);
        // The threshold capacity: fusion still fits, the baseline degraded.
        assert_eq!(rows[1].fused_mode, AdmittedMode::Resident);
        assert_ne!(rows[1].baseline_mode, AdmittedMode::Resident);
        // The smallest capacity pushes everyone off Resident.
        assert_ne!(rows[3].fused_mode, AdmittedMode::Resident);
        assert!(matches!(
            rows[3].baseline_mode,
            AdmittedMode::Chunked { .. }
        ));
    }

    #[test]
    fn faults_are_survived_and_fused_exposes_less_cross_section() {
        let rows = run_faults(1 << 14, &FAULT_RATES).unwrap();
        assert_eq!(rows[0].fused_retries + rows[0].baseline_retries, 0);
        let faulty_retries: u32 = rows[1..]
            .iter()
            .map(|r| r.fused_retries + r.baseline_retries)
            .sum();
        assert!(
            faulty_retries > 0,
            "sweep never injected a survivable fault"
        );
        // Under faults the baseline re-executes more work than fused.
        let hot = rows.last().unwrap();
        assert!(hot.baseline_gpu_seconds > hot.fused_gpu_seconds);
    }
}
