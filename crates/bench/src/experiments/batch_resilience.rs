//! Batch resilience campaign: goodput under injected faults and memory
//! pressure.
//!
//! The multi-query scheduler claims each query is its own fault domain:
//! transient faults retry with backoff, capacity misses re-route down the
//! admission ladder, and nothing short of a fatal per-query error costs
//! more than that one query. This campaign puts numbers on the claim by
//! sweeping transient fault rate × batch size on a deliberately small
//! device:
//!
//! * every batch is oversubscribed — its summed resident peaks exceed the
//!   device, so admission must split it into sequential waves;
//! * every batch carries one *whale* (6× the normal tuple count) that
//!   cannot fit a solo wave and must degrade down the
//!   Resident → Staged → Chunked ladder;
//! * fault rates climb from 0 to 10% on transfers and launches.
//!
//! Reported per cell: outcome taxonomy (completed / retried / degraded /
//! quarantined), waves, total retries and backoff, goodput (successful
//! queries per second of makespan) and tail latency. Surviving queries are
//! checked byte-identical against the fault-free run of the same batch —
//! fault isolation must never change an answer, only delay or drop it.

use std::collections::BTreeMap;

use kw_core::{execute_batch_with_policy, BatchQuery, NodeId, RetryPolicy, WeaverConfig};
use kw_gpu_sim::{Device, DeviceConfig, FaultConfig};
use kw_relational::Relation;
use kw_tpch::Workload;

use super::scheduler::MIX;
use super::SEED;

/// One (fault rate × batch size) cell of the campaign.
#[derive(Debug, Clone)]
pub struct Row {
    /// Per-operation transient fault probability (transfers + launches).
    pub fault_rate: f64,
    /// Queries submitted in the batch (including the whale).
    pub queries: usize,
    /// Admission waves the batch actually issued.
    pub waves: usize,
    /// Queries that completed clean on the first try.
    pub completed: usize,
    /// Queries that completed after absorbing transient faults.
    pub retried: usize,
    /// Queries that completed via a cheaper ladder mode.
    pub degraded: usize,
    /// Queries quarantined without producing outputs.
    pub quarantined: usize,
    /// Transient-fault retries absorbed across the whole batch.
    pub retries_total: u64,
    /// Simulated seconds of retry backoff charged across the batch.
    pub backoff_seconds: f64,
    /// Successful queries per second of batch makespan.
    pub goodput_qps: f64,
    /// Shared-device makespan of the batch, seconds.
    pub makespan_seconds: f64,
    /// 99th-percentile per-query latency over successful queries, seconds.
    pub latency_p99_seconds: f64,
}

/// Default fault rates swept by the campaign.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
/// Default batch sizes swept by the campaign.
pub const BATCH_SIZES: [usize; 2] = [4, 8];
/// The whale's tuple count as a multiple of the campaign's `n`.
pub const WHALE_FACTOR: usize = 6;

/// Generous retry budget so the campaign measures the taxonomy rather than
/// dying to bad luck; the default per-phase budget of 4 is exercised by
/// the unit and property tests instead.
fn campaign_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 64,
        base_backoff_seconds: 1e-4,
        backoff_multiplier: 1.1,
    }
}

/// Fused resident peak of each MIX pattern at `n` tuples.
fn mix_peaks(n: usize) -> Vec<u64> {
    MIX.iter()
        .map(|p| {
            let w = p.build(n, SEED);
            super::robustness::resident_peaks(&w).0
        })
        .collect()
}

/// Device capacity that forces the interesting regimes at tuple count `n`:
/// the largest normal query's resident peak plus half the smallest's, so
/// every normal query fits a wave solo but the heaviest can never share
/// one (any batch of 4+ splits into multiple waves), while the
/// [`WHALE_FACTOR`]× whale cannot fit even a solo wave and takes the
/// ladder.
pub fn capacity_for(n: usize) -> u64 {
    let peaks = mix_peaks(n);
    let max = peaks.iter().copied().max().expect("MIX is non-empty");
    let min = peaks.iter().copied().min().expect("MIX is non-empty");
    max + min / 2
}

/// The campaign's batch at size `k`: `k - 1` normal queries cycling the
/// scheduler's pattern mix, plus one whale at `WHALE_FACTOR * n` tuples of
/// the mix's largest-footprint pattern — so the whale's resident peak
/// (~`WHALE_FACTOR`× that pattern's) exceeds [`capacity_for`]'s 2.5× and
/// the whale is guaranteed onto the ladder.
fn build_batch(n: usize, k: usize) -> Vec<Workload> {
    let peaks = mix_peaks(n);
    let heaviest = (0..MIX.len())
        .max_by_key(|&i| peaks[i])
        .expect("MIX is non-empty");
    let mut workloads: Vec<Workload> = (0..k.saturating_sub(1))
        .map(|i| MIX[i % MIX.len()].build(n, SEED + i as u64))
        .collect();
    workloads.push(MIX[heaviest].build(n * WHALE_FACTOR, SEED + 1000));
    workloads
}

fn run_cell(
    workloads: &[Workload],
    rate: f64,
    capacity: u64,
    clean_outputs: Option<&[BTreeMap<NodeId, Relation>]>,
) -> (Row, Vec<BTreeMap<NodeId, Relation>>) {
    let bindings: Vec<Vec<(&str, &Relation)>> = workloads.iter().map(|w| w.bindings()).collect();
    let queries: Vec<BatchQuery<'_>> = workloads
        .iter()
        .zip(&bindings)
        .map(|(w, b)| BatchQuery {
            name: &w.name,
            plan: &w.plan,
            bindings: b,
        })
        .collect();

    let mut device = Device::new(DeviceConfig {
        global_mem_bytes: capacity,
        ..DeviceConfig::fermi_c2050()
    });
    if rate > 0.0 {
        device.inject_faults(FaultConfig {
            seed: SEED,
            transfer_rate: rate,
            launch_rate: rate,
            ..FaultConfig::default()
        });
    }
    let batch = execute_batch_with_policy(
        &queries,
        &mut device,
        &WeaverConfig::default(),
        &campaign_policy(),
    )
    .expect("batches never abort wholesale");
    kw_gpu_sim::reconcile(device.spans(), device.stats()).expect("batch trace reconciles");
    assert_eq!(
        device.memory().in_use(),
        0,
        "rate {rate}: batch leaked device memory"
    );

    // Fault isolation must never change an answer: every survivor matches
    // the fault-free run of the same batch byte-for-byte.
    if let Some(clean) = clean_outputs {
        for (i, q) in batch.queries.iter().enumerate() {
            if q.outcome.is_success() {
                assert_eq!(
                    q.outputs, clean[i],
                    "rate {rate}: survivor {} diverged from fault-free run",
                    q.name
                );
            }
        }
    }

    let outputs: Vec<BTreeMap<NodeId, Relation>> =
        batch.queries.iter().map(|q| q.outputs.clone()).collect();
    let row = Row {
        fault_rate: rate,
        queries: queries.len(),
        waves: batch.waves,
        completed: batch.completed_count(),
        retried: batch.retried_count(),
        degraded: batch.degraded_count(),
        quarantined: batch.quarantined_count(),
        retries_total: batch.queries.iter().map(|q| u64::from(q.retries)).sum(),
        backoff_seconds: batch.queries.iter().map(|q| q.backoff_seconds).sum(),
        goodput_qps: batch.goodput_qps,
        makespan_seconds: batch.makespan_seconds,
        latency_p99_seconds: batch.latency_p99_seconds,
    };
    (row, outputs)
}

/// Run the full campaign: `rates` × `sizes` cells at `n` tuples per normal
/// query, on a [`capacity_for`]-sized device. Each size's fault-free cell
/// runs first and its outputs anchor the byte-identity check for every
/// faulted cell of that size.
pub fn run(n: usize, rates: &[f64], sizes: &[usize]) -> Vec<Row> {
    let capacity = capacity_for(n);
    let mut rows = Vec::with_capacity(rates.len() * sizes.len());
    for &k in sizes {
        let workloads = build_batch(n, k);
        let (clean_row, clean_outputs) = run_cell(&workloads, 0.0, capacity, None);
        for &rate in rates {
            if rate == 0.0 {
                rows.push(clean_row.clone());
            } else {
                let (row, _) = run_cell(&workloads, rate, capacity, Some(&clean_outputs));
                rows.push(row);
            }
        }
    }
    rows
}

/// Render `rows` as the machine-readable `BENCH_batch_resilience.json`
/// document the CI gate parses (hand-rolled: the workspace carries no JSON
/// serializer dependency).
pub fn to_json(n: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"batch_resilience\",\n");
    out.push_str(&format!("  \"tuples_per_query\": {n},\n"));
    out.push_str(&format!("  \"whale_factor\": {WHALE_FACTOR},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fault_rate\": {}, \"queries\": {}, \"waves\": {}, \
             \"completed\": {}, \"retried\": {}, \"degraded\": {}, \
             \"quarantined\": {}, \"retries_total\": {}, \
             \"backoff_seconds\": {}, \"goodput_qps\": {}, \
             \"makespan_seconds\": {}, \"latency_p99_seconds\": {}}}{}\n",
            r.fault_rate,
            r.queries,
            r.waves,
            r.completed,
            r.retried,
            r.degraded,
            r.quarantined,
            r.retries_total,
            r.backoff_seconds,
            r.goodput_qps,
            r.makespan_seconds,
            r.latency_p99_seconds,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Sanity hook used by tests and the example: the taxonomy accounts for
/// every query exactly once.
pub fn taxonomy_is_total(r: &Row) -> bool {
    r.completed + r.retried + r.degraded + r.quarantined == r.queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_batches_split_into_waves_and_degrade_the_whale() {
        let rows = run(1 << 12, &[0.0], &[4]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(taxonomy_is_total(r), "{r:?}");
        assert_eq!(r.quarantined, 0, "{r:?}");
        assert_eq!(r.retries_total, 0, "{r:?}");
        assert!(r.waves >= 2, "oversubscribed batch must split: {r:?}");
        assert!(r.degraded >= 1, "the whale must ride the ladder: {r:?}");
        assert!(r.goodput_qps > 0.0);
    }

    #[test]
    fn faulted_batches_retry_and_keep_goodput_positive() {
        let rows = run(1 << 12, &[0.0, 0.10], &[4]);
        assert_eq!(rows.len(), 2);
        let (clean, hot) = (&rows[0], &rows[1]);
        assert!(taxonomy_is_total(hot), "{hot:?}");
        assert!(
            hot.retries_total > 0,
            "10% faults must force at least one retry: {hot:?}"
        );
        assert!(hot.backoff_seconds > 0.0);
        assert!(hot.goodput_qps > 0.0, "{hot:?}");
        // Backoff and re-execution cost wallclock relative to the clean run.
        assert!(hot.makespan_seconds > clean.makespan_seconds, "{hot:?}");
    }

    #[test]
    fn json_export_is_well_formed() {
        let rows = run(1 << 12, &[0.0], &[4]);
        let json = to_json(1 << 12, &rows);
        kw_gpu_sim::validate_json(&json).expect("batch_resilience JSON parses");
        for key in [
            "\"fault_rate\"",
            "\"goodput_qps\"",
            "\"quarantined\"",
            "\"waves\"",
            "\"latency_p99_seconds\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
