//! Figure 18: GPU global-memory access cycles with and without fusion.
//!
//! Paper result: fusion cuts global-memory access time by ≈ 59% on average
//! across the patterns (the paper collects this with the `clock()`
//! intrinsic; the simulator reports the same quantity directly).

use kw_tpch::Pattern;

use super::{geomean, resident, run_pair, DEFAULT_N, SEED};

/// One pattern's Figure 18 measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig18Row {
    /// Which micro-benchmark pattern.
    pub pattern: Pattern,
    /// Global-memory access cycles, baseline.
    pub baseline_cycles: u64,
    /// Global-memory access cycles, fused.
    pub fused_cycles: u64,
}

impl Fig18Row {
    /// Fractional reduction in memory access cycles (0.59 = 59% saved).
    pub fn reduction(&self) -> f64 {
        1.0 - self.fused_cycles as f64 / self.baseline_cycles as f64
    }
}

/// Run Figure 18 over all five patterns.
pub fn run() -> Vec<Fig18Row> {
    Pattern::all()
        .into_iter()
        .map(|pattern| {
            let w = pattern.build(DEFAULT_N, SEED);
            let (fused, base) = run_pair(&w, &resident());
            Fig18Row {
                pattern,
                baseline_cycles: base.stats.global_access_cycles,
                fused_cycles: fused.stats.global_access_cycles,
            }
        })
        .collect()
}

/// Average reduction across the patterns (the paper's 59%).
pub fn average_reduction(rows: &[Fig18Row]) -> f64 {
    1.0 - geomean(
        &rows
            .iter()
            .map(|r| r.fused_cycles as f64 / r.baseline_cycles as f64)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_cycles_drop_substantially() {
        let rows = run();
        for r in &rows {
            assert!(
                r.reduction() > 0.1,
                "{} should cut memory cycles: {r:?}",
                r.pattern.label()
            );
        }
        let avg = average_reduction(&rows);
        // Paper: 59%. Accept a band around it.
        assert!(avg > 0.4 && avg < 0.85, "average reduction {avg}");
    }
}
