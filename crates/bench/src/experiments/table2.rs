//! Table 2: the experimental infrastructure.
//!
//! The paper's testbed is an NVIDIA Tesla C2050 (Fermi) behind PCIe 2.0;
//! this reproduction substitutes the simulator configured with the same
//! published parameters.

use kw_gpu_sim::DeviceConfig;

/// Render the simulated infrastructure description.
pub fn render() -> String {
    let c = DeviceConfig::fermi_c2050();
    format!(
        "GPU:                {}\n\
         SMs:                {} ({} threads/SM max, {} warps/SM)\n\
         Registers/SM:       {}\n\
         Shared memory/SM:   {} KiB\n\
         Core clock:         {:.2} GHz\n\
         Global memory:      {} GiB @ {:.0} GB/s\n\
         PCIe:               {:.0} GB/s, {:.0} us latency\n\
         Kernel launch:      {} cycles\n",
        c.name,
        c.sm_count,
        c.max_threads_per_sm,
        c.max_warps_per_sm,
        c.registers_per_sm,
        c.shared_mem_per_sm / 1024,
        c.clock_ghz,
        c.global_mem_bytes >> 30,
        c.global_bandwidth_gbs,
        c.pcie_bandwidth_gbs,
        c.pcie_latency_us,
        c.kernel_launch_cycles,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn mentions_the_c2050() {
        let s = super::render();
        assert!(s.contains("C2050"));
        assert!(s.contains("14"));
        assert!(s.contains("48 KiB"));
    }
}
