//! Benchmark harness for the Kernel Weaver reproduction.
//!
//! Every table and figure of the paper's evaluation has an experiment
//! module under [`experiments`]; the `paper_tables` binary renders them all
//! as text, and the Criterion benches under `benches/` time the same
//! experiment bodies.
//!
//! ```bash
//! cargo run --release -p kw-bench --bin paper_tables                # all sections
//! cargo run --release -p kw-bench --bin paper_tables -- fig16      # one section
//! cargo run --release -p kw-bench --bin paper_tables -- --csv out  # also write CSVs
//! cargo bench -p kw-bench
//! ```

#![warn(missing_docs)]

pub mod experiments;
