//! Criterion bench for Figure 16: per-pattern fused vs unfused execution,
//! resident mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_bench::experiments::{device, SEED};
use kw_core::WeaverConfig;
use kw_tpch::Pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    for p in Pattern::all() {
        let w = p.build(1 << 14, SEED);
        group.bench_with_input(BenchmarkId::new("fused", p.label()), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default())
                    .unwrap()
                    .gpu_seconds
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", p.label()), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default().baseline())
                    .unwrap()
                    .gpu_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
