//! Criterion bench for Section 5.2: TPC-H Q1 and Q21, fused vs baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_bench::experiments::{device, SEED};
use kw_core::WeaverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpch");
    group.sample_size(10);
    for (name, w) in [
        ("q1", kw_tpch::q1(2.0, SEED)),
        ("q21", kw_tpch::q21(2.0, SEED)),
    ] {
        group.bench_with_input(BenchmarkId::new("fused", name), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default())
                    .unwrap()
                    .gpu_seconds
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", name), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default().baseline())
                    .unwrap()
                    .gpu_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
