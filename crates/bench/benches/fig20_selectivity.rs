//! Criterion bench for Figure 20: selectivity sweep of two fused SELECTs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_bench::experiments::{device, fig20::two_selects, SEED};
use kw_core::WeaverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    for s in [0.1, 0.5, 0.9] {
        let w = two_selects(1 << 14, s, SEED);
        group.bench_with_input(BenchmarkId::new("fused", s), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default())
                    .unwrap()
                    .gpu_seconds
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", s), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default().baseline())
                    .unwrap()
                    .gpu_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
