//! Criterion bench for Figure 4: fused vs unfused back-to-back SELECTs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_bench::experiments::{device, fig04::select_chain, SEED};
use kw_core::WeaverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    let n = 1 << 15;
    for depth in [2usize, 3] {
        let w = select_chain(n, depth, SEED);
        group.bench_with_input(BenchmarkId::new("fused", depth), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default())
                    .unwrap()
                    .gpu_seconds
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline", depth), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &WeaverConfig::default().baseline())
                    .unwrap()
                    .gpu_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
