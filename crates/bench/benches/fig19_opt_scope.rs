//! Criterion bench for Figure 19: O0 vs O3 across fusion settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_bench::experiments::{device, SEED};
use kw_core::WeaverConfig;
use kw_kernel_ir::OptLevel;
use kw_tpch::Pattern;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    let w = Pattern::A.build(1 << 14, SEED);
    for (name, fusion, opt) in [
        ("unfused-O0", false, OptLevel::O0),
        ("unfused-O3", false, OptLevel::O3),
        ("fused-O0", true, OptLevel::O0),
        ("fused-O3", true, OptLevel::O3),
    ] {
        let config = WeaverConfig {
            fusion,
            opt,
            ..WeaverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                let mut dev = device();
                w.run(&mut dev, &config).unwrap().gpu_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
