//! Kernel weaving: code generation for fused operators (Section 4.3).
//!
//! Given a connected, topologically ordered set of weavable plan nodes,
//! [`weave`] produces one fused [`GpuOperator`]:
//!
//! * external inputs become loads whose destination space depends on their
//!   consumers' dependence class (registers for thread-only consumers,
//!   shared memory otherwise);
//! * each fused operator contributes its compute step, reading its
//!   producers' slots directly — the variable table of Figure 11;
//! * CTA-dependent intermediates live in shared memory behind barriers
//!   (Figure 13(b)); thread-dependent intermediates stay in registers
//!   (Figure 12);
//! * results leaving the fused kernel are stream-compacted (when sparse)
//!   and stored; interior compactions and gathers disappear — the paper's
//!   headline saving.

use std::collections::BTreeMap;

use kw_kernel_ir::{GpuOperator, PartitionSpec, SlotDecl, SlotId, Space, Step};
use kw_primitives::{consumer_class, op_step, DependenceClass, RaOp};

use crate::{is_weavable, NodeId, PlanNode, QueryPlan, Result, WeaverError};

/// A fused operator plus its plan-level wiring.
#[derive(Debug, Clone)]
pub struct WovenOperator {
    /// The generated fused operator.
    pub op: GpuOperator,
    /// Plan nodes bound to the operator inputs, in input order.
    pub external_inputs: Vec<NodeId>,
    /// Plan nodes whose results the operator outputs, in output order.
    pub stored_nodes: Vec<NodeId>,
}

/// Weave the plan nodes `set` into one fused operator.
///
/// `set` must be topologically ordered (ascending [`NodeId`]), connected,
/// and contain only weavable operators. A node's result is stored iff it is
/// a plan output or has a consumer outside the set.
///
/// # Errors
///
/// Returns [`WeaverError`] if the set contains non-weavable operators or
/// the generated IR fails validation.
pub fn weave(plan: &QueryPlan, set: &[NodeId], threads_per_cta: u32) -> Result<WovenOperator> {
    if set.is_empty() {
        return Err(WeaverError::plan("cannot weave an empty set"));
    }
    let in_set = |n: NodeId| set.contains(&n);

    // Collect per-node ops and check weavability.
    let mut ops: BTreeMap<NodeId, &RaOp> = BTreeMap::new();
    for &n in set {
        match plan.node(n) {
            PlanNode::Operator { op, .. } if is_weavable(op) => {
                ops.insert(n, op);
            }
            PlanNode::Operator { op, .. } => {
                return Err(WeaverError::plan(format!(
                    "node {n} ({op}) is not weavable"
                )));
            }
            PlanNode::Input { .. } => {
                return Err(WeaverError::plan(format!("node {n} is an input node")));
            }
        }
    }

    // External inputs: producers outside the set, deduplicated in order.
    let mut external_inputs: Vec<NodeId> = Vec::new();
    for &n in set {
        for &p in plan.producers(n) {
            if !in_set(p) && !external_inputs.contains(&p) {
                external_inputs.push(p);
            }
        }
    }

    // Stored nodes: results leaving the set.
    let stored_nodes: Vec<NodeId> = set
        .iter()
        .copied()
        .filter(|&n| plan.is_output(n) || plan.consumers(n).iter().any(|&c| !in_set(c)))
        .collect();
    if stored_nodes.is_empty() {
        return Err(WeaverError::plan("fused set stores no results"));
    }

    // Dependence classes: is a node's result consumed only by thread-class
    // operators inside the set?
    let thread_only_consumers = |n: NodeId| -> bool {
        plan.consumers(n)
            .iter()
            .filter(|&&c| in_set(c))
            .all(|&c| match plan.node(c) {
                PlanNode::Operator { op, .. } => consumer_class(op) == DependenceClass::Thread,
                PlanNode::Input { .. } => true,
            })
    };
    let node_class = |n: NodeId| -> DependenceClass {
        match plan.node(n) {
            PlanNode::Operator { op, .. } => consumer_class(op),
            PlanNode::Input { .. } => DependenceClass::Thread,
        }
    };

    // Does the fused kernel need key-range partitioning?
    let any_cta = set.iter().any(|&n| node_class(n) == DependenceClass::Cta);
    let partition = if any_cta {
        PartitionSpec::KeyRange {
            pivot: 0,
            key_len: 1,
        }
    } else {
        PartitionSpec::Even
    };

    // Slot allocation.
    let mut slots: Vec<SlotDecl> = Vec::new();
    let alloc = |name: String, space: Space, slots: &mut Vec<SlotDecl>| -> SlotId {
        slots.push(SlotDecl::new(name, space));
        SlotId(slots.len() - 1)
    };

    // One load slot per external input.
    let mut input_slot: BTreeMap<NodeId, SlotId> = BTreeMap::new();
    let mut steps: Vec<Step> = Vec::new();
    for (idx, &p) in external_inputs.iter().enumerate() {
        let space = if thread_only_consumers(p) {
            Space::Register
        } else {
            Space::Shared
        };
        let slot = alloc(format!("in{idx}"), space, &mut slots);
        input_slot.insert(p, slot);
        steps.push(Step::Load {
            input: idx,
            dst: slot,
        });
    }

    // Result slots per fused node. Sparsity tracking decides whether a
    // register result needs compaction before store.
    let mut result_slot: BTreeMap<NodeId, SlotId> = BTreeMap::new();
    let mut sparse: BTreeMap<NodeId, bool> = BTreeMap::new();
    // Shared slots defined since the last barrier.
    let mut unsynced: Vec<SlotId> = slots
        .iter()
        .enumerate()
        .filter(|(_, d)| d.space == Space::Shared)
        .map(|(i, _)| SlotId(i))
        .collect();

    for &n in set {
        let op = ops[&n];
        let producers = plan.producers(n);
        let srcs: Vec<SlotId> = producers
            .iter()
            .map(|p| {
                if in_set(*p) {
                    result_slot[p]
                } else {
                    input_slot[p]
                }
            })
            .collect();

        // Barrier before reading unsynced shared slots.
        let needs_sync = srcs
            .iter()
            .any(|s| slots[s.0].space == Space::Shared && unsynced.contains(s));
        if needs_sync {
            steps.push(Step::Barrier);
            unsynced.clear();
        }

        let class = consumer_class(op);
        let space = if class == DependenceClass::Thread && thread_only_consumers(n) {
            Space::Register
        } else {
            Space::Shared
        };
        let dst = alloc(format!("{}.{}", n, op.mnemonic()), space, &mut slots);
        steps.push(op_step(op, &srcs, dst)?);
        if space == Space::Shared {
            unsynced.push(dst);
        }
        result_slot.insert(n, dst);

        // Sparsity: a register-space filter leaves idle lanes; elementwise
        // ops inherit; CTA-wide ops and shared writes densify.
        let s = if space != Space::Register {
            false
        } else {
            match op {
                RaOp::Select { .. } => true,
                RaOp::Project { .. } | RaOp::Map { .. } => producers
                    .iter()
                    .any(|p| in_set(*p) && sparse.get(p).copied().unwrap_or(false)),
                _ => false,
            }
        };
        sparse.insert(n, s);
    }

    // Stores (with compaction for sparse register results).
    for (out_idx, &n) in stored_nodes.iter().enumerate() {
        let mut src = result_slot[&n];
        if sparse[&n] {
            let dense = alloc(format!("{n}.dense"), Space::Shared, &mut slots);
            steps.push(Step::Compact { src, dst: dense });
            steps.push(Step::Barrier);
            unsynced.clear();
            src = dense;
        } else if slots[src.0].space == Space::Shared && unsynced.contains(&src) {
            steps.push(Step::Barrier);
            unsynced.clear();
        }
        steps.push(Step::Store {
            src,
            output: out_idx,
        });
    }

    let label = {
        let names: Vec<String> = set
            .iter()
            .map(|n| format!("{}{}", ops[n].mnemonic(), n.0))
            .collect();
        format!("fused[{}]", names.join("+"))
    };
    let input_schemas = external_inputs
        .iter()
        .map(|&p| plan.schema(p).clone())
        .collect();

    let mut gpu = GpuOperator::streaming(
        label,
        input_schemas,
        stored_nodes.len(),
        slots,
        steps,
        partition,
    );
    gpu.threads_per_cta = threads_per_cta;
    kw_kernel_ir::validate(&gpu)?;

    Ok(WovenOperator {
        op: gpu,
        external_inputs,
        stored_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_kernel_ir::DEFAULT_THREADS_PER_CTA;
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn sel(attr: usize) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(1 << 30)),
        }
    }

    #[test]
    fn weave_select_chain_stays_in_registers() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[a]).unwrap();
        p.mark_output(b);
        let w = weave(&p, &[a, b], DEFAULT_THREADS_PER_CTA).unwrap();

        assert_eq!(w.external_inputs, vec![t]);
        assert_eq!(w.stored_nodes, vec![b]);
        // Only the final compaction slot is shared.
        let shared =
            w.op.slots()
                .unwrap()
                .iter()
                .filter(|s| s.space == Space::Shared)
                .count();
        assert_eq!(shared, 1);
        // One load, one store: the Figure 12 shape.
        let steps = w.op.steps().unwrap();
        assert_eq!(
            steps
                .iter()
                .filter(|s| matches!(s, Step::Load { .. }))
                .count(),
            1
        );
        assert_eq!(
            steps
                .iter()
                .filter(|s| matches!(s, Step::Compact { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn weave_select_into_join_uses_shared() {
        // Figure 13: select -> join with CTA dependence.
        let mut p = QueryPlan::new();
        let x = p.add_input("x", Schema::uniform_u32(2));
        let y = p.add_input("y", Schema::uniform_u32(2));
        let sx = p.add_op(sel(1), &[x]).unwrap();
        let j = p.add_op(RaOp::Join { key_len: 1 }, &[sx, y]).unwrap();
        p.mark_output(j);
        let w = weave(&p, &[sx, j], DEFAULT_THREADS_PER_CTA).unwrap();

        // The select's result slot must be shared (its consumer is a join).
        let slots = w.op.slots().unwrap();
        let sel_slot = slots.iter().find(|s| s.name.contains("select")).unwrap();
        assert_eq!(sel_slot.space, Space::Shared);
        // Key-range partitioning.
        assert!(matches!(
            w.op.body,
            kw_kernel_ir::OperatorBody::Streaming {
                partition: PartitionSpec::KeyRange { .. },
                ..
            }
        ));
        // Barriers inserted.
        assert!(w
            .op
            .steps()
            .unwrap()
            .iter()
            .any(|s| matches!(s, Step::Barrier)));
    }

    #[test]
    fn interior_results_not_stored() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[a]).unwrap();
        let c = p.add_op(sel(2), &[b]).unwrap();
        p.mark_output(c);
        let w = weave(&p, &[a, b, c], DEFAULT_THREADS_PER_CTA).unwrap();
        assert_eq!(w.op.output_count(), 1);
        assert_eq!(w.stored_nodes, vec![c]);
    }

    #[test]
    fn interior_result_with_outside_consumer_is_stored() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[a]).unwrap();
        let srt = p.add_op(RaOp::Sort { attrs: vec![1] }, &[a]).unwrap();
        p.mark_output(b);
        p.mark_output(srt);
        let w = weave(&p, &[a, b], DEFAULT_THREADS_PER_CTA).unwrap();
        // `a` feeds the outside SORT, so both a and b are stored.
        assert_eq!(w.stored_nodes, vec![a, b]);
        assert_eq!(w.op.output_count(), 2);
    }

    #[test]
    fn shared_input_pattern_d() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[t]).unwrap();
        p.mark_output(a);
        p.mark_output(b);
        let w = weave(&p, &[a, b], DEFAULT_THREADS_PER_CTA).unwrap();
        assert_eq!(w.external_inputs, vec![t]);
        assert_eq!(w.op.output_count(), 2);
        // The weaver deduplicates the shared input: one load feeds both
        // filters (the common-computation-elimination benefit of fusing
        // input-dependent operators).
        let loads =
            w.op.steps()
                .unwrap()
                .iter()
                .filter(|s| matches!(s, Step::Load { .. }))
                .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn non_weavable_rejected() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let s = p.add_op(RaOp::Sort { attrs: vec![0] }, &[t]).unwrap();
        let a = p.add_op(sel(0), &[s]).unwrap();
        p.mark_output(a);
        assert!(weave(&p, &[s, a], DEFAULT_THREADS_PER_CTA).is_err());
        assert!(weave(&p, &[], DEFAULT_THREADS_PER_CTA).is_err());
    }
}
