//! Open-loop query service: deterministic arrivals, admission queueing and
//! compiled-plan caching on one simulated device.
//!
//! The batch scheduler answers "how fast does a fixed batch run"; a
//! production database answers "what offered load can one device hold at a
//! latency SLO". [`run_service`] closes that gap with an open-loop driver:
//!
//! * **Arrivals** — a Poisson-style arrival process sampled from the seeded
//!   workspace RNG: inter-arrival gaps are exponential
//!   (`-ln(1-u)/offered_qps`) on the *simulated* clock, never the wall
//!   clock, so a run is a pure function of its seed. Arrival `i` takes the
//!   `i % shapes`-th plan shape, giving the repeated-shape traffic a plan
//!   cache exists for.
//! * **Admission queue** — arrivals wait FIFO; each dispatch admits the
//!   longest queue prefix whose summed [`admit`]-predicted resident peaks
//!   fit the device's free bytes (capped at
//!   [`ServiceConfig::max_dispatch`]), then hands it to
//!   [`execute_batch_compiled_with_policy`] — waves, per-query fault
//!   domains and the degradation ladder all still apply inside a dispatch.
//!   Per-query *queueing delay* (dispatch start − arrival) is recorded
//!   separately from execution latency.
//! * **Plan cache** — a [`PlanCache`] keyed by canonical shape
//!   ([`crate::plan_shape_key`]). Each arrival performs exactly one cache
//!   lookup; a miss charges [`ServiceConfig::compile_seconds_per_step`] ×
//!   steps of simulated host time to the service clock before the dispatch
//!   (compilation delays the queue head exactly like real JIT would),
//!   while a hit is free. Hit/miss/eviction counters land in the device's
//!   metrics registry.
//! * **Report** — exact nearest-rank p50/p95/p99 over queueing, execution
//!   and total (queueing + execution) latency of the successful queries,
//!   achieved QPS over the service span, and an SLO verdict on total p99.
//!   With zero successes every percentile is an explicit finite `0.0`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kw_gpu_sim::Device;

use crate::admission::admit;
use crate::plan_cache::{plan_shape_key, shape_fingerprint, PlanCache};
use crate::resilient::RetryPolicy;
use crate::scheduler::{execute_batch_compiled_with_policy, BatchQuery, QueryOutcome};
use crate::{CompiledPlan, Result, WeaverConfig};

/// Tuning of one [`run_service`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Offered load: mean arrivals per simulated second of the Poisson
    /// process.
    pub offered_qps: f64,
    /// Total arrivals to generate.
    pub arrivals: usize,
    /// Seed of the arrival process.
    pub seed: u64,
    /// The latency objective checked against total (queueing + execution)
    /// p99.
    pub slo_p99_seconds: f64,
    /// Compiled-plan cache capacity in shapes; 0 disables caching (the
    /// compile-per-arrival baseline).
    pub cache_capacity: usize,
    /// Simulated host-side compile cost charged per compiled step on a
    /// cache miss. The underlying `compile()` is a host-side pure function
    /// the cycle clock never saw; this prices it so the cache's win is
    /// measurable in latency, not just counters.
    pub compile_seconds_per_step: f64,
    /// Maximum queries admitted into one dispatch batch.
    pub max_dispatch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            offered_qps: 500.0,
            arrivals: 64,
            seed: 0xA881,
            slo_p99_seconds: 0.05,
            cache_capacity: 32,
            compile_seconds_per_step: 0.25e-3,
            max_dispatch: 8,
        }
    }
}

/// One arrival's life through the service, as reported.
#[derive(Debug, Clone)]
pub struct ServiceQueryReport {
    /// Workload name of the arrival's shape.
    pub name: String,
    /// Display fingerprint of the shape's cache key.
    pub shape_fingerprint: u64,
    /// The fault-domain verdict of the dispatch that ran it.
    pub outcome: QueryOutcome,
    /// Simulated arrival time, seconds from service start.
    pub arrival_seconds: f64,
    /// Seconds spent queued (dispatch start − arrival); includes any
    /// compile stalls charged while this query waited.
    pub queueing_seconds: f64,
    /// Simulated compile seconds this arrival itself charged (0 on a cache
    /// hit).
    pub compile_seconds: f64,
    /// Execution latency inside its dispatch batch (0 when quarantined).
    pub execution_seconds: f64,
    /// Total latency: queueing + execution.
    pub total_seconds: f64,
    /// Whether this arrival's plan came out of the cache.
    pub cache_hit: bool,
}

/// Exact nearest-rank percentiles over one latency family.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServicePercentiles {
    /// Median.
    pub p50_seconds: f64,
    /// 95th percentile.
    pub p95_seconds: f64,
    /// 99th percentile.
    pub p99_seconds: f64,
}

/// What one open-loop service run did.
#[derive(Debug)]
pub struct ServiceReport {
    /// Offered load of the arrival process, queries per second.
    pub offered_qps: f64,
    /// Successful queries per second of service span (first arrival to
    /// last completion); 0 when nothing succeeded.
    pub achieved_qps: f64,
    /// Arrivals generated.
    pub arrivals: usize,
    /// Arrivals that produced outputs.
    pub completed: usize,
    /// Arrivals quarantined by their dispatch.
    pub failed: usize,
    /// Dispatch batches issued.
    pub dispatches: usize,
    /// Deepest the admission queue ever got (arrivals waiting at once).
    pub max_queue_depth: usize,
    /// Queueing-delay percentiles over successful queries.
    pub queueing: ServicePercentiles,
    /// Execution-latency percentiles over successful queries.
    pub execution: ServicePercentiles,
    /// Total-latency (queueing + execution) percentiles over successful
    /// queries — the SLO metric.
    pub total: ServicePercentiles,
    /// Mean queueing delay over successful queries (0 with no successes).
    pub mean_queueing_seconds: f64,
    /// Mean execution latency over successful queries.
    pub mean_execution_seconds: f64,
    /// Mean total latency over successful queries.
    pub mean_total_seconds: f64,
    /// Simulated compile seconds charged across all cache misses.
    pub compile_seconds_total: f64,
    /// Device-busy seconds: sum of dispatch makespans.
    pub busy_seconds: f64,
    /// Service span in simulated seconds: max(last completion, last
    /// arrival).
    pub duration_seconds: f64,
    /// Plan-cache lookups served from cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that compiled.
    pub cache_misses: u64,
    /// Plan-cache LRU evictions.
    pub cache_evictions: u64,
    /// Plan-cache capacity the run used (0 = disabled).
    pub cache_capacity: usize,
    /// The SLO this run was checked against.
    pub slo_p99_seconds: f64,
    /// Whether total p99 met the SLO (false when nothing succeeded).
    pub slo_met: bool,
    /// Per-arrival reports in arrival order.
    pub queries: Vec<ServiceQueryReport>,
}

/// Exact nearest-rank percentile over `sorted` (ascending); 0.0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn percentiles(latencies: &mut [f64]) -> ServicePercentiles {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    ServicePercentiles {
        p50_seconds: percentile(latencies, 0.50),
        p95_seconds: percentile(latencies, 0.95),
        p99_seconds: percentile(latencies, 0.99),
    }
}

/// Run an open-loop service over `shapes` with the default
/// [`RetryPolicy`].
///
/// `shapes` is the pool of plan shapes arrivals cycle through (arrival `i`
/// is `shapes[i % shapes.len()]` with that shape's bindings). See the
/// module docs for the arrival, queueing and caching model.
///
/// # Errors
///
/// Returns [`crate::WeaverError`] when `shapes` is empty, when a shape
/// fails to compile, or when the service configuration is non-physical
/// (`offered_qps <= 0`, `max_dispatch == 0`). Faults *inside* a dispatch
/// never error: they surface as per-query [`QueryOutcome`]s.
pub fn run_service(
    shapes: &[BatchQuery<'_>],
    device: &mut Device,
    config: &WeaverConfig,
    service: &ServiceConfig,
) -> Result<ServiceReport> {
    run_service_with_policy(shapes, device, config, service, &RetryPolicy::default())
}

/// [`run_service`] with an explicit per-query [`RetryPolicy`].
///
/// # Errors
///
/// Same contract as [`run_service`].
pub fn run_service_with_policy(
    shapes: &[BatchQuery<'_>],
    device: &mut Device,
    config: &WeaverConfig,
    service: &ServiceConfig,
    policy: &RetryPolicy,
) -> Result<ServiceReport> {
    if shapes.is_empty() {
        return Err(crate::WeaverError::plan(
            "service needs at least one plan shape",
        ));
    }
    if service.offered_qps <= 0.0 || !service.offered_qps.is_finite() {
        return Err(crate::WeaverError::plan(format!(
            "offered_qps must be positive and finite, got {}",
            service.offered_qps
        )));
    }
    if service.max_dispatch == 0 {
        return Err(crate::WeaverError::plan("max_dispatch must be at least 1"));
    }

    // Pre-sample the whole arrival schedule so the event loop below is
    // driven by data, not by interleaved RNG draws.
    let mut rng = StdRng::seed_from_u64(service.seed);
    let mut arrival_at: Vec<f64> = Vec::with_capacity(service.arrivals);
    let mut t = 0.0f64;
    for _ in 0..service.arrivals {
        let u: f64 = rng.gen();
        // u ∈ [0, 1): 1-u ∈ (0, 1], so the log is finite and non-positive.
        t += -(1.0f64 - u).ln() / service.offered_qps;
        arrival_at.push(t);
    }

    let mut cache = PlanCache::new(service.cache_capacity);
    // Compiled plan + (hit, compile seconds charged) per arrival, filled
    // lazily the first time the admission loop considers the arrival —
    // exactly one cache lookup per arrival.
    let mut prepared: Vec<Option<(CompiledPlan, bool, f64)>> =
        (0..service.arrivals).map(|_| None).collect();
    let mut per_query: Vec<Option<ServiceQueryReport>> =
        (0..service.arrivals).map(|_| None).collect();

    let capacity = device.memory().capacity();
    let mut now = 0.0f64;
    let mut next = 0usize; // next arrival index not yet queued
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut dispatches = 0usize;
    let mut max_queue_depth = 0usize;
    let mut busy_seconds = 0.0f64;
    let mut compile_seconds_total = 0.0f64;
    let mut last_completion = 0.0f64;

    while next < service.arrivals || !queue.is_empty() {
        if queue.is_empty() {
            // Idle: jump the service clock to the next arrival.
            now = now.max(arrival_at[next]);
        }
        while next < service.arrivals && arrival_at[next] <= now {
            queue.push_back(next);
            next += 1;
        }
        max_queue_depth = max_queue_depth.max(queue.len());

        // Admit the longest FIFO prefix whose predicted resident peaks fit
        // free device bytes. Compilation (cache miss) happens here, charged
        // to the service clock before the dispatch leaves.
        let free = capacity.saturating_sub(device.memory().in_use());
        let mut batch: Vec<usize> = Vec::new();
        let mut peak_sum: u64 = 0;
        for &ai in queue.iter() {
            if batch.len() >= service.max_dispatch {
                break;
            }
            let shape = &shapes[ai % shapes.len()];
            if prepared[ai].is_none() {
                let before = cache.stats();
                let (compiled, hit) = cache.get_or_compile(shape.plan, config)?;
                debug_assert_eq!(
                    cache.stats().hits + cache.stats().misses,
                    before.hits + before.misses + 1
                );
                let cost = if hit {
                    0.0
                } else {
                    service.compile_seconds_per_step * compiled.steps.len() as f64
                };
                now += cost;
                compile_seconds_total += cost;
                prepared[ai] = Some((compiled, hit, cost));
            }
            let compiled = &prepared[ai].as_ref().expect("prepared above").0;
            // Queries admission cannot price (estimate failure) dispatch
            // with a zero predicted peak; the batch executor's own
            // admission and ladder decide their fate.
            let peak = admit(shape.plan, compiled, shape.bindings, free)
                .map(|r| r.resident_peak)
                .unwrap_or(0);
            if batch.is_empty() || peak_sum.saturating_add(peak) <= free {
                peak_sum = peak_sum.saturating_add(peak);
                batch.push(ai);
            } else {
                break;
            }
        }
        for _ in 0..batch.len() {
            queue.pop_front();
        }

        let dispatch_start = now;
        let batch_queries: Vec<BatchQuery<'_>> =
            batch.iter().map(|&ai| shapes[ai % shapes.len()]).collect();
        let batch_compiled: Vec<CompiledPlan> = batch
            .iter()
            .map(|&ai| {
                prepared[ai]
                    .as_ref()
                    .expect("admitted ⇒ prepared")
                    .0
                    .clone()
            })
            .collect();
        let report = execute_batch_compiled_with_policy(
            &batch_queries,
            &batch_compiled,
            device,
            config,
            policy,
        )?;
        dispatches += 1;
        busy_seconds += report.makespan_seconds;
        now = dispatch_start + report.makespan_seconds;

        for (&ai, qr) in batch.iter().zip(&report.queries) {
            let shape = &shapes[ai % shapes.len()];
            let (_, hit, compile_cost) = prepared[ai].as_ref().expect("admitted ⇒ prepared");
            let queueing = (dispatch_start - arrival_at[ai]).max(0.0);
            let execution = if qr.outcome.is_success() {
                qr.latency_seconds
            } else {
                0.0
            };
            if qr.outcome.is_success() {
                last_completion = last_completion.max(dispatch_start + qr.latency_seconds);
            }
            per_query[ai] = Some(ServiceQueryReport {
                name: shape.name.to_string(),
                shape_fingerprint: shape_fingerprint(&plan_shape_key(shape.plan, config)),
                outcome: qr.outcome.clone(),
                arrival_seconds: arrival_at[ai],
                queueing_seconds: queueing,
                compile_seconds: *compile_cost,
                execution_seconds: execution,
                total_seconds: queueing + execution,
                cache_hit: *hit,
            });
        }
    }

    let queries: Vec<ServiceQueryReport> = per_query
        .into_iter()
        .map(|q| q.expect("every arrival was dispatched"))
        .collect();
    let successes: Vec<&ServiceQueryReport> =
        queries.iter().filter(|q| q.outcome.is_success()).collect();
    let completed = successes.len();
    let failed = queries.len() - completed;

    let mut queueing_lat: Vec<f64> = successes.iter().map(|q| q.queueing_seconds).collect();
    let mut execution_lat: Vec<f64> = successes.iter().map(|q| q.execution_seconds).collect();
    let mut total_lat: Vec<f64> = successes.iter().map(|q| q.total_seconds).collect();
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let mean_queueing_seconds = mean(&queueing_lat);
    let mean_execution_seconds = mean(&execution_lat);
    let mean_total_seconds = mean(&total_lat);
    let queueing = percentiles(&mut queueing_lat);
    let execution = percentiles(&mut execution_lat);
    let total = percentiles(&mut total_lat);

    let duration_seconds = last_completion.max(arrival_at.last().copied().unwrap_or(0.0));
    let achieved_qps = if duration_seconds > 0.0 {
        completed as f64 / duration_seconds
    } else {
        0.0
    };
    let stats = cache.stats();
    let slo_met = completed > 0 && total.p99_seconds <= service.slo_p99_seconds;

    {
        let m = device.metrics_mut();
        m.inc("kw_service_arrivals_total", queries.len() as u64);
        m.inc("kw_service_dispatches_total", dispatches as u64);
        m.inc("kw_service_completed_total", completed as u64);
        m.inc("kw_service_failed_total", failed as u64);
    }
    cache.publish(device.metrics_mut());
    for q in &successes {
        let cycles = device.config().seconds_to_cycles(q.total_seconds);
        device
            .metrics_mut()
            .observe("kw_service_total_latency_cycles", cycles);
    }

    Ok(ServiceReport {
        offered_qps: service.offered_qps,
        achieved_qps,
        arrivals: queries.len(),
        completed,
        failed,
        dispatches,
        max_queue_depth,
        queueing,
        execution,
        total,
        mean_queueing_seconds,
        mean_execution_seconds,
        mean_total_seconds,
        compile_seconds_total,
        busy_seconds,
        duration_seconds,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_capacity: service.cache_capacity,
        slo_p99_seconds: service.slo_p99_seconds,
        slo_met,
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryPlan;
    use kw_gpu_sim::DeviceConfig;
    use kw_primitives::RaOp;
    use kw_relational::{gen, CmpOp, Predicate, Relation, Value};

    fn device() -> Device {
        Device::new(DeviceConfig::fermi_c2050())
    }

    fn service_cfg() -> ServiceConfig {
        ServiceConfig {
            arrivals: 24,
            offered_qps: 2_000.0,
            ..ServiceConfig::default()
        }
    }

    fn chain(schema: kw_relational::Schema, depth: usize, threshold: u32) -> QueryPlan {
        let mut p = QueryPlan::new();
        let mut cur = p.add_input("t", schema);
        for a in 0..depth {
            cur = p
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(threshold)),
                    },
                    &[cur],
                )
                .unwrap();
        }
        p.mark_output(cur);
        p
    }

    /// Three distinct select-chain shapes over three inputs — the repeated
    /// traffic mix every test below serves.
    fn run_over_shapes(n: usize, service: &ServiceConfig) -> (ServiceReport, kw_gpu_sim::SimStats) {
        let inputs: Vec<Relation> = (0..3u64)
            .map(|i| gen::micro_input(n, 0xC2050 + i))
            .collect();
        let plans: Vec<QueryPlan> = inputs
            .iter()
            .enumerate()
            .map(|(i, r)| chain(r.schema().clone(), 2 + i, u32::MAX / 2 + i as u32))
            .collect();
        let bindings: Vec<[(&str, &Relation); 1]> = inputs.iter().map(|r| [("t", r)]).collect();
        let names = ["alpha", "beta", "gamma"];
        let shapes: Vec<BatchQuery<'_>> = plans
            .iter()
            .zip(&bindings)
            .zip(names)
            .map(|((p, b), name)| BatchQuery {
                name,
                plan: p,
                bindings: b,
            })
            .collect();
        let mut dev = device();
        let report = run_service(&shapes, &mut dev, &WeaverConfig::default(), service).unwrap();
        (report, *dev.stats())
    }

    #[test]
    fn service_completes_every_arrival_and_reuses_shapes() {
        let cfg = service_cfg();
        let (report, _) = run_over_shapes(1 << 12, &cfg);
        assert_eq!(report.arrivals, cfg.arrivals);
        assert_eq!(report.completed + report.failed, report.arrivals);
        assert_eq!(report.failed, 0);
        // One lookup per arrival, 3 shapes → exactly 3 misses.
        assert_eq!(
            report.cache_hits + report.cache_misses,
            report.arrivals as u64
        );
        assert_eq!(report.cache_misses, 3);
        assert!(report.achieved_qps > 0.0);
        assert!(report.dispatches >= 1);
        // Totals decompose exactly.
        for q in &report.queries {
            assert!((q.total_seconds - (q.queueing_seconds + q.execution_seconds)).abs() < 1e-12);
            assert!(q.queueing_seconds >= q.compile_seconds - 1e-12);
        }
        // Percentile families are monotone.
        for p in [&report.queueing, &report.execution, &report.total] {
            assert!(p.p50_seconds <= p.p95_seconds);
            assert!(p.p95_seconds <= p.p99_seconds);
        }
        assert!(report.total.p99_seconds >= report.queueing.p99_seconds);
        assert!(report.total.p99_seconds >= report.execution.p99_seconds);
    }

    #[test]
    fn service_is_deterministic_in_its_seed() {
        let cfg = service_cfg();
        let (a, _) = run_over_shapes(1 << 12, &cfg);
        let (b, _) = run_over_shapes(1 << 12, &cfg);
        assert_eq!(a.total.p99_seconds, b.total.p99_seconds);
        assert_eq!(a.achieved_qps, b.achieved_qps);
        assert_eq!(a.dispatches, b.dispatches);
        let other = ServiceConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        let (c, _) = run_over_shapes(1 << 12, &other);
        assert_ne!(
            a.queries[0].arrival_seconds, c.queries[0].arrival_seconds,
            "a different seed must reshuffle arrivals"
        );
    }

    #[test]
    fn cache_beats_compile_per_arrival() {
        let cached_cfg = service_cfg();
        let uncached_cfg = ServiceConfig {
            cache_capacity: 0,
            ..cached_cfg
        };
        let (cached, _) = run_over_shapes(1 << 12, &cached_cfg);
        let (uncached, _) = run_over_shapes(1 << 12, &uncached_cfg);
        assert_eq!(uncached.cache_hits, 0);
        assert_eq!(uncached.cache_misses, uncached.arrivals as u64);
        assert!(cached.cache_hits > 0);
        assert!(
            cached.total.p99_seconds < uncached.total.p99_seconds,
            "cached p99 {} must beat uncached {}",
            cached.total.p99_seconds,
            uncached.total.p99_seconds
        );
        assert!(cached.achieved_qps >= uncached.achieved_qps);
        assert!(cached.compile_seconds_total < uncached.compile_seconds_total);
    }

    #[test]
    fn all_failed_service_stays_total() {
        // Shape whose binding name never matches: every arrival quarantines.
        let input = gen::micro_input(4_000, 9);
        let mut plan = crate::QueryPlan::new();
        let t = plan.add_input("t", input.schema().clone());
        let s = plan
            .add_op(
                RaOp::Select {
                    pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(u32::MAX)),
                },
                &[t],
            )
            .unwrap();
        plan.mark_output(s);
        let bad = [("wrong", &input)];
        let shapes = [BatchQuery {
            name: "doomed",
            plan: &plan,
            bindings: &bad,
        }];
        let mut dev = device();
        let cfg = ServiceConfig {
            arrivals: 8,
            ..service_cfg()
        };
        let report = run_service(&shapes, &mut dev, &WeaverConfig::default(), &cfg).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 8);
        for p in [
            report.total.p50_seconds,
            report.total.p95_seconds,
            report.total.p99_seconds,
            report.achieved_qps,
            report.mean_total_seconds,
        ] {
            assert!(p.is_finite());
            assert_eq!(p, 0.0);
        }
        assert!(!report.slo_met);
    }

    #[test]
    fn service_metrics_reach_the_registry() {
        let input = gen::micro_input(1 << 12, 7);
        let plan = chain(input.schema().clone(), 2, u32::MAX / 2);
        let bindings = [("t", &input)];
        let shapes = [BatchQuery {
            name: "alpha",
            plan: &plan,
            bindings: &bindings,
        }];
        let mut dev = device();
        let cfg = ServiceConfig {
            arrivals: 6,
            ..service_cfg()
        };
        let report = run_service(&shapes, &mut dev, &WeaverConfig::default(), &cfg).unwrap();
        assert_eq!(dev.metrics().counter("kw_service_arrivals_total"), 6);
        assert_eq!(
            dev.metrics().counter("kw_plan_cache_hits_total"),
            report.cache_hits
        );
        assert_eq!(
            dev.metrics().counter("kw_plan_cache_misses_total"),
            report.cache_misses
        );
        assert!(dev.metrics().counter("kw_service_dispatches_total") >= 1);
    }

    #[test]
    fn bad_service_configs_are_rejected() {
        let input = gen::micro_input(1 << 10, 7);
        let plan = chain(input.schema().clone(), 2, u32::MAX / 2);
        let bindings = [("t", &input)];
        let shapes = [BatchQuery {
            name: "alpha",
            plan: &plan,
            bindings: &bindings,
        }];
        let mut dev = device();
        let w = WeaverConfig::default();
        assert!(run_service(&[], &mut dev, &w, &ServiceConfig::default()).is_err());
        let zero_rate = ServiceConfig {
            offered_qps: 0.0,
            ..ServiceConfig::default()
        };
        assert!(run_service(&shapes, &mut dev, &w, &zero_rate).is_err());
        let zero_dispatch = ServiceConfig {
            max_dispatch: 0,
            ..ServiceConfig::default()
        };
        assert!(run_service(&shapes, &mut dev, &w, &zero_dispatch).is_err());
        let empty = ServiceConfig {
            arrivals: 0,
            ..ServiceConfig::default()
        };
        let report = run_service(&shapes, &mut dev, &w, &empty).unwrap();
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.achieved_qps, 0.0);
        assert!(!report.slo_met);
    }
}
