//! Plan compilation: from the RA dependence graph to an ordered list of
//! (possibly fused) GPU operators.
//!
//! This is the full Kernel Weaver pipeline of Figure 5: candidate discovery
//! (Algorithm 1) → greedy selection under resource budgets (Algorithm 2) →
//! weaving/code generation → classic compiler optimization over the fused
//! bodies.

use kw_kernel_ir::{optimize, GpuOperator, OptLevel, DEFAULT_THREADS_PER_CTA};
use kw_primitives::build_unfused;

use crate::{
    find_candidates, select_fusions, weave, ExecMode, FusionOptions, NodeId, PlanNode, QueryPlan,
    ResourceBudget, Result, WeaverError,
};

/// Configuration of the Kernel Weaver compiler and executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeaverConfig {
    /// Whether kernel fusion runs at all (off = the paper's baseline).
    pub fusion: bool,
    /// Compiler optimization level (the Figure 19 axis).
    pub opt: OptLevel,
    /// Resource budget for Algorithm 2.
    pub budget: ResourceBudget,
    /// Enable the shared-input fusion extension (pattern (d)).
    pub input_dependence: bool,
    /// Threads per CTA for every generated kernel.
    pub threads_per_cta: u32,
    /// Execution mode (GPU-resident vs PCIe-staged).
    pub mode: ExecMode,
    /// What to do when a buffer exceeds the scratch-arena reservation
    /// (i.e. the admission estimates under-predicted the peak).
    pub arena: crate::ArenaPolicy,
}

impl Default for WeaverConfig {
    fn default() -> Self {
        WeaverConfig {
            fusion: true,
            opt: OptLevel::O3,
            budget: ResourceBudget::default(),
            input_dependence: true,
            threads_per_cta: DEFAULT_THREADS_PER_CTA,
            mode: ExecMode::Resident,
            arena: crate::ArenaPolicy::default(),
        }
    }
}

impl WeaverConfig {
    /// The unfused baseline configuration at the same optimization level.
    pub fn baseline(self) -> WeaverConfig {
        WeaverConfig {
            fusion: false,
            ..self
        }
    }
}

/// One executable (possibly fused) operator of a compiled plan.
#[derive(Debug, Clone)]
pub struct CompiledStep {
    /// The operator to execute (already optimized).
    pub op: GpuOperator,
    /// Plan nodes bound to the operator inputs, in order (duplicates allowed
    /// for self-joins).
    pub inputs: Vec<NodeId>,
    /// Plan nodes the operator outputs correspond to, in order.
    pub outputs: Vec<NodeId>,
    /// Whether this step is a fusion of two or more plan operators.
    pub fused: bool,
}

/// A compiled plan: ordered operator steps plus the fusion decisions made.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Steps in execution order.
    pub steps: Vec<CompiledStep>,
    /// The fusion sets chosen by Algorithm 2 (size >= 2 only).
    pub fusion_sets: Vec<Vec<NodeId>>,
}

impl CompiledPlan {
    /// Total kernels the plan will launch (3 per streaming operator,
    /// multi-pass for global operators) — the paper's "Q1 maps to 107
    /// kernels" metric is this count at fusion-off.
    pub fn operator_count(&self) -> usize {
        self.steps.len()
    }
}

/// Compile `plan` under `config`.
///
/// # Errors
///
/// Returns [`WeaverError`] for invalid plans or failed code generation.
///
/// # Examples
///
/// ```
/// use kw_core::{compile, QueryPlan, WeaverConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{Predicate, Schema};
///
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", Schema::uniform_u32(2));
/// let a = plan.add_op(RaOp::Select { pred: Predicate::True }, &[t])?;
/// let b = plan.add_op(RaOp::Select { pred: Predicate::True }, &[a])?;
/// plan.mark_output(b);
///
/// let fused = compile(&plan, &WeaverConfig::default())?;
/// assert_eq!(fused.steps.len(), 1); // both selects woven into one kernel
///
/// let baseline = compile(&plan, &WeaverConfig::default().baseline())?;
/// assert_eq!(baseline.steps.len(), 2);
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn compile(plan: &QueryPlan, config: &WeaverConfig) -> Result<CompiledPlan> {
    plan.validate()?;

    // Fusion decisions.
    let mut fusion_sets: Vec<Vec<NodeId>> = Vec::new();
    if config.fusion {
        let groups = find_candidates(
            plan,
            FusionOptions {
                input_dependence: config.input_dependence,
            },
        );
        for group in groups {
            let sets = select_fusions(plan, &group, config.budget, config.threads_per_cta)?;
            fusion_sets.extend(sets.into_iter().filter(|s| s.len() >= 2));
        }
    }
    let in_fused = |n: NodeId| fusion_sets.iter().any(|s| s.contains(&n));

    // Build steps.
    let mut steps: Vec<CompiledStep> = Vec::new();
    for set in &fusion_sets {
        let woven = weave(plan, set, config.threads_per_cta)?;
        let (op, _) = optimize(&woven.op, config.opt)?;
        steps.push(CompiledStep {
            op,
            inputs: woven.external_inputs,
            outputs: woven.stored_nodes,
            fused: true,
        });
    }
    for (id, op, producers) in plan.operator_nodes() {
        if in_fused(id) {
            continue;
        }
        let input_schemas: Vec<_> = producers.iter().map(|&p| plan.schema(p).clone()).collect();
        let gpu = build_unfused(op, &input_schemas, format!("{id}.{}", op.mnemonic()))?;
        let (gpu, _) = optimize(&gpu, config.opt)?;
        steps.push(CompiledStep {
            op: gpu,
            inputs: producers.to_vec(),
            outputs: vec![id],
            fused: false,
        });
    }

    // Topological ordering of steps: a step is ready once every input is a
    // plan input node or produced by an already-scheduled step.
    let mut ordered: Vec<CompiledStep> = Vec::new();
    let mut available: std::collections::BTreeSet<NodeId> = plan
        .node_ids()
        .filter(|&n| matches!(plan.node(n), PlanNode::Input { .. }))
        .collect();
    let mut pending = steps;
    while !pending.is_empty() {
        let idx = pending
            .iter()
            .position(|s| s.inputs.iter().all(|i| available.contains(i)))
            .ok_or_else(|| {
                WeaverError::plan("compiled steps contain a dependency cycle".to_string())
            })?;
        let step = pending.remove(idx);
        available.extend(step.outputs.iter().copied());
        ordered.push(step);
    }

    Ok(CompiledPlan {
        steps: ordered,
        fusion_sets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_primitives::RaOp;
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn sel(attr: usize) -> RaOp {
        RaOp::Select {
            pred: Predicate::cmp(attr, CmpOp::Lt, Value::U32(5)),
        }
    }

    #[test]
    fn fusion_reduces_step_count() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let b = p.add_op(sel(1), &[a]).unwrap();
        let c = p.add_op(sel(2), &[b]).unwrap();
        p.mark_output(c);

        let fused = compile(&p, &WeaverConfig::default()).unwrap();
        assert_eq!(fused.steps.len(), 1);
        assert!(fused.steps[0].fused);
        assert_eq!(fused.fusion_sets, vec![vec![a, b, c]]);

        let base = compile(&p, &WeaverConfig::default().baseline()).unwrap();
        assert_eq!(base.steps.len(), 3);
        assert!(base.fusion_sets.is_empty());
    }

    #[test]
    fn sort_stays_standalone() {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(4));
        let a = p.add_op(sel(0), &[t]).unwrap();
        let s = p.add_op(RaOp::Sort { attrs: vec![1] }, &[a]).unwrap();
        let b = p.add_op(sel(0), &[s]).unwrap();
        p.mark_output(b);

        let c = compile(&p, &WeaverConfig::default()).unwrap();
        // Nothing fuses (two singleton groups around the sort).
        assert_eq!(c.steps.len(), 3);
        // Execution order respects the sort in the middle.
        let labels: Vec<&str> = c.steps.iter().map(|s| s.op.label.as_str()).collect();
        assert!(labels[1].contains("sort"), "{labels:?}");
    }

    #[test]
    fn steps_are_topologically_ordered() {
        let mut p = QueryPlan::new();
        let x = p.add_input("x", Schema::uniform_u32(2));
        let y = p.add_input("y", Schema::uniform_u32(2));
        let sx = p.add_op(sel(0), &[x]).unwrap();
        let sy = p.add_op(sel(1), &[y]).unwrap();
        let j = p.add_op(RaOp::Join { key_len: 1 }, &[sx, sy]).unwrap();
        p.mark_output(j);

        let c = compile(&p, &WeaverConfig::default()).unwrap();
        // Everything fuses into one step here.
        assert_eq!(c.steps.len(), 1);

        let base = compile(&p, &WeaverConfig::default().baseline()).unwrap();
        assert_eq!(base.steps.len(), 3);
        let j_pos = base
            .steps
            .iter()
            .position(|s| s.outputs.contains(&j))
            .unwrap();
        assert_eq!(j_pos, 2, "join must run last");
    }
}
