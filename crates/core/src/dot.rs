//! Graphviz DOT export of query plans — the RA dependence graph of
//! Figure 9, with kernel-dependence boundaries and fusion sets marked.

use kw_primitives::{producer_class, DependenceClass};

use crate::{CompiledPlan, NodeId, PlanNode, QueryPlan};

/// Render `plan` as a Graphviz digraph. If `compiled` is given, nodes of
/// each fusion set are grouped in a cluster (the "large circle bounded by
/// SORT operators" of Figure 9(b)).
///
/// # Examples
///
/// ```
/// use kw_core::{compile, plan_to_dot, QueryPlan, WeaverConfig};
/// use kw_primitives::RaOp;
/// use kw_relational::{Predicate, Schema};
///
/// let mut plan = QueryPlan::new();
/// let t = plan.add_input("t", Schema::uniform_u32(2));
/// let s = plan.add_op(RaOp::Select { pred: Predicate::True }, &[t])?;
/// plan.mark_output(s);
/// let compiled = compile(&plan, &WeaverConfig::default())?;
/// let dot = plan_to_dot(&plan, Some(&compiled));
/// assert!(dot.starts_with("digraph"));
/// # Ok::<(), kw_core::WeaverError>(())
/// ```
pub fn plan_to_dot(plan: &QueryPlan, compiled: Option<&CompiledPlan>) -> String {
    use std::fmt::Write as _;
    let mut s =
        String::from("digraph query_plan {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n");

    let in_set = |n: NodeId| -> Option<usize> {
        compiled.and_then(|c| c.fusion_sets.iter().position(|set| set.contains(&n)))
    };

    // Emit fusion-set clusters first.
    if let Some(c) = compiled {
        for (i, set) in c.fusion_sets.iter().enumerate() {
            let _ = writeln!(
                s,
                "  subgraph cluster_fused_{i} {{\n    label=\"fused kernel {i}\";\n    style=dashed;\n    color=blue;"
            );
            for &n in set {
                let _ = writeln!(s, "    {};", node_decl(plan, n));
            }
            let _ = writeln!(s, "  }}");
        }
    }

    for id in plan.node_ids() {
        if in_set(id).is_none() {
            let _ = writeln!(s, "  {};", node_decl(plan, id));
        }
        for &p in plan.producers(id) {
            let _ = writeln!(s, "  n{} -> n{};", p.0, id.0);
        }
        if plan.is_output(id) {
            let _ = writeln!(s, "  n{} -> result_{} [style=dotted];", id.0, id.0);
            let _ = writeln!(s, "  result_{} [label=\"output\", shape=note];", id.0);
        }
    }
    s.push_str("}\n");
    s
}

fn node_decl(plan: &QueryPlan, id: NodeId) -> String {
    match plan.node(id) {
        PlanNode::Input { name, .. } => {
            format!("n{} [label=\"{name}\", shape=cylinder]", id.0)
        }
        PlanNode::Operator { op, .. } => {
            let (shape, color) = match producer_class(op) {
                DependenceClass::Thread => ("box", "green"),
                DependenceClass::Cta => ("box", "orange"),
                DependenceClass::Kernel => ("octagon", "red"),
            };
            format!("n{} [label=\"{op}\", shape={shape}, color={color}]", id.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, WeaverConfig};
    use kw_primitives::RaOp;
    use kw_relational::{Predicate, Schema};

    fn plan() -> QueryPlan {
        let mut p = QueryPlan::new();
        let t = p.add_input("t", Schema::uniform_u32(2));
        let a = p
            .add_op(
                RaOp::Select {
                    pred: Predicate::True,
                },
                &[t],
            )
            .unwrap();
        let s = p.add_op(RaOp::Sort { attrs: vec![1] }, &[a]).unwrap();
        let b = p
            .add_op(
                RaOp::Select {
                    pred: Predicate::True,
                },
                &[s],
            )
            .unwrap();
        let c = p
            .add_op(
                RaOp::Select {
                    pred: Predicate::True,
                },
                &[b],
            )
            .unwrap();
        p.mark_output(c);
        p
    }

    #[test]
    fn dot_contains_nodes_edges_and_clusters() {
        let p = plan();
        let compiled = compile(&p, &WeaverConfig::default()).unwrap();
        let dot = plan_to_dot(&p, Some(&compiled));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("cluster_fused_0"));
        assert!(dot.contains("SORT"));
        assert!(dot.contains("octagon")); // kernel-dependent marker
        assert!(dot.contains("->"));
        assert!(dot.contains("cylinder")); // input
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_without_compilation_has_no_clusters() {
        let p = plan();
        let dot = plan_to_dot(&p, None);
        assert!(!dot.contains("cluster"));
        assert!(dot.contains("output"));
    }
}
