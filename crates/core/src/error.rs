//! Error type for the Kernel Weaver compiler.

use std::fmt;

/// Why the Resident → Staged → Chunked degradation ladder ran out of
/// rungs: the typed reason behind a [`WeaverError::LadderExhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderStop {
    /// The plan admits no chunk strategy — it is neither row-sliceable
    /// (elementwise), hash-partitionable (key-matching operators only), nor
    /// merge-aggregable (a final associative aggregate) — so no chunked
    /// rung exists below Staged. Genuinely non-partitionable plans (e.g. a
    /// full SORT, a cross PRODUCT) land here.
    NonElementwiseBlocksChunking,
    /// Doubling the chunk count again would exceed
    /// [`crate::admission::MAX_CHUNKS`].
    MaxChunksExceeded,
}

impl fmt::Display for LadderStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderStop::NonElementwiseBlocksChunking => {
                write!(
                    f,
                    "plan admits no chunk strategy (not row-sliceable, hash-partitionable, or \
                     merge-aggregable) so chunked streaming is unavailable"
                )
            }
            LadderStop::MaxChunksExceeded => write!(f, "chunk-count ceiling reached"),
        }
    }
}

/// Errors produced while building, compiling or executing query plans.
#[derive(Debug)]
pub enum WeaverError {
    /// The plan graph is malformed (bad node ids, cycles, missing inputs).
    Plan {
        /// Description of the problem.
        detail: String,
    },
    /// An operator was applied to incompatible schemas.
    Relational(kw_relational::RelationalError),
    /// Code generation failed.
    Build(kw_primitives::IrBuildError),
    /// Generated IR failed validation or execution.
    Ir(kw_kernel_ir::IrError),
    /// The simulated device reported an error.
    Sim(kw_gpu_sim::SimError),
    /// A plan input binding was missing or mis-typed at execution time.
    Binding {
        /// Description of the problem.
        detail: String,
    },
    /// Admission control predicts the plan fits no execution mode on the
    /// target device.
    Admission {
        /// Description of the capacity shortfall.
        detail: String,
    },
    /// A mid-run capacity miss found no rung left below the failing mode:
    /// the degradation ladder is exhausted, with a typed reason why.
    LadderExhausted {
        /// Why no further rung exists.
        stop: LadderStop,
        /// The capacity error that hit the bottom rung.
        detail: String,
    },
}

impl WeaverError {
    /// Convenience constructor for plan-structure errors.
    pub fn plan(detail: impl Into<String>) -> WeaverError {
        WeaverError::Plan {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for input-binding errors.
    pub fn binding(detail: impl Into<String>) -> WeaverError {
        WeaverError::Binding {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for admission-control rejections.
    pub fn admission(detail: impl Into<String>) -> WeaverError {
        WeaverError::Admission {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for ladder-exhaustion errors.
    pub fn ladder_exhausted(stop: LadderStop, detail: impl Into<String>) -> WeaverError {
        WeaverError::LadderExhausted {
            stop,
            detail: detail.into(),
        }
    }

    /// The underlying simulator error, if any — digs through the IR layer,
    /// which wraps device errors raised during kernel execution.
    pub fn sim(&self) -> Option<&kw_gpu_sim::SimError> {
        match self {
            WeaverError::Sim(e) => Some(e),
            WeaverError::Ir(kw_kernel_ir::IrError::Sim(e)) => Some(e),
            _ => None,
        }
    }

    /// Whether this failure is a transient injected fault: retrying the same
    /// execution can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.sim().is_some_and(kw_gpu_sim::SimError::is_transient)
    }

    /// Whether this failure is a device capacity miss, recoverable by
    /// degrading to an execution mode with a smaller footprint.
    pub fn is_capacity(&self) -> bool {
        self.sim().is_some_and(kw_gpu_sim::SimError::is_capacity)
    }
}

impl fmt::Display for WeaverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeaverError::Plan { detail } => write!(f, "invalid query plan: {detail}"),
            WeaverError::Relational(e) => write!(f, "relational error: {e}"),
            WeaverError::Build(e) => write!(f, "{e}"),
            WeaverError::Ir(e) => write!(f, "{e}"),
            WeaverError::Sim(e) => write!(f, "{e}"),
            WeaverError::Binding { detail } => write!(f, "input binding error: {detail}"),
            WeaverError::Admission { detail } => write!(f, "admission rejected: {detail}"),
            WeaverError::LadderExhausted { stop, detail } => {
                write!(f, "degradation ladder exhausted ({stop}): {detail}")
            }
        }
    }
}

impl std::error::Error for WeaverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WeaverError::Relational(e) => Some(e),
            WeaverError::Build(e) => Some(e),
            WeaverError::Ir(e) => Some(e),
            WeaverError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kw_relational::RelationalError> for WeaverError {
    fn from(e: kw_relational::RelationalError) -> Self {
        WeaverError::Relational(e)
    }
}

impl From<kw_primitives::IrBuildError> for WeaverError {
    fn from(e: kw_primitives::IrBuildError) -> Self {
        WeaverError::Build(e)
    }
}

impl From<kw_kernel_ir::IrError> for WeaverError {
    fn from(e: kw_kernel_ir::IrError) -> Self {
        WeaverError::Ir(e)
    }
}

impl From<kw_gpu_sim::SimError> for WeaverError {
    fn from(e: kw_gpu_sim::SimError) -> Self {
        WeaverError::Sim(e)
    }
}

/// Convenience alias for Kernel Weaver results.
pub type Result<T> = std::result::Result<T, WeaverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(WeaverError::plan("cycle").to_string().contains("cycle"));
        assert!(WeaverError::binding("missing x").to_string().contains("x"));
        assert!(WeaverError::admission("too big")
            .to_string()
            .contains("too big"));
        let stop = WeaverError::ladder_exhausted(LadderStop::MaxChunksExceeded, "oom at 1024");
        assert!(stop.to_string().contains("chunk-count ceiling"));
        assert!(stop.to_string().contains("oom at 1024"));
        let stop =
            WeaverError::ladder_exhausted(LadderStop::NonElementwiseBlocksChunking, "oom staged");
        assert!(stop.to_string().contains("no chunk strategy"));
        assert!(!stop.is_transient() && !stop.is_capacity());
    }

    #[test]
    fn sim_digs_through_ir_layer() {
        let fault = kw_gpu_sim::SimError::LaunchFault { label: "k".into() };
        let direct = WeaverError::Sim(fault.clone());
        let wrapped = WeaverError::Ir(kw_kernel_ir::IrError::Sim(fault.clone()));
        assert_eq!(direct.sim(), Some(&fault));
        assert_eq!(wrapped.sim(), Some(&fault));
        assert!(direct.is_transient() && wrapped.is_transient());
        assert!(!direct.is_capacity());

        let oom = WeaverError::Sim(kw_gpu_sim::SimError::OutOfMemory {
            requested: 2,
            free: 1,
        });
        assert!(oom.is_capacity() && !oom.is_transient());
        assert!(WeaverError::plan("x").sim().is_none());
    }
}
