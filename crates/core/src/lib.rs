//! **Kernel Weaver** — a reproduction of "Kernel Weaver: Automatically
//! Fusing Database Primitives for Efficient GPU Computation" (Wu, Diamos,
//! Cadambi, Yalamanchili — MICRO 2012), running on a simulated Fermi GPU.
//!
//! The compiler pipeline mirrors the paper's Figure 5:
//!
//! 1. a query plan ([`QueryPlan`]) arrives from the front-end (built by
//!    hand, by `kw-datalog`, or by `kw-tpch`);
//! 2. [`find_candidates`] (Algorithm 1) removes kernel-dependent operators
//!    (SORT, AGGREGATE) and groups the connected fusible remainder;
//! 3. [`select_fusions`] (Algorithm 2) greedily grows fusion sets in
//!    topological order under a register/shared-memory [`ResourceBudget`];
//! 4. [`weave`] generates the fused kernel IR — thread-dependent
//!    intermediates in registers, CTA-dependent ones in shared memory behind
//!    barriers — and the `kw-kernel-ir` optimizer cleans it up;
//! 5. [`execute_plan`] runs the compiled plan on a simulated
//!    [`kw_gpu_sim::Device`], GPU-resident or PCIe-staged.
//!
//! # Examples
//!
//! ```
//! use kw_core::{execute_plan, QueryPlan, WeaverConfig};
//! use kw_gpu_sim::{Device, DeviceConfig};
//! use kw_primitives::RaOp;
//! use kw_relational::{gen, CmpOp, Predicate, Value};
//!
//! // SELECT-SELECT chain (micro-benchmark pattern (a)).
//! let input = gen::micro_input(10_000, 7);
//! let mut plan = QueryPlan::new();
//! let t = plan.add_input("t", input.schema().clone());
//! let s1 = plan.add_op(
//!     RaOp::Select { pred: Predicate::cmp(0, CmpOp::Lt, Value::U32(1 << 31)) },
//!     &[t],
//! )?;
//! let s2 = plan.add_op(
//!     RaOp::Select { pred: Predicate::cmp(1, CmpOp::Lt, Value::U32(1 << 31)) },
//!     &[s1],
//! )?;
//! plan.mark_output(s2);
//!
//! let mut fused_dev = Device::new(DeviceConfig::fermi_c2050());
//! let fused = execute_plan(&plan, &[("t", &input)], &mut fused_dev, &WeaverConfig::default())?;
//!
//! let mut base_dev = Device::new(DeviceConfig::fermi_c2050());
//! let base = execute_plan(
//!     &plan, &[("t", &input)], &mut base_dev, &WeaverConfig::default().baseline(),
//! )?;
//!
//! assert_eq!(fused.outputs, base.outputs);          // same answer...
//! assert!(base.gpu_seconds > fused.gpu_seconds);    // ...faster fused
//! # Ok::<(), kw_core::WeaverError>(())
//! ```

#![warn(missing_docs)]

mod admission;
mod candidates;
mod chunk_strategy;
mod chunked;
mod compile;
mod dot;
mod error;
mod executor;
mod plan;
mod plan_cache;
mod profile;
mod reschedule;
mod resilient;
mod scheduler;
mod selection;
mod service;
mod weave;

pub use admission::{
    admit, admit_batch, plan_waves, AdmissionReport, AdmittedMode, BatchAdmission,
    BatchAdmissionQuery, BatchWavePlan, QueryAdmission, MAX_CHUNKS,
};
pub use candidates::{
    find_candidates, is_input_node, is_weavable, kernel_boundaries, FusionOptions,
};
pub use chunk_strategy::{select_chunk_strategy, ChunkStrategy};
pub use chunked::{
    execute_chunked, execute_chunked_compiled, is_elementwise, pipeline_makespan, ChunkedReport,
};
pub use compile::{compile, CompiledPlan, CompiledStep, WeaverConfig};
pub use dot::plan_to_dot;
pub use error::{LadderStop, Result, WeaverError};
pub use executor::{execute_compiled, execute_plan, ArenaPolicy, ExecMode, PlanReport};
pub use plan::{NodeId, PlanNode, QueryPlan};
pub use plan_cache::{plan_shape_key, shape_fingerprint, PlanCache, PlanCacheStats};
pub use profile::{Bottleneck, OperatorProfile, ProfileReport};
pub use reschedule::{reschedule, Rescheduled};
pub use resilient::{
    execute_compiled_resilient, execute_resilient, Degradation, ResilienceReport, RetryPolicy,
};
pub use scheduler::{
    execute_batch, execute_batch_compiled_with_policy, execute_batch_with_policy, BatchQuery,
    BatchQueryReport, BatchReport, QueryOutcome,
};
pub use selection::{select_fusions, ResourceBudget};
pub use service::{
    run_service, run_service_with_policy, ServiceConfig, ServicePercentiles, ServiceQueryReport,
    ServiceReport,
};
pub use weave::{weave, WovenOperator};
