//! Compiled-plan cache keyed by canonical plan shape.
//!
//! A service loop sees the same handful of plan *shapes* over and over with
//! fresh bindings; [`compile`] is pure in the plan and the fusion-relevant
//! configuration, so compiling a shape twice is wasted work. [`PlanCache`]
//! memoizes [`CompiledPlan`]s under a canonical shape key:
//!
//! * the key covers everything `compile` reads — every node (operator
//!   parameters, predicates, input edges), every schema, the marked
//!   outputs, and the fusion-relevant [`WeaverConfig`] fields (`fusion`,
//!   `opt`, `budget`, `input_dependence`, `threads_per_cta`);
//! * the key deliberately excludes bindings (the relations bound at
//!   execution time) and the execution `mode`, neither of which
//!   [`compile`] looks at — so the same compiled artifact serves staged
//!   and resident replays of the shape alike;
//! * the key is the canonical *encoding itself*, not a digest of it, so
//!   two different shapes can never collide; a 64-bit FNV-1a
//!   [`shape_fingerprint`] of the key is provided for compact display.
//!
//! Eviction is least-recently-used over a fixed entry capacity. A capacity
//! of zero disables the cache entirely (every lookup misses and nothing is
//! stored) — the cache-off baseline the service benchmark compares against.

use std::collections::BTreeMap;

use kw_gpu_sim::MetricsRegistry;

use crate::{compile, CompiledPlan, QueryPlan, Result, WeaverConfig};

/// Canonical shape key of `plan` under `config`: a deterministic encoding
/// of the plan structure plus the fusion-relevant configuration fields.
///
/// Two plans receive the same key iff their node lists, schemas and marked
/// outputs are identical and they compile under the same fusion settings.
/// Binding contents and [`WeaverConfig::mode`] never enter the key.
pub fn plan_shape_key(plan: &QueryPlan, config: &WeaverConfig) -> String {
    // The derived Debug encoding of the plan is injective over its nodes,
    // schemas and outputs (distinct values render distinct strings), which
    // makes the key collision-free by construction.
    format!(
        "{plan:?}|fusion={},opt={:?},budget={:?},input_dep={},tpc={}",
        config.fusion, config.opt, config.budget, config.input_dependence, config.threads_per_cta
    )
}

/// A compact 64-bit FNV-1a fingerprint of a shape key, for reports and
/// logs. Unlike the key itself this can collide; it is display-only.
pub fn shape_fingerprint(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to make room (LRU order).
    pub evictions: u64,
}

struct Entry {
    compiled: CompiledPlan,
    last_used: u64,
}

/// An LRU cache of [`CompiledPlan`]s keyed by [`plan_shape_key`].
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<String, Entry>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` compiled shapes. Zero disables
    /// caching: every lookup misses and nothing is retained.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            stats: PlanCacheStats::default(),
        }
    }

    /// The cache-off baseline: equivalent to `PlanCache::new(0)`.
    pub fn disabled() -> PlanCache {
        PlanCache::new(0)
    }

    /// Whether this cache can retain anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum retained shapes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Look up `plan` under `config`, compiling on a miss. Returns the
    /// compiled plan and whether the lookup hit (`true`) or compiled
    /// (`false`).
    ///
    /// # Errors
    ///
    /// Propagates [`compile`] errors; failed compilations are not cached.
    pub fn get_or_compile(
        &mut self,
        plan: &QueryPlan,
        config: &WeaverConfig,
    ) -> Result<(CompiledPlan, bool)> {
        let key = plan_shape_key(plan, config);
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Ok((entry.compiled.clone(), true));
        }
        self.stats.misses += 1;
        let compiled = compile(plan, config)?;
        if self.capacity > 0 {
            while self.entries.len() >= self.capacity {
                let lru = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match lru {
                    Some(k) => {
                        self.entries.remove(&k);
                        self.stats.evictions += 1;
                    }
                    None => break,
                }
            }
            self.entries.insert(
                key,
                Entry {
                    compiled: compiled.clone(),
                    last_used: self.tick,
                },
            );
        }
        Ok((compiled, false))
    }

    /// Publish the counters into `metrics` as monotone totals
    /// (`kw_plan_cache_{hits,misses,evictions}_total`) plus a
    /// `kw_plan_cache_entries` gauge. Counter registries are monotone, so
    /// callers publish once per cache lifetime (the service driver does so
    /// when its run completes).
    pub fn publish(&self, metrics: &mut MetricsRegistry) {
        metrics.inc("kw_plan_cache_hits_total", self.stats.hits);
        metrics.inc("kw_plan_cache_misses_total", self.stats.misses);
        metrics.inc("kw_plan_cache_evictions_total", self.stats.evictions);
        metrics.set_gauge("kw_plan_cache_entries", self.entries.len() as f64);
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_primitives::RaOp;
    use kw_relational::{CmpOp, Predicate, Schema, Value};

    fn chain(depth: usize, threshold: u32) -> QueryPlan {
        let mut p = QueryPlan::new();
        let mut cur = p.add_input("t", Schema::uniform_u32(4));
        for a in 0..depth {
            cur = p
                .add_op(
                    RaOp::Select {
                        pred: Predicate::cmp(a % 4, CmpOp::Lt, Value::U32(threshold)),
                    },
                    &[cur],
                )
                .unwrap();
        }
        p.mark_output(cur);
        p
    }

    #[test]
    fn repeat_shapes_hit_and_return_equal_steps() {
        let plan = chain(3, 100);
        let cfg = WeaverConfig::default();
        let mut cache = PlanCache::new(4);
        let (first, hit0) = cache.get_or_compile(&plan, &cfg).unwrap();
        let (second, hit1) = cache.get_or_compile(&plan, &cfg).unwrap();
        assert!(!hit0);
        assert!(hit1);
        assert_eq!(first.steps.len(), second.steps.len());
        assert_eq!(first.fusion_sets, second.fusion_sets);
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn distinct_shapes_and_configs_get_distinct_keys() {
        let cfg = WeaverConfig::default();
        let a = chain(2, 100);
        let b = chain(3, 100);
        let c = chain(2, 101);
        assert_ne!(plan_shape_key(&a, &cfg), plan_shape_key(&b, &cfg));
        assert_ne!(plan_shape_key(&a, &cfg), plan_shape_key(&c, &cfg));
        assert_ne!(
            plan_shape_key(&a, &cfg),
            plan_shape_key(&a, &cfg.baseline()),
            "fusion on/off must not share compiled plans"
        );
        // Mode is execution-only: staged and resident share the artifact.
        let staged = WeaverConfig {
            mode: crate::ExecMode::Staged,
            ..cfg
        };
        assert_eq!(plan_shape_key(&a, &cfg), plan_shape_key(&a, &staged));
    }

    #[test]
    fn lru_evicts_oldest_shape_first() {
        let cfg = WeaverConfig::default();
        let shapes: Vec<QueryPlan> = (1..=3).map(|d| chain(d, 100)).collect();
        let mut cache = PlanCache::new(2);
        cache.get_or_compile(&shapes[0], &cfg).unwrap();
        cache.get_or_compile(&shapes[1], &cfg).unwrap();
        // Touch shape 0 so shape 1 is the LRU victim.
        cache.get_or_compile(&shapes[0], &cfg).unwrap();
        cache.get_or_compile(&shapes[2], &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit) = cache.get_or_compile(&shapes[0], &cfg).unwrap();
        assert!(hit, "recently used shape must survive eviction");
        let (_, hit) = cache.get_or_compile(&shapes[1], &cfg).unwrap();
        assert!(!hit, "LRU shape must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cfg = WeaverConfig::default();
        let plan = chain(2, 100);
        let mut cache = PlanCache::disabled();
        assert!(!cache.is_enabled());
        for _ in 0..3 {
            let (_, hit) = cache.get_or_compile(&plan, &cfg).unwrap();
            assert!(!hit);
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn publish_exports_counters() {
        let cfg = WeaverConfig::default();
        let plan = chain(2, 100);
        let mut cache = PlanCache::new(2);
        cache.get_or_compile(&plan, &cfg).unwrap();
        cache.get_or_compile(&plan, &cfg).unwrap();
        let mut m = MetricsRegistry::default();
        cache.publish(&mut m);
        assert_eq!(m.counter("kw_plan_cache_hits_total"), 1);
        assert_eq!(m.counter("kw_plan_cache_misses_total"), 1);
        assert_eq!(m.counter("kw_plan_cache_evictions_total"), 0);
    }
}
