//! Bottleneck-attribution profiling.
//!
//! The span log says *what* each operation charged; this module says what
//! that implies: where a plan (or batch) sits on a roofline-style
//! classification. [`ProfileReport`] folds span deltas and the aggregate
//! [`SimStats`] into achieved-vs-peak bandwidth figures for global memory
//! and PCIe, busy fractions for the GPU and the link, the launch-overhead
//! share, and a single [`Bottleneck`] verdict — per run and per operator.
//!
//! Classification rule (documented in DESIGN.md):
//!
//! 1. If PCIe busy time is at least GPU busy time, the run is
//!    **transfer**-bound — the link is the busiest resource, so no amount
//!    of kernel fusion helps until data movement shrinks (the paper's
//!    argument for why pattern (d) stays transfer-dominated on Fermi).
//! 2. Otherwise the dominant component of the GPU's own cycles decides:
//!    launch cycles → **launch**-bound (the overhead fusion exists to
//!    amortize), global-memory access cycles → **memory**-bound (the
//!    traffic fusion exists to eliminate), everything else (shared, ALU,
//!    barriers) → **compute**-bound.
//!
//! Every figure derives from the simulated cycle clock, so profiles are
//! deterministic and byte-stable across identical runs.

use std::fmt;

use kw_gpu_sim::{DeviceConfig, SimStats, Span};

/// Which resource bounds a run (or one operator's slice of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// PCIe transfer time dominates: the link is the busiest resource.
    Transfer,
    /// Kernel-launch overhead dominates the GPU's own cycles.
    Launch,
    /// Global-memory access cycles dominate the GPU's own cycles.
    Memory,
    /// Shared-memory/ALU/barrier cycles dominate: genuinely compute-bound.
    Compute,
}

impl Bottleneck {
    /// Stable lowercase name used in JSON exports and bench baselines.
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::Transfer => "transfer",
            Bottleneck::Launch => "launch",
            Bottleneck::Memory => "memory",
            Bottleneck::Compute => "compute",
        }
    }
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One operator's (or query's) slice of a profile: costs are grouped by
/// the outermost provenance frame, which is the operator step for a plan
/// execution and the query scope for a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorProfile {
    /// The outermost provenance frame (e.g. `step0:select` or `q1:beta`),
    /// `(unscoped)` for spans recorded outside any scope.
    pub operator: String,
    /// GPU seconds charged under this scope.
    pub gpu_seconds: f64,
    /// PCIe seconds charged under this scope.
    pub pcie_seconds: f64,
    /// Launch cycles as a fraction of this scope's GPU cycles.
    pub launch_share: f64,
    /// Global-memory access cycles as a fraction of this scope's GPU cycles.
    pub memory_share: f64,
    /// This scope's verdict under the classification rule.
    pub bottleneck: Bottleneck,
    /// For batch executions: the owning query's outcome (`completed`,
    /// `retried`, `degraded`, `failed`), folded in by the scheduler via
    /// [`ProfileReport::annotate_outcomes`]. `None` for plan-level rows.
    pub outcome: Option<String>,
}

/// Roofline-style attribution for one execution: achieved vs. peak
/// bandwidths, busy fractions, launch share, and a [`Bottleneck`] verdict,
/// plus the same breakdown per operator/query.
///
/// Attached to every `PlanReport` and `BatchReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The wall time the figures are normalized against (the run's
    /// end-to-end seconds on the simulated clock).
    pub wall_seconds: f64,
    /// Seconds the GPU spent executing kernels.
    pub gpu_busy_seconds: f64,
    /// Seconds the PCIe link spent transferring.
    pub pcie_busy_seconds: f64,
    /// `gpu_busy_seconds / wall_seconds` (0 for a zero-wall run).
    pub gpu_busy_fraction: f64,
    /// `pcie_busy_seconds / wall_seconds` (0 for a zero-wall run).
    pub pcie_busy_fraction: f64,
    /// Seconds of pure kernel-launch overhead.
    pub launch_seconds: f64,
    /// Launch cycles as a fraction of all GPU cycles.
    pub launch_share: f64,
    /// Global-memory access cycles as a fraction of all GPU cycles.
    pub memory_share: f64,
    /// Achieved global-memory bandwidth over the wall time, GB/s.
    pub achieved_global_gbs: f64,
    /// The device's peak global-memory bandwidth, GB/s.
    pub peak_global_gbs: f64,
    /// `achieved_global_gbs / peak_global_gbs`.
    pub global_bw_utilization: f64,
    /// Achieved PCIe bandwidth over the wall time, GB/s.
    pub achieved_pcie_gbs: f64,
    /// The device's peak PCIe bandwidth, GB/s.
    pub peak_pcie_gbs: f64,
    /// `achieved_pcie_gbs / peak_pcie_gbs`.
    pub pcie_bw_utilization: f64,
    /// The run-level verdict.
    pub bottleneck: Bottleneck,
    /// Per-operator (plan) or per-query (batch) breakdown, in first-seen
    /// span order.
    pub operators: Vec<OperatorProfile>,
    /// True device-memory high-water mark of the profiled run, bytes —
    /// including footprint reached on forked scratch devices (chunked
    /// execution folds it back via
    /// [`kw_gpu_sim::Device::absorb_scratch_peak`]). Zero when the caller
    /// had no memory tracker in scope (e.g. profiles built from bare span
    /// logs).
    pub peak_device_bytes: u64,
}

/// The classification rule shared by the run-level and per-operator
/// verdicts. `other_cycles` is everything in `gpu_cycles` that is neither
/// launch nor global-memory access.
fn classify(
    gpu_seconds: f64,
    pcie_seconds: f64,
    launch_cycles: u64,
    global_cycles: u64,
    other_cycles: u64,
) -> Bottleneck {
    if pcie_seconds >= gpu_seconds && pcie_seconds > 0.0 {
        Bottleneck::Transfer
    } else if launch_cycles >= global_cycles && launch_cycles >= other_cycles {
        Bottleneck::Launch
    } else if global_cycles >= other_cycles {
        Bottleneck::Memory
    } else {
        Bottleneck::Compute
    }
}

fn frac(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

impl ProfileReport {
    /// Build a profile from a span log, the matching aggregate stats, the
    /// device configuration, and the run's wall seconds.
    ///
    /// `wall_seconds` is the end-to-end time the caller reports for the
    /// run (serialized seconds for a serial run, pipelined makespan for a
    /// streamed one); busy fractions and achieved bandwidths are
    /// normalized against it.
    pub fn from_spans(
        spans: &[Span],
        stats: &SimStats,
        config: &DeviceConfig,
        wall_seconds: f64,
    ) -> ProfileReport {
        ProfileReport::from_spans_with_residual(spans, stats, config, wall_seconds, 0.0)
    }

    /// [`ProfileReport::from_spans`] plus transfer seconds the span log
    /// cannot carry: a chunked run folds staged-intermediate round trips
    /// into its compute spans (a compute span's stat delta must be
    /// compute-only), so the resilient driver passes those *residual* PCIe
    /// seconds here and the run-level link-busy figures and bottleneck
    /// verdict count them. Per-operator rows still attribute boundary
    /// transfers only — the residual is not attributable to a single frame.
    pub fn from_spans_with_residual(
        spans: &[Span],
        stats: &SimStats,
        config: &DeviceConfig,
        wall_seconds: f64,
        residual_pcie_seconds: f64,
    ) -> ProfileReport {
        let gpu_busy_seconds = config.cycles_to_seconds(stats.gpu_cycles);
        let pcie_busy_seconds = stats.pcie_seconds + residual_pcie_seconds;
        let other_cycles = stats
            .gpu_cycles
            .saturating_sub(stats.launch_cycles + stats.global_access_cycles);
        let peak_global_gbs = config.global_bandwidth_gbs;
        let peak_pcie_gbs = config.pcie_bandwidth_gbs;
        let achieved_global_gbs = frac(stats.global_bytes() as f64, wall_seconds) / 1e9;
        let achieved_pcie_gbs = frac(stats.pcie_bytes() as f64, wall_seconds) / 1e9;

        // Per-operator rows: group span deltas by the outermost provenance
        // frame, in first-seen order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::BTreeMap<String, SimStats> =
            std::collections::BTreeMap::new();
        for s in spans {
            let key = match s.provenance.split('/').next() {
                Some(first) if !first.is_empty() => first.to_string(),
                _ => "(unscoped)".to_string(),
            };
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().merge(&s.delta);
        }
        let operators = order
            .into_iter()
            .map(|key| {
                let g = &groups[&key];
                let g_other = g
                    .gpu_cycles
                    .saturating_sub(g.launch_cycles + g.global_access_cycles);
                let g_gpu_seconds = config.cycles_to_seconds(g.gpu_cycles);
                OperatorProfile {
                    bottleneck: classify(
                        g_gpu_seconds,
                        g.pcie_seconds,
                        g.launch_cycles,
                        g.global_access_cycles,
                        g_other,
                    ),
                    operator: key,
                    gpu_seconds: g_gpu_seconds,
                    pcie_seconds: g.pcie_seconds,
                    launch_share: frac(g.launch_cycles as f64, g.gpu_cycles as f64),
                    memory_share: frac(g.global_access_cycles as f64, g.gpu_cycles as f64),
                    outcome: None,
                }
            })
            .collect();

        ProfileReport {
            wall_seconds,
            gpu_busy_seconds,
            pcie_busy_seconds,
            gpu_busy_fraction: frac(gpu_busy_seconds, wall_seconds),
            pcie_busy_fraction: frac(pcie_busy_seconds, wall_seconds),
            launch_seconds: config.cycles_to_seconds(stats.launch_cycles),
            launch_share: frac(stats.launch_cycles as f64, stats.gpu_cycles as f64),
            memory_share: frac(stats.global_access_cycles as f64, stats.gpu_cycles as f64),
            achieved_global_gbs,
            peak_global_gbs,
            global_bw_utilization: frac(achieved_global_gbs, peak_global_gbs),
            achieved_pcie_gbs,
            peak_pcie_gbs,
            pcie_bw_utilization: frac(achieved_pcie_gbs, peak_pcie_gbs),
            bottleneck: classify(
                gpu_busy_seconds,
                pcie_busy_seconds,
                stats.launch_cycles,
                stats.global_access_cycles,
                other_cycles,
            ),
            operators,
            peak_device_bytes: 0,
        }
    }

    /// Fold per-query batch outcomes into the matching operator rows:
    /// every row whose scope starts with an `(scope, outcome)` pair's
    /// scope gets that outcome label. Rows without a match keep `None`.
    pub fn annotate_outcomes(&mut self, outcomes: &[(String, String)]) {
        for row in &mut self.operators {
            if let Some((_, outcome)) = outcomes.iter().find(|(scope, _)| &row.operator == scope) {
                row.outcome = Some(outcome.clone());
            }
        }
    }

    /// Machine-readable JSON (hand-rolled, like every exporter in this
    /// workspace). Byte-stable across identical runs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bottleneck\": \"{}\",", self.bottleneck);
        let _ = writeln!(out, "  \"wall_seconds\": {},", json_f64(self.wall_seconds));
        let _ = writeln!(
            out,
            "  \"gpu_busy_seconds\": {},",
            json_f64(self.gpu_busy_seconds)
        );
        let _ = writeln!(
            out,
            "  \"pcie_busy_seconds\": {},",
            json_f64(self.pcie_busy_seconds)
        );
        let _ = writeln!(
            out,
            "  \"gpu_busy_fraction\": {},",
            json_f64(self.gpu_busy_fraction)
        );
        let _ = writeln!(
            out,
            "  \"pcie_busy_fraction\": {},",
            json_f64(self.pcie_busy_fraction)
        );
        let _ = writeln!(
            out,
            "  \"launch_seconds\": {},",
            json_f64(self.launch_seconds)
        );
        let _ = writeln!(out, "  \"launch_share\": {},", json_f64(self.launch_share));
        let _ = writeln!(out, "  \"memory_share\": {},", json_f64(self.memory_share));
        let _ = writeln!(
            out,
            "  \"achieved_global_gbs\": {},",
            json_f64(self.achieved_global_gbs)
        );
        let _ = writeln!(
            out,
            "  \"peak_global_gbs\": {},",
            json_f64(self.peak_global_gbs)
        );
        let _ = writeln!(
            out,
            "  \"global_bw_utilization\": {},",
            json_f64(self.global_bw_utilization)
        );
        let _ = writeln!(
            out,
            "  \"achieved_pcie_gbs\": {},",
            json_f64(self.achieved_pcie_gbs)
        );
        let _ = writeln!(
            out,
            "  \"peak_pcie_gbs\": {},",
            json_f64(self.peak_pcie_gbs)
        );
        let _ = writeln!(
            out,
            "  \"pcie_bw_utilization\": {},",
            json_f64(self.pcie_bw_utilization)
        );
        let _ = writeln!(out, "  \"peak_device_bytes\": {},", self.peak_device_bytes);
        out.push_str("  \"operators\": [");
        for (i, op) in self.operators.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let outcome = match &op.outcome {
                Some(o) => format!(", \"outcome\": \"{}\"", escape_json(o)),
                None => String::new(),
            };
            let _ = write!(
                out,
                "\n    {{\"operator\": \"{}\", \"bottleneck\": \"{}\", \
                 \"gpu_seconds\": {}, \"pcie_seconds\": {}, \
                 \"launch_share\": {}, \"memory_share\": {}{}}}",
                escape_json(&op.operator),
                op.bottleneck,
                json_f64(op.gpu_seconds),
                json_f64(op.pcie_seconds),
                json_f64(op.launch_share),
                json_f64(op.memory_share),
                outcome,
            );
        }
        if self.operators.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Human-readable summary block for examples and `paper_tables`.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bottleneck: {}  (wall {:.3} ms, gpu busy {:.0}%, pcie busy {:.0}%, launch share {:.0}%)",
            self.bottleneck,
            self.wall_seconds * 1e3,
            self.gpu_busy_fraction * 100.0,
            self.pcie_busy_fraction * 100.0,
            self.launch_share * 100.0,
        );
        let _ = writeln!(
            out,
            "global mem: {:.2} / {:.1} GB/s ({:.1}% of peak)   pcie: {:.2} / {:.1} GB/s ({:.1}% of peak)",
            self.achieved_global_gbs,
            self.peak_global_gbs,
            self.global_bw_utilization * 100.0,
            self.achieved_pcie_gbs,
            self.peak_pcie_gbs,
            self.pcie_bw_utilization * 100.0,
        );
        for op in &self.operators {
            let _ = writeln!(
                out,
                "  {:<44} {:>8}  gpu {:>9.3} ms  pcie {:>9.3} ms  launch {:>4.0}%  mem {:>4.0}%{}",
                op.operator,
                op.bottleneck.name(),
                op.gpu_seconds * 1e3,
                op.pcie_seconds * 1e3,
                op.launch_share * 100.0,
                op.memory_share * 100.0,
                match &op.outcome {
                    Some(o) => format!("  [{o}]"),
                    None => String::new(),
                },
            );
        }
        out
    }
}

/// JSON-safe float: shortest-roundtrip `Display`, `0` for non-finite.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escape for provenance-derived operator names.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_gpu_sim::validate_json;

    fn span(prov: &str, delta: SimStats) -> Span {
        Span {
            id: 0,
            kind: kw_gpu_sim::SpanKind::Kernel,
            label: "k".into(),
            provenance: prov.into(),
            start_cycle: 0,
            end_cycle: delta.gpu_cycles,
            delta,
            engine: None,
        }
    }

    #[test]
    fn classify_covers_all_regimes() {
        // Link busier than GPU → transfer.
        assert_eq!(classify(1e-3, 2e-3, 0, 100, 0), Bottleneck::Transfer);
        // GPU busier; launch cycles dominate → launch.
        assert_eq!(classify(2e-3, 1e-3, 600, 100, 100), Bottleneck::Launch);
        // Global-access cycles dominate → memory.
        assert_eq!(classify(2e-3, 1e-3, 10, 600, 100), Bottleneck::Memory);
        // Shared/ALU/barrier cycles dominate → compute.
        assert_eq!(classify(2e-3, 0.0, 10, 100, 600), Bottleneck::Compute);
        // Degenerate all-zero run falls through to launch, never transfer.
        assert_eq!(classify(0.0, 0.0, 0, 0, 0), Bottleneck::Launch);
    }

    #[test]
    fn profile_groups_by_outer_provenance_and_validates() {
        let config = kw_gpu_sim::DeviceConfig::fermi_c2050();
        let mk = |launch: u64, global: u64| SimStats {
            kernel_launches: 1,
            launch_cycles: launch,
            global_access_cycles: global,
            gpu_cycles: launch + global,
            global_bytes_read: 1 << 20,
            ..SimStats::default()
        };
        let spans = vec![
            span("step0:sel/inner", mk(6000, 100)),
            span("step0:sel/other", mk(6000, 50)),
            span("step1:join", mk(10, 90_000)),
        ];
        let mut stats = SimStats::default();
        for s in &spans {
            stats.merge(&s.delta);
        }
        let wall = config.cycles_to_seconds(stats.gpu_cycles);
        let p = ProfileReport::from_spans(&spans, &stats, &config, wall);
        assert_eq!(p.operators.len(), 2, "inner frames fold into step0:sel");
        assert_eq!(p.operators[0].operator, "step0:sel");
        assert_eq!(p.operators[0].bottleneck, Bottleneck::Launch);
        assert_eq!(p.operators[1].bottleneck, Bottleneck::Memory);
        assert!((p.gpu_busy_fraction - 1.0).abs() < 1e-9);
        assert_eq!(p.bottleneck, Bottleneck::Memory);
        validate_json(&p.to_json()).expect("profile JSON parses");
        assert!(p.to_json().contains("\"bottleneck\": \"memory\""));
        assert!(p.summary().contains("step1:join"));
    }

    #[test]
    fn outcome_annotation_reaches_matching_rows_and_json() {
        let config = kw_gpu_sim::DeviceConfig::fermi_c2050();
        let mk = SimStats {
            kernel_launches: 1,
            launch_cycles: 10,
            gpu_cycles: 10,
            ..SimStats::default()
        };
        let spans = vec![span("q0:alpha/step0", mk), span("q1:beta/step0", mk)];
        let mut stats = SimStats::default();
        for s in &spans {
            stats.merge(&s.delta);
        }
        let mut p = ProfileReport::from_spans(&spans, &stats, &config, 1e-3);
        p.annotate_outcomes(&[("q1:beta".to_string(), "retried".to_string())]);
        assert_eq!(p.operators[0].outcome, None);
        assert_eq!(p.operators[1].outcome.as_deref(), Some("retried"));
        let json = p.to_json();
        validate_json(&json).expect("annotated profile JSON parses");
        assert!(json.contains("\"outcome\": \"retried\""));
        assert!(p.summary().contains("[retried]"));
    }

    #[test]
    fn residual_transfer_seconds_count_toward_the_link() {
        // A chunked run's staged-intermediate round trips are invisible to
        // the span log (folded into compute spans); the residual-aware
        // constructor must still charge them to the PCIe busy figures and
        // let them flip the run-level verdict to transfer-bound.
        let config = kw_gpu_sim::DeviceConfig::fermi_c2050();
        let stats = SimStats {
            kernel_launches: 1,
            launch_cycles: 10,
            global_access_cycles: 900_000,
            gpu_cycles: 1_000_000,
            pcie_seconds: 1e-6,
            ..SimStats::default()
        };
        let wall = config.cycles_to_seconds(stats.gpu_cycles) + 1e-3;
        let without = ProfileReport::from_spans(&[], &stats, &config, wall);
        let with = ProfileReport::from_spans_with_residual(&[], &stats, &config, wall, 1e-3);
        assert!((with.pcie_busy_seconds - (without.pcie_busy_seconds + 1e-3)).abs() < 1e-15);
        assert!(with.pcie_busy_fraction > without.pcie_busy_fraction);
        assert_eq!(without.bottleneck, Bottleneck::Memory);
        assert_eq!(with.bottleneck, Bottleneck::Transfer);
    }

    #[test]
    fn zero_wall_profile_is_all_zeroes() {
        let config = kw_gpu_sim::DeviceConfig::fermi_c2050();
        let p = ProfileReport::from_spans(&[], &SimStats::default(), &config, 0.0);
        assert_eq!(p.gpu_busy_fraction, 0.0);
        assert_eq!(p.global_bw_utilization, 0.0);
        assert!(p.operators.is_empty());
        validate_json(&p.to_json()).expect("empty profile JSON parses");
    }
}
